//! Deterministic fault injection for federated rounds.
//!
//! Cross-device federated learning (SSFL, He et al.) is a best-effort
//! regime: per round, some clients drop out, some straggle, some crash
//! mid-update, and some return garbage. This module simulates all four
//! fault classes **deterministically**: every decision is a pure function of
//! `(plan seed, run seed, round, client, attempt)`, so any failure a test or
//! a chaos run observes can be replayed bit-for-bit by re-running with the
//! same seeds.
//!
//! The chaos layer only *decides and applies* faults. Surviving them is the
//! resilient round executor's job ([`crate::resilient`]): bounded retries,
//! update validation, minimum-quorum partial aggregation, and crash-safe
//! checkpoints.
//!
//! # Spec strings
//!
//! Bench binaries accept `--chaos <spec>` where `<spec>` is a comma list of
//! `key=value` pairs, e.g. `drop=0.3,corrupt=0.1,panic=0.05,straggle=0.2`:
//!
//! | key           | meaning                                   | default |
//! |---------------|-------------------------------------------|---------|
//! | `drop`        | per-client dropout probability            | 0       |
//! | `straggle`    | per-client straggler probability          | 0       |
//! | `straggle-ms` | straggler delay in milliseconds           | 10      |
//! | `panic`       | per-client mid-update panic probability   | 0       |
//! | `corrupt`     | per-client update-corruption probability  | 0       |
//! | `seed`        | chaos seed (mixed with the run seed)      | 0       |

use calibre_tensor::rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// The ways an injected corruption can mangle a client's update vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// Poisons a slice of coordinates with NaN (detectable by validation).
    NaN,
    /// Poisons a slice of coordinates with ±∞ (detectable by validation).
    Inf,
    /// Scales the whole update by a large factor (finite, so it slips past
    /// validation; norm clipping or robust aggregation must absorb it).
    NormBlowup,
    /// Negates the whole update (finite and norm-preserving; only robust
    /// aggregators can absorb it).
    SignFlip,
}

impl Corruption {
    /// Telemetry tag for this corruption kind.
    pub fn kind_tag(self) -> &'static str {
        match self {
            Corruption::NaN => "corrupt_nan",
            Corruption::Inf => "corrupt_inf",
            Corruption::NormBlowup => "corrupt_norm",
            Corruption::SignFlip => "corrupt_sign",
        }
    }
}

/// One fault assigned to one `(round, client, attempt)` cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientFault {
    /// The client never responds this attempt (no compute happens).
    Dropout,
    /// The client completes, but only after an artificial delay.
    Straggle {
        /// Injected delay in milliseconds, slept inside the worker thread.
        delay_ms: u64,
    },
    /// The client's worker panics partway through its local update.
    PanicMidUpdate,
    /// The client completes but its reported update is corrupted.
    Corrupt(Corruption),
}

impl ClientFault {
    /// Telemetry tag for this fault.
    pub fn kind_tag(self) -> &'static str {
        match self {
            ClientFault::Dropout => "dropout",
            ClientFault::Straggle { .. } => "straggle",
            ClientFault::PanicMidUpdate => "panic",
            ClientFault::Corrupt(c) => c.kind_tag(),
        }
    }
}

/// Per-round, per-client fault probabilities for a chaos run.
///
/// The default plan is inactive (all probabilities zero); training behaves
/// exactly as if the chaos layer did not exist, which is what the golden
/// bit-identity tests pin.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Probability a selected client drops out of an attempt.
    pub drop_prob: f32,
    /// Probability a client straggles (completes after `straggle_ms`).
    pub straggle_prob: f32,
    /// Injected straggler delay, milliseconds.
    pub straggle_ms: u64,
    /// Probability a client's worker panics mid-update.
    pub panic_prob: f32,
    /// Probability a client's reported update is corrupted.
    pub corrupt_prob: f32,
    /// Chaos seed, mixed with the run seed by [`FaultInjector::for_run`].
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            drop_prob: 0.0,
            straggle_prob: 0.0,
            straggle_ms: 10,
            panic_prob: 0.0,
            corrupt_prob: 0.0,
            seed: 0,
        }
    }
}

impl FaultPlan {
    /// Whether any fault has a nonzero probability. An inactive plan means
    /// the round loop takes the exact nominal path.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0
            || self.straggle_prob > 0.0
            || self.panic_prob > 0.0
            || self.corrupt_prob > 0.0
    }

    /// Parses a `--chaos` spec string (see the module docs for the table).
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending pair on unknown keys,
    /// malformed numbers, or probabilities outside `[0, 1]`.
    ///
    /// # Examples
    ///
    /// ```
    /// use calibre_fl::chaos::FaultPlan;
    ///
    /// let plan = FaultPlan::parse("drop=0.3,corrupt=0.1,seed=7").unwrap();
    /// assert_eq!(plan.drop_prob, 0.3);
    /// assert_eq!(plan.corrupt_prob, 0.1);
    /// assert_eq!(plan.seed, 7);
    /// assert!(plan.is_active());
    /// assert!(FaultPlan::parse("drop=1.5").is_err());
    /// ```
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for pair in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or_else(|| format!("chaos spec: expected key=value, got {pair:?}"))?;
            let (key, value) = (key.trim(), value.trim());
            let prob = |v: &str| -> Result<f32, String> {
                let p: f32 = v
                    .parse()
                    .map_err(|_| format!("chaos spec: bad number {v:?} for {key}"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("chaos spec: {key}={p} outside [0, 1]"));
                }
                Ok(p)
            };
            match key {
                "drop" => plan.drop_prob = prob(value)?,
                "straggle" => plan.straggle_prob = prob(value)?,
                "panic" => plan.panic_prob = prob(value)?,
                "corrupt" => plan.corrupt_prob = prob(value)?,
                "straggle-ms" => {
                    plan.straggle_ms = value
                        .parse()
                        .map_err(|_| format!("chaos spec: bad straggle-ms {value:?}"))?
                }
                "seed" => {
                    plan.seed = value
                        .parse()
                        .map_err(|_| format!("chaos spec: bad seed {value:?}"))?
                }
                other => return Err(format!("chaos spec: unknown key {other:?}")),
            }
        }
        Ok(plan)
    }
}

/// Seeded fault oracle: maps `(round, client, attempt)` to an optional
/// [`ClientFault`], reproducibly.
///
/// Internally each cell gets its own short-lived RNG seeded by mixing the
/// injector seed with the cell coordinates (SplitMix-style odd constants),
/// so decisions are independent across cells and replay identically
/// regardless of scheduling or iteration order.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    seed: u64,
}

impl FaultInjector {
    /// Builds an injector whose decisions depend only on `plan.seed`.
    pub fn new(plan: FaultPlan) -> Self {
        let seed = plan.seed;
        FaultInjector { plan, seed }
    }

    /// Builds an injector for a training run, folding the run seed into the
    /// chaos seed so two runs with different `FlConfig::seed`s see
    /// different (but individually reproducible) fault sequences.
    pub fn for_run(plan: FaultPlan, run_seed: u64) -> Self {
        let seed = plan.seed.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ run_seed.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        FaultInjector { plan, seed }
    }

    /// The plan this injector draws from.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    fn cell_rng(&self, round: usize, client: usize, attempt: usize) -> rand::rngs::StdRng {
        let mixed = self
            .seed
            .wrapping_add((round as u64).wrapping_mul(0xA076_1D64_78BD_642F))
            .wrapping_add((client as u64).wrapping_mul(0xE703_7ED1_A0B4_28DB))
            .wrapping_add((attempt as u64).wrapping_mul(0x8EBC_6AF0_9C88_C6E3));
        rng::seeded(mixed)
    }

    /// Decides the fault (if any) for one delivery attempt of one client in
    /// one round. Pure: same inputs, same answer, forever.
    ///
    /// The draws are ordered dropout → panic → corruption → straggle, so at
    /// most one fault fires per cell and the earlier (harsher) classes win
    /// ties.
    pub fn decide(&self, round: usize, client: usize, attempt: usize) -> Option<ClientFault> {
        if !self.plan.is_active() {
            return None;
        }
        let mut r = self.cell_rng(round, client, attempt);
        if r.gen::<f32>() < self.plan.drop_prob {
            return Some(ClientFault::Dropout);
        }
        if r.gen::<f32>() < self.plan.panic_prob {
            return Some(ClientFault::PanicMidUpdate);
        }
        if r.gen::<f32>() < self.plan.corrupt_prob {
            let kind = match r.gen_range(0usize..4) {
                0 => Corruption::NaN,
                1 => Corruption::Inf,
                2 => Corruption::NormBlowup,
                _ => Corruption::SignFlip,
            };
            return Some(ClientFault::Corrupt(kind));
        }
        if r.gen::<f32>() < self.plan.straggle_prob {
            return Some(ClientFault::Straggle {
                delay_ms: self.plan.straggle_ms,
            });
        }
        None
    }

    /// Applies a corruption to an update vector in place, deterministically
    /// for the `(round, client, attempt)` cell that decided it.
    pub fn corrupt(
        &self,
        round: usize,
        client: usize,
        attempt: usize,
        kind: Corruption,
        update: &mut [f32],
    ) {
        let mut r = self.cell_rng(round ^ 0x5EED, client, attempt);
        apply_corruption(kind, update, &mut r);
    }
}

/// Mangles `update` in place according to `kind`.
///
/// NaN/Inf poison roughly one in eight coordinates (at least one) so the
/// corruption survives any later averaging; blow-up scales by 10⁶; sign flip
/// negates everything.
pub fn apply_corruption<R: Rng + ?Sized>(kind: Corruption, update: &mut [f32], r: &mut R) {
    if update.is_empty() {
        return;
    }
    match kind {
        Corruption::NaN | Corruption::Inf => {
            let poison = if kind == Corruption::NaN {
                f32::NAN
            } else {
                f32::INFINITY
            };
            let stride = 8.min(update.len());
            let offset = r.gen_range(0..stride);
            for i in (offset..update.len()).step_by(stride) {
                update[i] = poison;
            }
        }
        Corruption::NormBlowup => {
            for v in update.iter_mut() {
                *v *= 1e6;
            }
        }
        Corruption::SignFlip => {
            for v in update.iter_mut() {
                *v = -*v;
            }
        }
    }
}

/// Panics with a recognizable message — the injected "client crashed
/// mid-update" fault. Always caught by `parallel_map_resilient`'s
/// `catch_unwind`; never escapes the resilient executor.
pub fn panic_injected(round: usize, client: usize) -> ! {
    // analyze:allow(no-panic) -- this *is* the injected fault: the chaos
    // harness exists to throw this panic at the resilient executor.
    panic!("chaos: injected mid-update panic (round {round}, client {client})");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_plan() -> FaultPlan {
        FaultPlan {
            drop_prob: 0.3,
            straggle_prob: 0.2,
            straggle_ms: 1,
            panic_prob: 0.1,
            corrupt_prob: 0.2,
            seed: 42,
        }
    }

    #[test]
    fn default_plan_is_inactive_and_decides_nothing() {
        let inj = FaultInjector::new(FaultPlan::default());
        for round in 0..10 {
            for client in 0..10 {
                assert_eq!(inj.decide(round, client, 0), None);
            }
        }
    }

    #[test]
    fn decisions_replay_identically_from_the_same_seed() {
        let a = FaultInjector::for_run(busy_plan(), 7);
        let b = FaultInjector::for_run(busy_plan(), 7);
        for round in 0..20 {
            for client in 0..8 {
                for attempt in 0..3 {
                    assert_eq!(
                        a.decide(round, client, attempt),
                        b.decide(round, client, attempt)
                    );
                }
            }
        }
    }

    #[test]
    fn different_run_seeds_give_different_fault_sequences() {
        let a = FaultInjector::for_run(busy_plan(), 1);
        let b = FaultInjector::for_run(busy_plan(), 2);
        let seq = |inj: &FaultInjector| -> Vec<Option<ClientFault>> {
            (0..40).map(|i| inj.decide(i / 4, i % 4, 0)).collect()
        };
        assert_ne!(seq(&a), seq(&b));
    }

    #[test]
    fn fault_rates_track_the_plan() {
        let inj = FaultInjector::new(busy_plan());
        let mut drops = 0usize;
        let n = 4000;
        for i in 0..n {
            if inj.decide(i, 0, 0) == Some(ClientFault::Dropout) {
                drops += 1;
            }
        }
        let rate = drops as f32 / n as f32;
        assert!((rate - 0.3).abs() < 0.05, "dropout rate {rate}");
    }

    #[test]
    fn all_fault_kinds_eventually_fire() {
        let inj = FaultInjector::new(busy_plan());
        let mut seen = std::collections::BTreeSet::new();
        for i in 0..2000 {
            if let Some(f) = inj.decide(i, i % 5, 0) {
                seen.insert(f.kind_tag());
            }
        }
        for tag in [
            "dropout",
            "straggle",
            "panic",
            "corrupt_nan",
            "corrupt_inf",
            "corrupt_norm",
            "corrupt_sign",
        ] {
            assert!(seen.contains(tag), "never saw {tag}: {seen:?}");
        }
    }

    #[test]
    fn spec_parsing_roundtrips_and_rejects_garbage() {
        let plan =
            FaultPlan::parse("drop=0.25,straggle=0.1,straggle-ms=25,panic=0.05,corrupt=0.2,seed=9")
                .unwrap();
        assert_eq!(plan.drop_prob, 0.25);
        assert_eq!(plan.straggle_prob, 0.1);
        assert_eq!(plan.straggle_ms, 25);
        assert_eq!(plan.panic_prob, 0.05);
        assert_eq!(plan.corrupt_prob, 0.2);
        assert_eq!(plan.seed, 9);
        assert_eq!(FaultPlan::parse("").unwrap(), FaultPlan::default());
        assert!(FaultPlan::parse("drop").is_err());
        assert!(FaultPlan::parse("warp=0.5").is_err());
        assert!(FaultPlan::parse("panic=2.0").is_err());
        assert!(FaultPlan::parse("straggle-ms=fast").is_err());
    }

    #[test]
    fn nan_and_inf_corruption_is_detectable() {
        let mut r = rng::seeded(3);
        for kind in [Corruption::NaN, Corruption::Inf] {
            let mut update = vec![1.0f32; 37];
            apply_corruption(kind, &mut update, &mut r);
            assert!(update.iter().any(|v| !v.is_finite()), "{kind:?}");
        }
    }

    #[test]
    fn silent_corruptions_stay_finite() {
        let mut r = rng::seeded(4);
        let mut blown = vec![1.0f32, -2.0, 3.0];
        apply_corruption(Corruption::NormBlowup, &mut blown, &mut r);
        assert!(blown.iter().all(|v| v.is_finite()));
        assert!(blown[0] > 1e5);
        let mut flipped = vec![1.0f32, -2.0];
        apply_corruption(Corruption::SignFlip, &mut flipped, &mut r);
        assert_eq!(flipped, vec![-1.0, 2.0]);
    }

    #[test]
    fn corruption_application_is_deterministic() {
        let inj = FaultInjector::new(busy_plan());
        let mut a = vec![1.0f32; 64];
        let mut b = vec![1.0f32; 64];
        inj.corrupt(3, 2, 0, Corruption::NaN, &mut a);
        inj.corrupt(3, 2, 0, Corruption::NaN, &mut b);
        let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&a), bits(&b));
    }
}
