//! Server-side aggregation of client updates.
//!
//! Everything travels as flat parameter vectors (`Module::to_flat`). The
//! plain weighted average is FedAvg; Calibre's divergence-aware variant
//! (in the `calibre` crate) reuses [`weighted_average`] with
//! prototype-distance-derived weights.

/// Weighted average of flat parameter vectors.
///
/// Weights are normalized internally; non-positive total weight falls back
/// to a uniform average.
///
/// # Panics
///
/// Panics if `updates` is empty, lengths differ, or `weights.len()`
/// mismatches `updates.len()`.
pub fn weighted_average(updates: &[Vec<f32>], weights: &[f32]) -> Vec<f32> {
    let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
    weighted_average_refs(&refs, weights)
}

/// Weighted average over borrowed flat vectors — the zero-copy core of
/// [`weighted_average`]. The server loop aggregates straight from the
/// clients' owned flats without cloning each one first.
///
/// # Panics
///
/// Panics under the same conditions as [`weighted_average`].
pub fn weighted_average_refs(updates: &[&[f32]], weights: &[f32]) -> Vec<f32> {
    assert!(!updates.is_empty(), "cannot aggregate zero updates");
    assert_eq!(
        updates.len(),
        weights.len(),
        "one weight per update required"
    );
    let dim = updates[0].len();
    for (i, u) in updates.iter().enumerate() {
        assert_eq!(
            u.len(),
            dim,
            "update {i} has length {} expected {dim}",
            u.len()
        );
    }
    let span = calibre_telemetry::span("aggregate");
    span.add_items(updates.len() as u64);
    span.add_bytes((updates.len() * dim * std::mem::size_of::<f32>()) as u64);
    // Normalization is folded into the accumulation: each update's scale is
    // `w / total` (uniform fallback on a non-positive total), so no
    // intermediate normalized-weights vector is materialized.
    let total: f32 = weights.iter().sum();
    let uniform = 1.0 / updates.len() as f32;
    let mut out = vec![0.0f32; dim];
    for (u, &w) in updates.iter().zip(weights.iter()) {
        let scale = if total > 0.0 { w / total } else { uniform };
        for (o, &v) in out.iter_mut().zip(u.iter()) {
            *o += scale * v;
        }
    }
    out
}

/// Uniform average of flat parameter vectors.
///
/// # Panics
///
/// Panics under the same conditions as [`weighted_average`].
pub fn uniform_average(updates: &[Vec<f32>]) -> Vec<f32> {
    let w = vec![1.0; updates.len()];
    weighted_average(updates, &w)
}

/// Converts per-client sample counts into FedAvg weights.
pub fn sample_count_weights(counts: &[usize]) -> Vec<f32> {
    counts.iter().map(|&c| c as f32).collect()
}

/// Converts per-client divergence rates into aggregation weights via
/// inverse-divergence normalization (Calibre §IV-B: clients whose samples
/// sit closer to their prototypes — lower divergence — contribute more).
///
/// A small epsilon keeps the weights finite when a divergence is zero.
pub fn divergence_weights(divergences: &[f32]) -> Vec<f32> {
    divergences
        .iter()
        .map(|&d| 1.0 / (d.max(0.0) + 1e-3))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_average_of_two_vectors() {
        let avg = uniform_average(&[vec![0.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(avg, vec![1.0, 3.0]);
    }

    #[test]
    fn weighted_average_respects_weights() {
        let avg = weighted_average(&[vec![0.0], vec![10.0]], &[3.0, 1.0]);
        assert!((avg[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn weights_are_normalized() {
        let a = weighted_average(&[vec![1.0], vec![3.0]], &[1.0, 1.0]);
        let b = weighted_average(&[vec![1.0], vec![3.0]], &[100.0, 100.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_total_weight_falls_back_to_uniform() {
        let avg = weighted_average(&[vec![0.0], vec![4.0]], &[0.0, 0.0]);
        assert_eq!(avg, vec![2.0]);
    }

    #[test]
    fn single_update_is_identity() {
        let avg = weighted_average(&[vec![1.5, -2.0]], &[7.0]);
        assert_eq!(avg, vec![1.5, -2.0]);
    }

    #[test]
    fn divergence_weights_prefer_low_divergence() {
        let w = divergence_weights(&[0.1, 1.0]);
        assert!(w[0] > w[1]);
    }

    #[test]
    fn sample_count_weights_are_proportional() {
        let w = sample_count_weights(&[10, 30]);
        assert_eq!(w, vec![10.0, 30.0]);
    }

    #[test]
    fn refs_variant_matches_owned_variant_bitwise() {
        let updates = vec![vec![1.0f32, -2.5, 3.25], vec![0.5, 4.0, -1.0]];
        let weights = [2.0, 5.0];
        let owned = weighted_average(&updates, &weights);
        let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
        let borrowed = weighted_average_refs(&refs, &weights);
        assert_eq!(
            owned.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            borrowed.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "cannot aggregate zero updates")]
    fn empty_updates_panics() {
        uniform_average(&[]);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn mismatched_lengths_panic() {
        uniform_average(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
