//! Server-side aggregation of client updates.
//!
//! Everything travels as flat parameter vectors (`Module::to_flat`). The
//! plain weighted average is FedAvg; Calibre's divergence-aware variant
//! (in the `calibre` crate) reuses [`weighted_average`] with
//! prototype-distance-derived weights.
//!
//! # Robustness
//!
//! A best-effort cohort can report garbage: NaN/Inf poisoned vectors, norm
//! blow-ups, sign flips (see `crate::chaos`). The fault-tolerant path layers
//! three defenses, all selectable via [`Aggregator`]:
//!
//! 1. **Validation** ([`validate_update`]) rejects non-finite updates before
//!    they touch the accumulator — one NaN coordinate would otherwise poison
//!    the entire global model.
//! 2. **Norm clipping** ([`clip_norm`]) caps finite-but-huge updates.
//! 3. **Robust statistics** — [`trimmed_mean`] and [`coordinate_median`]
//!    bound the influence of any single client, absorbing silent
//!    corruptions (sign flips) that validation cannot see.
//!
//! [`aggregate_robust`] is the typed-error front door used by the resilient
//! round executor; the panicking [`weighted_average`] family remains for
//! call sites that have already validated their cohort.

use crate::spec::SpecError;

/// Weighted average of flat parameter vectors.
///
/// Weights are normalized internally; non-positive total weight falls back
/// to a uniform average.
///
/// # Panics
///
/// Panics if `updates` is empty, lengths differ, or `weights.len()`
/// mismatches `updates.len()`.
pub fn weighted_average(updates: &[Vec<f32>], weights: &[f32]) -> Vec<f32> {
    fold_weighted(updates.iter().map(Vec::as_slice), weights)
}

/// Weighted average over borrowed flat vectors — the zero-copy core of
/// [`weighted_average`]. The server loop aggregates straight from the
/// clients' owned flats without cloning each one first.
///
/// Bit-identical to folding the same slices in the same order through a
/// [`StreamingWeightedSink::for_cohort`] sink — it *is* that fold.
///
/// # Panics
///
/// Panics under the same conditions as [`weighted_average`].
pub fn weighted_average_refs(updates: &[&[f32]], weights: &[f32]) -> Vec<f32> {
    fold_weighted(updates.iter().copied(), weights)
}

/// Shared core of the panicking `weighted_average` family: folds each
/// borrowed slice into a [`StreamingWeightedSink`] in canonical (input)
/// `usize` → `u64` for span item/byte accounting without a lossy cast:
/// widening on every supported target, saturating only in theory.
fn span_count(n: usize) -> u64 {
    u64::try_from(n).unwrap_or(u64::MAX)
}

/// order, so callers never materialize an intermediate `Vec` of updates —
/// owned or borrowed.
fn fold_weighted<'a, I>(updates: I, weights: &[f32]) -> Vec<f32>
where
    I: ExactSizeIterator<Item = &'a [f32]> + Clone,
{
    let n = updates.len();
    assert!(n > 0, "cannot aggregate zero updates");
    assert_eq!(n, weights.len(), "one weight per update required");
    let dim = updates.clone().next().map(<[f32]>::len).unwrap_or(0);
    let span = calibre_telemetry::span("aggregate");
    span.add_items(span_count(n));
    span.add_bytes(span_count(n * dim * std::mem::size_of::<f32>()));
    // The total weight is known up front, so the sink applies the exact
    // `w / total` per-fold scale (uniform fallback on a non-positive
    // total); no intermediate normalized-weights vector is materialized.
    let total: f32 = weights.iter().sum();
    let mut sink = StreamingWeightedSink::for_cohort(total, n);
    for (i, (u, &w)) in updates.zip(weights.iter()).enumerate() {
        assert_eq!(
            u.len(),
            dim,
            "update {i} has length {} expected {dim}",
            u.len()
        );
        // Infallible: the shape was just asserted against `dim`.
        let _ = sink.fold(i, u, w);
    }
    sink.finish().unwrap_or_default()
}

/// Uniform average of flat parameter vectors.
///
/// # Panics
///
/// Panics under the same conditions as [`weighted_average`].
pub fn uniform_average(updates: &[Vec<f32>]) -> Vec<f32> {
    let w = vec![1.0; updates.len()];
    weighted_average(updates, &w)
}

/// Exact `f32` for a cohort- or sample-sized count.
fn count_f32(n: usize) -> f32 {
    // analyze:allow(lossy-cast) -- cohort and sample counts sit far below
    // f32's 2^24 exact-integer range
    n as f32
}

/// Converts per-client sample counts into FedAvg weights.
pub fn sample_count_weights(counts: &[usize]) -> Vec<f32> {
    counts.iter().map(|&c| count_f32(c)).collect()
}

/// Typed failure of a fault-tolerant aggregation.
#[derive(Debug, Clone, PartialEq)]
pub enum AggregateError {
    /// No updates survived validation — nothing to aggregate.
    Empty,
    /// Update `index` has a different length than the first update.
    LengthMismatch {
        /// Position of the offending update.
        index: usize,
        /// Expected vector length (from update 0).
        expected: usize,
        /// Actual vector length.
        got: usize,
    },
    /// `weights.len()` does not match `updates.len()`.
    WeightCountMismatch {
        /// Number of updates.
        updates: usize,
        /// Number of weights.
        weights: usize,
    },
    /// The fold weights summed to a non-positive total, so a
    /// deferred-normalization sink cannot recover the uniform-average
    /// fallback (it accumulated `w·u`, not `u`). Only produced by
    /// [`UpdateSink::finish`] on the streaming paths; the collect-then-
    /// aggregate paths fall back to a uniform average instead.
    NonPositiveTotal,
    /// A trim ratio at or above 0.5 would discard every value of every
    /// coordinate. The CLI parser rejects such ratios up front; a directly
    /// constructed [`Aggregator::TrimmedMean`] reports it here instead of
    /// silently trimming less than asked.
    InvalidTrimRatio {
        /// The offending ratio.
        ratio: f32,
    },
    /// The cohort is too small for the requested robust statistic to be
    /// defined (e.g. a trimmed mean whose trims would consume the whole
    /// cohort, or Krum with fewer than `f + 3` clients). The round should
    /// be skipped, not silently aggregated with a weaker statistic.
    CohortTooSmall {
        /// Minimum cohort size the statistic needs.
        needed: usize,
        /// Actual cohort size.
        got: usize,
    },
}

impl std::fmt::Display for AggregateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregateError::Empty => write!(f, "cannot aggregate zero updates"),
            AggregateError::LengthMismatch {
                index,
                expected,
                got,
            } => write!(f, "update {index} has length {got}, expected {expected}"),
            AggregateError::WeightCountMismatch { updates, weights } => {
                write!(f, "{updates} updates but {weights} weights")
            }
            AggregateError::NonPositiveTotal => {
                write!(f, "fold weights summed to a non-positive total")
            }
            AggregateError::InvalidTrimRatio { ratio } => {
                write!(f, "trim ratio {ratio} must be in [0, 0.5)")
            }
            AggregateError::CohortTooSmall { needed, got } => {
                write!(
                    f,
                    "cohort of {got} too small for the robust statistic (needs {needed})"
                )
            }
        }
    }
}

impl std::error::Error for AggregateError {}

/// Aggregation statistic for the fault-tolerant round path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aggregator {
    /// Plain weighted average — bit-identical to [`weighted_average_refs`],
    /// zero robustness to silent corruption.
    WeightedAverage,
    /// Per-coordinate weighted average after discarding the
    /// `ceil(ratio * n)` smallest and largest values of each coordinate.
    /// `ratio = 0` degrades to the weighted average (up to summation
    /// order); `ratio` must be `< 0.5`.
    TrimmedMean(f32),
    /// Per-coordinate weighted median: tolerates just under half the cohort
    /// being arbitrarily corrupted, ignores weights magnitudes least.
    CoordinateMedian,
    /// Krum (Blanchet et al.): returns the single update whose summed
    /// squared distance to its `n - f - 2` nearest neighbours is smallest,
    /// assuming at most `f` Byzantine clients. Needs a cohort of at least
    /// `f + 3`.
    Krum {
        /// Assumed number of Byzantine clients.
        f: usize,
    },
    /// Multi-Krum: weighted average of the `m` lowest-Krum-score updates —
    /// Krum's selection pressure with averaging's variance reduction.
    MultiKrum {
        /// Assumed number of Byzantine clients.
        f: usize,
        /// Number of selected updates to average.
        m: usize,
    },
    /// Geometric median via deterministic Weiszfeld iteration: the point
    /// minimizing the weighted sum of L2 distances to the updates. The
    /// classic high-dimensional robust aggregate (RFA).
    GeometricMedian,
    /// Norm bounding: clip every update to the given L2 norm before the
    /// weighted average, capping any single client's displacement.
    NormBound(f32),
    /// Centered clipping (Karimireddy et al.): iteratively re-center on the
    /// cohort, folding in only the tau-clipped residual of each update.
    CenteredClip(f32),
}

impl Aggregator {
    /// Parses a CLI name: `weighted`, `trimmed` / `trimmed:<ratio>`,
    /// `median`, `krum` / `krum:<f>`, `multikrum` / `multikrum:<f>:<m>`,
    /// `geomedian`, `normbound:<max>`, `clip:<tau>`.
    ///
    /// # Errors
    ///
    /// Returns a [`SpecError`] naming the aggregator keyword and the byte
    /// span of the offending parameter in `s` (the whole input for an
    /// unknown keyword).
    pub fn parse_spec(s: &str) -> Result<Aggregator, SpecError> {
        // ASCII lowercasing preserves byte offsets, so spans computed on
        // `lower` index into the caller's original string.
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "weighted" | "weighted-average" | "mean" => Ok(Aggregator::WeightedAverage),
            "median" | "coordinate-median" => Ok(Aggregator::CoordinateMedian),
            "trimmed" | "trimmed-mean" => Ok(Aggregator::TrimmedMean(0.2)),
            "krum" => Ok(Aggregator::Krum { f: 1 }),
            "multikrum" | "multi-krum" => Ok(Aggregator::MultiKrum { f: 1, m: 3 }),
            "geomedian" | "geometric-median" => Ok(Aggregator::GeometricMedian),
            other => {
                if let Some(ratio) = other.strip_prefix("trimmed:") {
                    let span = ("trimmed:".len(), other.len());
                    let r: f32 = ratio.parse().map_err(|_| {
                        SpecError::new(
                            "aggregator",
                            "trimmed",
                            span,
                            format!("bad ratio {ratio:?}"),
                        )
                    })?;
                    if !(0.0..0.5).contains(&r) {
                        return Err(SpecError::new(
                            "aggregator",
                            "trimmed",
                            span,
                            format!("ratio {r} outside [0, 0.5)"),
                        ));
                    }
                    return Ok(Aggregator::TrimmedMean(r));
                }
                if let Some(f) = other.strip_prefix("krum:") {
                    let span = ("krum:".len(), other.len());
                    return Ok(Aggregator::Krum {
                        f: f.parse().map_err(|_| {
                            SpecError::new("aggregator", "krum", span, format!("bad f {f:?}"))
                        })?,
                    });
                }
                if let Some((plen, rest)) = ["multikrum:", "multi-krum:"]
                    .iter()
                    .find_map(|p| other.strip_prefix(p).map(|rest| (p.len(), rest)))
                {
                    let Some((f_str, m_str)) = rest.split_once(':') else {
                        return Err(SpecError::new(
                            "aggregator",
                            "multikrum",
                            (plen, other.len()),
                            format!("expected <f>:<m>, got {rest:?}"),
                        ));
                    };
                    let f_span = (plen, plen + f_str.len());
                    let m_span = (plen + f_str.len() + 1, other.len());
                    let f: usize = f_str.parse().map_err(|_| {
                        SpecError::new(
                            "aggregator",
                            "multikrum",
                            f_span,
                            format!("bad f {f_str:?}"),
                        )
                    })?;
                    let m: usize = m_str.parse().map_err(|_| {
                        SpecError::new(
                            "aggregator",
                            "multikrum",
                            m_span,
                            format!("bad m {m_str:?}"),
                        )
                    })?;
                    if m == 0 {
                        return Err(SpecError::new(
                            "aggregator",
                            "multikrum",
                            m_span,
                            "m must be at least 1",
                        ));
                    }
                    return Ok(Aggregator::MultiKrum { f, m });
                }
                if let Some(max_str) = other.strip_prefix("normbound:") {
                    let span = ("normbound:".len(), other.len());
                    let max: f32 = max_str.parse().map_err(|_| {
                        SpecError::new(
                            "aggregator",
                            "normbound",
                            span,
                            format!("bad max norm {max_str:?}"),
                        )
                    })?;
                    if !max.is_finite() || max <= 0.0 {
                        return Err(SpecError::new(
                            "aggregator",
                            "normbound",
                            span,
                            format!("max norm {max} must be finite and positive"),
                        ));
                    }
                    return Ok(Aggregator::NormBound(max));
                }
                if let Some(tau_str) = other.strip_prefix("clip:") {
                    let span = ("clip:".len(), other.len());
                    let tau: f32 = tau_str.parse().map_err(|_| {
                        SpecError::new("aggregator", "clip", span, format!("bad tau {tau_str:?}"))
                    })?;
                    if !tau.is_finite() || tau <= 0.0 {
                        return Err(SpecError::new(
                            "aggregator",
                            "clip",
                            span,
                            format!("tau {tau} must be finite and positive"),
                        ));
                    }
                    return Ok(Aggregator::CenteredClip(tau));
                }
                Err(SpecError::new(
                    "aggregator",
                    other,
                    (0, other.len()),
                    "unknown aggregator (expected weighted, median, trimmed[:ratio], krum[:f], \
                     multikrum:<f>:<m>, geomedian, normbound:<max> or clip:<tau>)",
                ))
            }
        }
    }

    /// Parses a CLI name, discarding the diagnostic; prefer
    /// [`Aggregator::parse_spec`] when the error will reach a user.
    // analyze:allow(schema-drift) -- delegates to `parse_spec`, which names
    // every variant; this wrapper only drops the diagnostic
    pub fn parse(s: &str) -> Option<Aggregator> {
        Self::parse_spec(s).ok()
    }

    /// Display name (parsable by [`Aggregator::parse`]).
    pub fn name(self) -> String {
        match self {
            Aggregator::WeightedAverage => "weighted".into(),
            Aggregator::TrimmedMean(r) => format!("trimmed:{r}"),
            Aggregator::CoordinateMedian => "median".into(),
            Aggregator::Krum { f } => format!("krum:{f}"),
            Aggregator::MultiKrum { f, m } => format!("multikrum:{f}:{m}"),
            Aggregator::GeometricMedian => "geomedian".into(),
            Aggregator::NormBound(m) => format!("normbound:{m}"),
            Aggregator::CenteredClip(t) => format!("clip:{t}"),
        }
    }
}

/// Whether every coordinate of an update is finite. The validation gate the
/// resilient executor applies before letting an update near the aggregator.
pub fn validate_update(update: &[f32]) -> bool {
    update.iter().all(|v| v.is_finite())
}

/// Clips `update` in place to L2 norm at most `max_norm`; returns `true`
/// when clipping actually happened. Non-finite inputs are left untouched
/// (they must be rejected by [`validate_update`], not laundered).
pub fn clip_norm(update: &mut [f32], max_norm: f32) -> bool {
    let norm_sq: f32 = update.iter().map(|v| v * v).sum();
    if !norm_sq.is_finite() {
        return false;
    }
    let norm = norm_sq.sqrt();
    if norm <= max_norm || norm == 0.0 {
        return false;
    }
    let scale = max_norm / norm;
    for v in update.iter_mut() {
        *v *= scale;
    }
    true
}

fn check_shapes(updates: &[&[f32]], weights: &[f32]) -> Result<usize, AggregateError> {
    if updates.is_empty() {
        return Err(AggregateError::Empty);
    }
    if updates.len() != weights.len() {
        return Err(AggregateError::WeightCountMismatch {
            updates: updates.len(),
            weights: weights.len(),
        });
    }
    let dim = updates.first().map_or(0, |u| u.len());
    for (i, u) in updates.iter().enumerate() {
        if u.len() != dim {
            return Err(AggregateError::LengthMismatch {
                index: i,
                expected: dim,
                got: u.len(),
            });
        }
    }
    Ok(dim)
}

/// Per-coordinate weighted trimmed mean.
///
/// For each coordinate, the `ceil(ratio * n)` smallest and largest values
/// are discarded and the survivors are averaged with their (re-normalized)
/// weights. At `ratio = 0` nothing is trimmed and the result equals the
/// weighted average up to floating-point summation order.
///
/// # Errors
///
/// Shape errors as in [`aggregate_robust`];
/// [`AggregateError::InvalidTrimRatio`] when `ratio` is outside `[0, 0.5)`;
/// [`AggregateError::CohortTooSmall`] when the trims would consume the
/// whole cohort (e.g. a single-client cohort at any nonzero ratio). Earlier
/// versions silently capped the trim instead — a 40% trim of a two-client
/// cohort quietly became a plain average, exactly when robustness mattered.
pub fn trimmed_mean(
    updates: &[&[f32]],
    weights: &[f32],
    ratio: f32,
) -> Result<Vec<f32>, AggregateError> {
    if !(0.0..0.5).contains(&ratio) {
        return Err(AggregateError::InvalidTrimRatio { ratio });
    }
    let dim = check_shapes(updates, weights)?;
    let n = updates.len();
    // analyze:allow(lossy-cast) -- ratio is validated in [0, 0.5), so the
    // product stays within usize range for any real cohort.
    let trim = (ratio * n as f32).ceil() as usize;
    if trim > 0 && n.saturating_sub(2 * trim) == 0 {
        return Err(AggregateError::CohortTooSmall {
            needed: 2 * trim + 1,
            got: n,
        });
    }
    let span = calibre_telemetry::span("aggregate");
    span.add_items(span_count(n));
    let mut out = vec![0.0f32; dim];
    let mut column: Vec<(f32, f32)> = Vec::with_capacity(n);
    // The cohort-size check above guarantees n > 2*trim, so the kept range
    // is in bounds and non-empty for every coordinate.
    let hi = n.saturating_sub(trim);
    for (j, o) in out.iter_mut().enumerate() {
        column.clear();
        // analyze:allow(slice-index) -- check_shapes guarantees every
        // update has exactly `dim` coordinates, and j < dim
        column.extend(updates.iter().zip(weights).map(|(u, &w)| (u[j], w)));
        column.sort_by(|a, b| a.0.total_cmp(&b.0));
        let kept = column.get(trim..hi).unwrap_or(&[]);
        let total: f32 = kept.iter().map(|(_, w)| w).sum();
        let uniform = 1.0 / count_f32(kept.len().max(1));
        *o = kept
            .iter()
            .map(|(v, w)| v * if total > 0.0 { w / total } else { uniform })
            .sum();
    }
    Ok(out)
}

/// Per-coordinate weighted median.
///
/// Each output coordinate is the smallest value whose cumulative weight
/// reaches half the total (uniform weights when the total is non-positive).
/// Tolerates just under half the cohort being arbitrarily corrupted.
///
/// # Errors
///
/// Shape errors as in [`aggregate_robust`].
pub fn coordinate_median(updates: &[&[f32]], weights: &[f32]) -> Result<Vec<f32>, AggregateError> {
    let dim = check_shapes(updates, weights)?;
    let n = updates.len();
    let span = calibre_telemetry::span("aggregate");
    span.add_items(span_count(n));
    let total: f32 = weights.iter().sum();
    let uniform = total <= 0.0;
    let full: f32 = if uniform { count_f32(n) } else { total };
    let mut out = vec![0.0f32; dim];
    let mut column: Vec<(f32, f32)> = Vec::with_capacity(n);
    for (j, o) in out.iter_mut().enumerate() {
        column.clear();
        column.extend(
            updates
                .iter()
                .zip(weights)
                // analyze:allow(slice-index) -- check_shapes guarantees
                // every update has exactly `dim` coordinates, and j < dim
                .map(|(u, &w)| (u[j], if uniform { 1.0 } else { w })),
        );
        column.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut acc = 0.0f32;
        let mut median = column.last().map(|c| c.0).unwrap_or(0.0);
        for &(v, w) in column.iter() {
            acc += w;
            if acc >= full * 0.5 {
                median = v;
                break;
            }
        }
        *o = median;
    }
    Ok(out)
}

/// Squared L2 distance between two same-length slices.
fn dist_sq(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b.iter()).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Krum scores for the cohort: for each update, the sum of its squared
/// distances to its `n - f - 2` nearest neighbours. Lower is more central.
///
/// Deterministic: pure arithmetic, ties in the per-update neighbour sort
/// broken by `total_cmp`.
fn krum_scores(updates: &[&[f32]], f: usize) -> Result<Vec<f32>, AggregateError> {
    let n = updates.len();
    let keep = n
        .checked_sub(f + 2)
        .filter(|&k| k >= 1)
        .ok_or(AggregateError::CohortTooSmall {
            needed: f + 3,
            got: n,
        })?;
    let mut scores = Vec::with_capacity(n);
    let mut dists = Vec::with_capacity(n - 1);
    for (i, u) in updates.iter().enumerate() {
        dists.clear();
        for (j, v) in updates.iter().enumerate() {
            if i != j {
                dists.push(dist_sq(u, v));
            }
        }
        dists.sort_unstable_by(|a, b| a.total_cmp(b));
        scores.push(dists.iter().take(keep).sum());
    }
    Ok(scores)
}

/// The `m` lowest-Krum-score positions, ascending by score. Score ties —
/// common for mutual nearest-neighbour pairs, whose distances are equal by
/// symmetry — are broken by comparing the update values lexicographically,
/// so the *selected values* are permutation-invariant (the final index
/// tie-break only disambiguates bit-identical duplicates).
fn krum_select(updates: &[&[f32]], f: usize, m: usize) -> Result<Vec<usize>, AggregateError> {
    let scores = krum_scores(updates, f)?;
    let lex = |a: &[f32], b: &[f32]| -> std::cmp::Ordering {
        a.iter()
            .zip(b.iter())
            .map(|(x, y)| x.total_cmp(y))
            .find(|o| o.is_ne())
            .unwrap_or(std::cmp::Ordering::Equal)
    };
    let mut order: Vec<(f32, &[f32], usize)> = scores
        .iter()
        .zip(updates)
        .enumerate()
        .map(|(i, (&score, &update))| (score, update, i))
        .collect();
    order.sort_unstable_by(|a, b| {
        a.0.total_cmp(&b.0)
            .then_with(|| lex(a.1, b.1))
            .then(a.2.cmp(&b.2))
    });
    let keep = m.max(1).min(order.len());
    let mut chosen: Vec<usize> = order.into_iter().take(keep).map(|(_, _, i)| i).collect();
    chosen.sort_unstable();
    Ok(chosen)
}

/// Krum (Blanchet et al., NeurIPS 2017): returns the single most central
/// update, verbatim. Tolerates up to `f` Byzantine clients in a cohort of
/// at least `f + 3`; weights are ignored (the statistic is selection, not
/// averaging).
///
/// # Errors
///
/// Shape errors as in [`aggregate_robust`];
/// [`AggregateError::CohortTooSmall`] when `n < f + 3` — single-client and
/// near-empty cohorts cannot support the neighbour statistic.
pub fn krum(updates: &[&[f32]], weights: &[f32], f: usize) -> Result<Vec<f32>, AggregateError> {
    check_shapes(updates, weights)?;
    let span = calibre_telemetry::span("aggregate");
    span.add_items(span_count(updates.len()));
    let chosen = krum_select(updates, f, 1)?;
    chosen
        .first()
        .and_then(|&i| updates.get(i))
        .map(|u| u.to_vec())
        .ok_or(AggregateError::Empty)
}

/// Multi-Krum: weighted average of the `m` lowest-Krum-score updates.
///
/// # Errors
///
/// As for [`krum`].
pub fn multi_krum(
    updates: &[&[f32]],
    weights: &[f32],
    f: usize,
    m: usize,
) -> Result<Vec<f32>, AggregateError> {
    check_shapes(updates, weights)?;
    let span = calibre_telemetry::span("aggregate");
    span.add_items(span_count(updates.len()));
    let chosen = krum_select(updates, f, m)?;
    let mut kept: Vec<&[f32]> = Vec::with_capacity(chosen.len());
    let mut kept_w: Vec<f32> = Vec::with_capacity(chosen.len());
    for &i in &chosen {
        if let (Some(&u), Some(&w)) = (updates.get(i), weights.get(i)) {
            kept.push(u);
            kept_w.push(w);
        }
    }
    Ok(weighted_average_refs(&kept, &kept_w))
}

/// Weiszfeld iteration budget for [`geometric_median`]. Fixed (never
/// adaptive to wall-clock) so the result is a pure function of the inputs.
const WEISZFELD_ITERS: usize = 64;
/// Relative convergence tolerance for the Weiszfeld iteration.
const WEISZFELD_TOL: f32 = 1e-7;

/// Geometric median of the updates via deterministic Weiszfeld iteration —
/// the point minimizing the weighted sum of L2 distances. Breakdown point
/// 0.5: no minority of colluding clients can move it arbitrarily.
///
/// Deterministic: initialized at the weighted mean, iterated a fixed budget
/// with a fixed tolerance, epsilon-smoothed so an iterate landing exactly
/// on an update never divides by zero. Same inputs, same bits.
///
/// # Errors
///
/// Shape errors as in [`aggregate_robust`].
pub fn geometric_median(updates: &[&[f32]], weights: &[f32]) -> Result<Vec<f32>, AggregateError> {
    let dim = check_shapes(updates, weights)?;
    let n = updates.len();
    let span = calibre_telemetry::span("aggregate");
    span.add_items(span_count(n));
    let total: f32 = weights.iter().sum();
    let uniform = total <= 0.0;
    // Weighted-mean start.
    // analyze:allow(lossy-cast) -- cohort count, far below f32's 2^24 range.
    let full: f32 = if uniform { n as f32 } else { total };
    let mut y = vec![0.0f32; dim];
    for (u, &wu) in updates.iter().zip(weights) {
        let w = if uniform { 1.0 } else { wu } / full;
        for (o, &v) in y.iter_mut().zip(u.iter()) {
            *o += w * v;
        }
    }
    if n == 1 {
        return Ok(y);
    }
    let scale = y.iter().map(|v| v.abs()).fold(0.0f32, f32::max).max(1e-6);
    let mut next = vec![0.0f32; dim];
    for _ in 0..WEISZFELD_ITERS {
        let mut wsum = 0.0f32;
        next.iter_mut().for_each(|v| *v = 0.0);
        for (u, &wu) in updates.iter().zip(weights) {
            let d = dist_sq(u, &y).sqrt().max(1e-9);
            let w = if uniform { 1.0 } else { wu } / d;
            wsum += w;
            for (o, &v) in next.iter_mut().zip(u.iter()) {
                *o += w * v;
            }
        }
        let inv = 1.0 / wsum;
        let mut shift = 0.0f32;
        for (o, v) in next.iter_mut().zip(y.iter_mut()) {
            *o *= inv;
            shift = shift.max((*o - *v).abs());
            *v = *o;
        }
        if shift <= WEISZFELD_TOL * scale {
            break;
        }
    }
    Ok(y)
}

/// Norm-bounded weighted average: every update is clipped to L2 norm at
/// most `max_norm` before averaging, capping any single client's
/// displacement of the aggregate.
///
/// # Errors
///
/// Shape errors as in [`aggregate_robust`].
pub fn norm_bounded_mean(
    updates: &[&[f32]],
    weights: &[f32],
    max_norm: f32,
) -> Result<Vec<f32>, AggregateError> {
    check_shapes(updates, weights)?;
    let span = calibre_telemetry::span("aggregate");
    span.add_items(span_count(updates.len()));
    let clipped: Vec<Vec<f32>> = updates
        .iter()
        .map(|u| {
            let mut v = u.to_vec();
            clip_norm(&mut v, max_norm);
            v
        })
        .collect();
    let refs: Vec<&[f32]> = clipped.iter().map(Vec::as_slice).collect();
    Ok(weighted_average_refs(&refs, weights))
}

/// Fixed re-centering budget for [`centered_clip`].
const CENTERED_CLIP_ITERS: usize = 3;

/// Centered clipping (Karimireddy et al., ICML 2021): starting from zero,
/// repeatedly move the center by the weighted mean of the tau-clipped
/// residuals `clip(uᵢ - c, tau)`. Honest updates pull the center to their
/// mean; a Byzantine update can displace it by at most `tau` per step.
///
/// # Errors
///
/// Shape errors as in [`aggregate_robust`].
pub fn centered_clip(
    updates: &[&[f32]],
    weights: &[f32],
    tau: f32,
) -> Result<Vec<f32>, AggregateError> {
    let dim = check_shapes(updates, weights)?;
    let n = updates.len();
    let span = calibre_telemetry::span("aggregate");
    span.add_items(span_count(n));
    let total: f32 = weights.iter().sum();
    let uniform = total <= 0.0;
    // analyze:allow(lossy-cast) -- cohort count, far below f32's 2^24 range.
    let full: f32 = if uniform { n as f32 } else { total };
    let mut center = vec![0.0f32; dim];
    let mut residual = vec![0.0f32; dim];
    for _ in 0..CENTERED_CLIP_ITERS {
        let mut step = vec![0.0f32; dim];
        for (u, &wu) in updates.iter().zip(weights) {
            for ((r, &v), &c) in residual.iter_mut().zip(u.iter()).zip(center.iter()) {
                *r = v - c;
            }
            clip_norm(&mut residual, tau);
            let w = if uniform { 1.0 } else { wu } / full;
            for (s, &r) in step.iter_mut().zip(residual.iter()) {
                *s += w * r;
            }
        }
        for (c, s) in center.iter_mut().zip(step.iter()) {
            *c += s;
        }
    }
    Ok(center)
}

/// Fault-tolerant aggregation front door: dispatches on [`Aggregator`] and
/// returns a typed error instead of panicking.
///
/// [`Aggregator::WeightedAverage`] delegates to [`weighted_average_refs`]
/// after validating shapes, so its output is bit-identical to the legacy
/// path — the golden-checksum tests rely on that.
///
/// # Errors
///
/// [`AggregateError::Empty`] on an empty cohort (e.g. everything was
/// rejected by validation), shape/weight-count mismatches,
/// [`AggregateError::InvalidTrimRatio`] for out-of-range trim ratios, and
/// [`AggregateError::CohortTooSmall`] when a robust statistic is undefined
/// for the cohort size (the caller should take the skipped-round path).
pub fn aggregate_robust(
    aggregator: Aggregator,
    updates: &[&[f32]],
    weights: &[f32],
) -> Result<Vec<f32>, AggregateError> {
    match aggregator {
        Aggregator::WeightedAverage => {
            check_shapes(updates, weights)?;
            Ok(weighted_average_refs(updates, weights))
        }
        Aggregator::TrimmedMean(ratio) => trimmed_mean(updates, weights, ratio),
        Aggregator::CoordinateMedian => coordinate_median(updates, weights),
        Aggregator::Krum { f } => krum(updates, weights, f),
        Aggregator::MultiKrum { f, m } => multi_krum(updates, weights, f, m),
        Aggregator::GeometricMedian => geometric_median(updates, weights),
        Aggregator::NormBound(max) => norm_bounded_mean(updates, weights, max),
        Aggregator::CenteredClip(tau) => centered_clip(updates, weights, tau),
    }
}

/// Converts per-client divergence rates into aggregation weights via
/// inverse-divergence normalization (Calibre §IV-B: clients whose samples
/// sit closer to their prototypes — lower divergence — contribute more).
///
/// A small epsilon keeps the weights finite when a divergence is zero.
pub fn divergence_weights(divergences: &[f32]) -> Vec<f32> {
    divergences
        .iter()
        .map(|&d| 1.0 / (d.max(0.0) + 1e-3))
        .collect()
}

// ---------------------------------------------------------------------------
// Streaming sinks: constant-memory aggregation for massive cohorts.
// ---------------------------------------------------------------------------

use rand::rngs::StdRng;
use rand::Rng as _;

/// A streaming accumulator that client updates are folded into the moment
/// they finish, instead of being collected into an O(cohort × model) `Vec`
/// first. This is the aggregation substrate of the massive-cohort execution
/// path (`DESIGN.md` §11).
///
/// # Contract
///
/// * **Fold order is the determinism boundary.** Folding the same
///   `(client, update, weight)` triples in the same order is bit-identical
///   on replay; folding a permutation is only guaranteed to agree within
///   f32 round-off. Executors that need replay identity fold in
///   selection-slot order — [`crate::parallel::parallel_map`] returns
///   results in input order precisely so they can.
/// * **Quorum interaction.** A fold cannot be undone, so executors that
///   enforce a minimum quorum ([`crate::resilient::RoundPolicy::min_quorum`])
///   must buffer the first `min_quorum` accepted updates and start folding
///   only once the quorum is reached (see
///   `RoundScheduler::run_round_streaming` in [`crate::scheduler`]). The
///   buffer is O(min_quorum × model), independent of cohort size.
/// * **A sink is spent after [`UpdateSink::finish`]:** the accumulator is
///   drained, and a second `finish` reports [`AggregateError::Empty`].
///
/// # Examples
///
/// ```
/// use calibre_fl::aggregate::{StreamingWeightedSink, UpdateSink};
///
/// let mut sink = StreamingWeightedSink::new();
/// sink.fold(0, &[0.0, 2.0], 1.0).unwrap();
/// sink.fold(1, &[2.0, 4.0], 3.0).unwrap();
/// assert_eq!(sink.folded(), 2);
/// assert_eq!(sink.finish().unwrap(), vec![1.5, 3.5]);
/// ```
pub trait UpdateSink {
    /// Folds one client's update with its aggregation weight.
    ///
    /// # Errors
    ///
    /// [`AggregateError::LengthMismatch`] when `update` disagrees with the
    /// dimension established by the first fold (the `index` field carries
    /// the fold position).
    fn fold(&mut self, client: usize, update: &[f32], weight: f32) -> Result<(), AggregateError>;

    /// Number of updates folded so far.
    fn folded(&self) -> usize;

    /// Bytes of accumulator state currently held — the quantity the
    /// `cohort` bench asserts stays flat as the cohort grows.
    fn state_bytes(&self) -> usize;

    /// Drains the accumulated state into the aggregate.
    ///
    /// # Errors
    ///
    /// [`AggregateError::Empty`] when nothing was folded (or the sink was
    /// already finished); [`AggregateError::NonPositiveTotal`] when a
    /// deferred-normalization sink saw weights summing to ≤ 0.
    fn finish(&mut self) -> Result<Vec<f32>, AggregateError>;
}

/// How a [`StreamingWeightedSink`] normalizes its weights.
#[derive(Debug, Clone, Copy)]
enum WeightedMode {
    /// Accumulate `Σ wᵢ·uᵢ`, divide by `Σ wᵢ` at finish.
    Deferred,
    /// Total weight known up front: apply the exact `wᵢ / total` per-fold
    /// scale of [`weighted_average_refs`] (uniform `1/n` fallback when the
    /// total is non-positive).
    PerFold {
        /// Pre-computed `Σ wᵢ` over the full cohort.
        total: f32,
        /// Cohort size, for the uniform fallback.
        cohort: usize,
    },
}

/// The weighted-average [`UpdateSink`]: O(model) state, the streaming form
/// of [`weighted_average_refs`].
///
/// # Determinism
///
/// * [`StreamingWeightedSink::new`] defers normalization to finish
///   (`Σ wᵢ·uᵢ / Σ wᵢ`) — the true streaming mode for cohorts whose total
///   weight is unknown until everyone reported. Agrees with
///   [`weighted_average_refs`] within f32 round-off under *any* fold order,
///   and is bit-identical on replay of the same fold order.
/// * [`StreamingWeightedSink::for_cohort`] takes the total weight and
///   cohort size up front and applies the exact per-fold scale of
///   [`weighted_average_refs`]; folding in canonical (selection-slot) order
///   is **bit-identical** to it. This is the mode the round executors use —
///   the golden-checksum tests pin it.
///
/// # Examples
///
/// Canonical-order folding through the pre-normalized mode reproduces
/// [`weighted_average_refs`] bit for bit:
///
/// ```
/// use calibre_fl::aggregate::{weighted_average_refs, StreamingWeightedSink, UpdateSink};
///
/// let updates: [&[f32]; 2] = [&[1.0, -2.5], &[0.5, 4.0]];
/// let weights = [2.0, 5.0];
/// let total: f32 = weights.iter().sum();
/// let mut sink = StreamingWeightedSink::for_cohort(total, updates.len());
/// for (i, (u, &w)) in updates.iter().zip(weights.iter()).enumerate() {
///     sink.fold(i, u, w).unwrap();
/// }
/// let streamed = sink.finish().unwrap();
/// let reference = weighted_average_refs(&updates, &weights);
/// assert!(streamed.iter().zip(&reference).all(|(a, b)| a.to_bits() == b.to_bits()));
/// ```
#[derive(Debug)]
pub struct StreamingWeightedSink {
    acc: Vec<f32>,
    total: f32,
    folded: usize,
    mode: WeightedMode,
}

impl StreamingWeightedSink {
    /// Deferred-normalization mode: `Σ wᵢ·uᵢ / Σ wᵢ` at finish. Requires a
    /// positive total weight by finish time.
    pub fn new() -> Self {
        StreamingWeightedSink {
            acc: Vec::new(),
            total: 0.0,
            folded: 0,
            mode: WeightedMode::Deferred,
        }
    }

    /// Pre-normalized mode for a cohort whose `total_weight` (and size) is
    /// known before folding starts: bit-identical to
    /// [`weighted_average_refs`] when folded in canonical order.
    pub fn for_cohort(total_weight: f32, cohort: usize) -> Self {
        StreamingWeightedSink {
            acc: Vec::new(),
            total: 0.0,
            folded: 0,
            mode: WeightedMode::PerFold {
                total: total_weight,
                cohort: cohort.max(1),
            },
        }
    }
}

impl Default for StreamingWeightedSink {
    fn default() -> Self {
        Self::new()
    }
}

impl UpdateSink for StreamingWeightedSink {
    fn fold(&mut self, _client: usize, update: &[f32], weight: f32) -> Result<(), AggregateError> {
        if self.folded == 0 && self.acc.is_empty() {
            self.acc = vec![0.0; update.len()];
        }
        if update.len() != self.acc.len() {
            return Err(AggregateError::LengthMismatch {
                index: self.folded,
                expected: self.acc.len(),
                got: update.len(),
            });
        }
        let scale = match self.mode {
            WeightedMode::Deferred => weight,
            WeightedMode::PerFold { total, cohort } => {
                if total > 0.0 {
                    weight / total
                } else {
                    // analyze:allow(lossy-cast) -- cohort sizes sit far
                    // below f32 integer precision loss (2^24).
                    1.0 / cohort as f32
                }
            }
        };
        for (o, &v) in self.acc.iter_mut().zip(update.iter()) {
            *o += scale * v;
        }
        self.total += weight;
        self.folded += 1;
        Ok(())
    }

    fn folded(&self) -> usize {
        self.folded
    }

    fn state_bytes(&self) -> usize {
        // Capacity, not length: allocated-but-unused slack is still resident
        // memory the cohort bench's flat-peak assertion must see.
        self.acc.capacity() * std::mem::size_of::<f32>() + std::mem::size_of::<Self>()
    }

    fn finish(&mut self) -> Result<Vec<f32>, AggregateError> {
        if self.folded == 0 {
            return Err(AggregateError::Empty);
        }
        let total = self.total;
        let mut out = std::mem::take(&mut self.acc);
        self.folded = 0;
        self.total = 0.0;
        match self.mode {
            WeightedMode::PerFold { .. } => Ok(out),
            WeightedMode::Deferred => {
                if total <= 0.0 {
                    return Err(AggregateError::NonPositiveTotal);
                }
                let inv = 1.0 / total;
                for v in out.iter_mut() {
                    *v *= inv;
                }
                Ok(out)
            }
        }
    }
}

/// Which robust statistic a [`ReservoirSink`] computes over its reservoir.
#[derive(Debug, Clone, Copy)]
enum ReservoirStat {
    /// [`trimmed_mean`] with the given trim ratio.
    Trimmed(f32),
    /// [`coordinate_median`].
    Median,
}

/// A bounded-memory [`UpdateSink`] for the robust aggregators
/// ([`Aggregator::TrimmedMean`], [`Aggregator::CoordinateMedian`]).
///
/// Order statistics need the per-coordinate *columns*, so an exact
/// constant-memory stream is impossible (`DESIGN.md` §11). Instead the sink
/// keeps a uniform reservoir of at most `capacity` updates (Vitter's
/// algorithm R, driven by a seeded rng) and finishes with the exact
/// [`trimmed_mean`] / [`coordinate_median`] over the reservoir:
///
/// * cohorts up to `capacity` are **exact** — every update is retained;
/// * beyond that the statistic is computed over a uniform sample of the
///   stream, with state bounded by O(capacity × model) regardless of
///   cohort size.
///
/// # Determinism
///
/// Replacement choices depend only on `(seed, fold order)`: replaying the
/// same fold sequence reproduces the reservoir — and the aggregate — bit
/// for bit. Permutations change which updates survive past `capacity`, so
/// unlike the weighted sink there is no permutation-tolerance guarantee
/// beyond it.
///
/// # Examples
///
/// Under capacity the sink is exact:
///
/// ```
/// use calibre_fl::aggregate::{coordinate_median, ReservoirSink, UpdateSink};
///
/// let updates: [&[f32]; 3] = [&[1.0], &[5.0], &[-400.0]];
/// let mut sink = ReservoirSink::median(16, 7);
/// for (i, u) in updates.iter().enumerate() {
///     sink.fold(i, u, 1.0).unwrap();
/// }
/// let exact = coordinate_median(&updates, &[1.0; 3]).unwrap();
/// assert_eq!(sink.finish().unwrap(), exact);
/// ```
#[derive(Debug)]
pub struct ReservoirSink {
    entries: Vec<Vec<f32>>,
    weights: Vec<f32>,
    capacity: usize,
    rng: StdRng,
    folded: usize,
    stat: ReservoirStat,
}

impl ReservoirSink {
    fn with_stat(capacity: usize, seed: u64, stat: ReservoirStat) -> Self {
        let capacity = capacity.max(1);
        ReservoirSink {
            entries: Vec::new(),
            weights: Vec::new(),
            capacity,
            rng: calibre_tensor::rng::seeded(seed ^ 0x5EED_5EED_5EED_5EED),
            folded: 0,
            stat,
        }
    }

    /// Trimmed-mean reservoir (mirrors [`Aggregator::TrimmedMean`]): keeps
    /// at most `capacity` updates, finishes with [`trimmed_mean`] at the
    /// given `ratio`.
    pub fn trimmed(ratio: f32, capacity: usize, seed: u64) -> Self {
        Self::with_stat(capacity, seed, ReservoirStat::Trimmed(ratio))
    }

    /// Coordinate-median reservoir (mirrors
    /// [`Aggregator::CoordinateMedian`]): keeps at most `capacity` updates,
    /// finishes with [`coordinate_median`].
    pub fn median(capacity: usize, seed: u64) -> Self {
        Self::with_stat(capacity, seed, ReservoirStat::Median)
    }
}

impl UpdateSink for ReservoirSink {
    fn fold(&mut self, _client: usize, update: &[f32], weight: f32) -> Result<(), AggregateError> {
        if let Some(first) = self.entries.first() {
            if update.len() != first.len() {
                return Err(AggregateError::LengthMismatch {
                    index: self.folded,
                    expected: first.len(),
                    got: update.len(),
                });
            }
        }
        if self.entries.len() < self.capacity {
            self.entries.push(update.to_vec());
            self.weights.push(weight);
        } else {
            // Algorithm R: item k replaces a uniform j ∈ [0, k]; j beyond
            // the capacity means the item is discarded.
            let j = self.rng.gen_range(0..=self.folded);
            if let (Some(slot), Some(wslot)) = (self.entries.get_mut(j), self.weights.get_mut(j)) {
                slot.clear();
                slot.extend_from_slice(update);
                *wslot = weight;
            }
        }
        self.folded += 1;
        Ok(())
    }

    fn folded(&self) -> usize {
        self.folded
    }

    fn state_bytes(&self) -> usize {
        // Count allocated capacity — the sample buffer's resident footprint —
        // including the spine of the `Vec<Vec<f32>>` itself. Length-based
        // accounting under-reported the reservoir before it filled and hid
        // the retained buffer from the cohort bench's peak assertion.
        let held: usize = self.entries.iter().map(Vec::capacity).sum();
        let spine = self.entries.capacity() * std::mem::size_of::<Vec<f32>>();
        (held + self.weights.capacity()) * std::mem::size_of::<f32>()
            + spine
            + std::mem::size_of::<Self>()
    }

    fn finish(&mut self) -> Result<Vec<f32>, AggregateError> {
        // The reservoir is ≤ capacity entries — a bounded borrow, not the
        // O(cohort) collection this sink exists to avoid.
        let refs: Vec<&[f32]> = self.entries.iter().map(Vec::as_slice).collect();
        let out = match self.stat {
            ReservoirStat::Trimmed(ratio) => trimmed_mean(&refs, &self.weights, ratio),
            ReservoirStat::Median => coordinate_median(&refs, &self.weights),
        };
        drop(refs);
        self.entries.clear();
        self.weights.clear();
        self.folded = 0;
        out
    }
}

/// SplitMix64 finalizer — the deterministic group-assignment hash of
/// [`HierarchicalSink`].
fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Two-level weighted [`UpdateSink`]: clients are deterministically hashed
/// into one of `groups` edge accumulators, each edge keeps a deferred
/// weighted sum, and finish folds the edges into the root mean.
///
/// State is O(groups × model) — the middle rung of the
/// O(clients × model) → O(groups × model) → O(model) ladder in `DESIGN.md`
/// §11. In a real deployment each edge accumulator lives on its own
/// aggregator node; in-process the type models the memory/communication
/// shape and pins the determinism contract.
///
/// # Determinism
///
/// Group assignment depends only on `(seed, client id)` via a SplitMix64
/// hash, never on arrival order. The result depends on the fold order
/// *within* each group: replaying the same fold sequence is bit-identical,
/// and permuting clients across different groups changes nothing. Agreement
/// with the flat weighted average is within f32 round-off (summation is
/// re-associated by group).
///
/// # Examples
///
/// ```
/// use calibre_fl::aggregate::{HierarchicalSink, UpdateSink};
///
/// let mut sink = HierarchicalSink::new(4, 42);
/// for client in 0..100usize {
///     let v = client as f32;
///     sink.fold(client, &[v, -v], 1.0).unwrap();
/// }
/// let mean = sink.finish().unwrap();
/// assert!((mean[0] - 49.5).abs() < 1e-3); // mean of 0..100
/// assert!((mean[1] + 49.5).abs() < 1e-3);
/// ```
#[derive(Debug)]
pub struct HierarchicalSink {
    accs: Vec<Vec<f32>>,
    totals: Vec<f32>,
    seed: u64,
    folded: usize,
    dim: Option<usize>,
}

impl HierarchicalSink {
    /// A sink with `groups` edge accumulators (at least 1) and a seed for
    /// the group-assignment hash.
    pub fn new(groups: usize, seed: u64) -> Self {
        let groups = groups.max(1);
        HierarchicalSink {
            accs: vec![Vec::new(); groups],
            totals: vec![0.0; groups],
            seed,
            folded: 0,
            dim: None,
        }
    }

    /// Number of edge accumulators.
    pub fn groups(&self) -> usize {
        self.accs.len()
    }

    /// The edge group `client` folds into — a pure function of
    /// `(seed, client)`, stable across rounds and replays.
    pub fn group_of(&self, client: usize) -> usize {
        // analyze:allow(lossy-cast) -- id→u64 is widening on every
        // supported target; the modulus keeps the result in-range.
        (mix64(self.seed ^ client as u64) % self.accs.len() as u64) as usize
    }
}

impl UpdateSink for HierarchicalSink {
    fn fold(&mut self, client: usize, update: &[f32], weight: f32) -> Result<(), AggregateError> {
        let dim = *self.dim.get_or_insert(update.len());
        if update.len() != dim {
            return Err(AggregateError::LengthMismatch {
                index: self.folded,
                expected: dim,
                got: update.len(),
            });
        }
        let g = self.group_of(client);
        if let (Some(acc), Some(total)) = (self.accs.get_mut(g), self.totals.get_mut(g)) {
            if acc.is_empty() {
                acc.resize(dim, 0.0);
            }
            for (o, &v) in acc.iter_mut().zip(update.iter()) {
                *o += weight * v;
            }
            *total += weight;
        }
        self.folded += 1;
        Ok(())
    }

    fn folded(&self) -> usize {
        self.folded
    }

    fn state_bytes(&self) -> usize {
        // Capacity-based, matching the other sinks: per-group accumulators,
        // the spine holding them, and the per-group weight totals.
        let held: usize = self.accs.iter().map(Vec::capacity).sum();
        let spine = self.accs.capacity() * std::mem::size_of::<Vec<f32>>();
        (held + self.totals.capacity()) * std::mem::size_of::<f32>()
            + spine
            + std::mem::size_of::<Self>()
    }

    fn finish(&mut self) -> Result<Vec<f32>, AggregateError> {
        if self.folded == 0 {
            return Err(AggregateError::Empty);
        }
        let dim = self.dim.take().unwrap_or(0);
        let grand: f32 = self.totals.iter().sum();
        let accs = std::mem::take(&mut self.accs);
        let groups = accs.len();
        self.accs = vec![Vec::new(); groups];
        for t in self.totals.iter_mut() {
            *t = 0.0;
        }
        self.folded = 0;
        if grand <= 0.0 {
            return Err(AggregateError::NonPositiveTotal);
        }
        // Root fold: edge sums combine in group-index order, then one
        // normalization — the same arithmetic a physical edge tier reports.
        let mut out = vec![0.0f32; dim];
        for acc in &accs {
            for (o, &v) in out.iter_mut().zip(acc.iter()) {
                *o += v;
            }
        }
        let inv = 1.0 / grand;
        for v in out.iter_mut() {
            *v *= inv;
        }
        Ok(out)
    }
}

/// Memory-bounded [`UpdateSink`] for the defense-grade aggregators
/// (Krum family, geometric median, norm bounding, centered clipping).
///
/// Those statistics need the whole cohort at once — Krum compares every
/// pair of updates, Weiszfeld iterates over all of them — so a constant-
/// memory stream is impossible. Like [`ReservoirSink`] the sink keeps a
/// uniform reservoir of at most `capacity` updates (algorithm R, seeded)
/// and finishes with the exact [`aggregate_robust`] statistic over the
/// reservoir in fold order: exact up to `capacity` folded updates, a
/// uniform-sample approximation beyond that, with state bounded by
/// O(capacity × model) regardless of cohort size.
///
/// # Determinism
///
/// Replacement choices depend only on `(seed, fold order)`; replaying the
/// same fold sequence reproduces the reservoir — and the defense output —
/// bit for bit.
///
/// # Examples
///
/// ```
/// use calibre_fl::aggregate::{krum, Aggregator, BufferedRobustSink, UpdateSink};
///
/// let updates: [&[f32]; 4] = [&[1.0], &[1.1], &[0.9], &[500.0]];
/// let mut sink = BufferedRobustSink::new(Aggregator::Krum { f: 1 }, 16, 7);
/// for (i, u) in updates.iter().enumerate() {
///     sink.fold(i, u, 1.0).unwrap();
/// }
/// assert_eq!(sink.finish().unwrap(), krum(&updates, &[1.0; 4], 1).unwrap());
/// ```
#[derive(Debug)]
pub struct BufferedRobustSink {
    aggregator: Aggregator,
    entries: Vec<Vec<f32>>,
    weights: Vec<f32>,
    capacity: usize,
    rng: StdRng,
    folded: usize,
}

impl BufferedRobustSink {
    /// A sink finishing with `aggregator` over at most `capacity` buffered
    /// updates; `seed` drives the deterministic reservoir replacement.
    pub fn new(aggregator: Aggregator, capacity: usize, seed: u64) -> Self {
        BufferedRobustSink {
            aggregator,
            entries: Vec::new(),
            weights: Vec::new(),
            capacity: capacity.max(1),
            rng: calibre_tensor::rng::seeded(seed ^ 0x5EED_5EED_5EED_5EED),
            folded: 0,
        }
    }
}

impl UpdateSink for BufferedRobustSink {
    fn fold(&mut self, _client: usize, update: &[f32], weight: f32) -> Result<(), AggregateError> {
        if let Some(first) = self.entries.first() {
            if update.len() != first.len() {
                return Err(AggregateError::LengthMismatch {
                    index: self.folded,
                    expected: first.len(),
                    got: update.len(),
                });
            }
        }
        if self.entries.len() < self.capacity {
            self.entries.push(update.to_vec());
            self.weights.push(weight);
        } else {
            let j = self.rng.gen_range(0..=self.folded);
            if let (Some(slot), Some(wslot)) = (self.entries.get_mut(j), self.weights.get_mut(j)) {
                slot.clear();
                slot.extend_from_slice(update);
                *wslot = weight;
            }
        }
        self.folded += 1;
        Ok(())
    }

    fn folded(&self) -> usize {
        self.folded
    }

    fn state_bytes(&self) -> usize {
        let held: usize = self.entries.iter().map(Vec::capacity).sum();
        let spine = self.entries.capacity() * std::mem::size_of::<Vec<f32>>();
        (held + self.weights.capacity()) * std::mem::size_of::<f32>()
            + spine
            + std::mem::size_of::<Self>()
    }

    fn finish(&mut self) -> Result<Vec<f32>, AggregateError> {
        let refs: Vec<&[f32]> = self.entries.iter().map(Vec::as_slice).collect();
        let out = aggregate_robust(self.aggregator, &refs, &self.weights);
        drop(refs);
        self.entries.clear();
        self.weights.clear();
        self.folded = 0;
        out
    }
}

impl Aggregator {
    /// Builds the streaming [`UpdateSink`] mirroring this aggregator.
    ///
    /// `capacity` bounds the reservoir of the robust variants (which are
    /// exact up to `capacity` folded updates, see [`ReservoirSink`] and
    /// [`BufferedRobustSink`]); the weighted variant ignores it and holds
    /// exactly O(model) state. `seed` drives the reservoirs' deterministic
    /// replacement choices.
    pub fn sink(self, capacity: usize, seed: u64) -> Box<dyn UpdateSink + Send> {
        match self {
            Aggregator::WeightedAverage => Box::new(StreamingWeightedSink::new()),
            Aggregator::TrimmedMean(ratio) => {
                Box::new(ReservoirSink::trimmed(ratio, capacity, seed))
            }
            Aggregator::CoordinateMedian => Box::new(ReservoirSink::median(capacity, seed)),
            Aggregator::Krum { .. }
            | Aggregator::MultiKrum { .. }
            | Aggregator::GeometricMedian
            | Aggregator::NormBound(_)
            | Aggregator::CenteredClip(_) => {
                Box::new(BufferedRobustSink::new(self, capacity, seed))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_average_of_two_vectors() {
        let avg = uniform_average(&[vec![0.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(avg, vec![1.0, 3.0]);
    }

    #[test]
    fn weighted_average_respects_weights() {
        let avg = weighted_average(&[vec![0.0], vec![10.0]], &[3.0, 1.0]);
        assert!((avg[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn weights_are_normalized() {
        let a = weighted_average(&[vec![1.0], vec![3.0]], &[1.0, 1.0]);
        let b = weighted_average(&[vec![1.0], vec![3.0]], &[100.0, 100.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_total_weight_falls_back_to_uniform() {
        let avg = weighted_average(&[vec![0.0], vec![4.0]], &[0.0, 0.0]);
        assert_eq!(avg, vec![2.0]);
    }

    #[test]
    fn single_update_is_identity() {
        let avg = weighted_average(&[vec![1.5, -2.0]], &[7.0]);
        assert_eq!(avg, vec![1.5, -2.0]);
    }

    #[test]
    fn divergence_weights_prefer_low_divergence() {
        let w = divergence_weights(&[0.1, 1.0]);
        assert!(w[0] > w[1]);
    }

    #[test]
    fn sample_count_weights_are_proportional() {
        let w = sample_count_weights(&[10, 30]);
        assert_eq!(w, vec![10.0, 30.0]);
    }

    #[test]
    fn refs_variant_matches_owned_variant_bitwise() {
        let updates = vec![vec![1.0f32, -2.5, 3.25], vec![0.5, 4.0, -1.0]];
        let weights = [2.0, 5.0];
        let owned = weighted_average(&updates, &weights);
        let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
        let borrowed = weighted_average_refs(&refs, &weights);
        assert_eq!(
            owned.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            borrowed.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "cannot aggregate zero updates")]
    fn empty_updates_panics() {
        uniform_average(&[]);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn mismatched_lengths_panic() {
        uniform_average(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn validate_update_flags_non_finite_values() {
        assert!(validate_update(&[1.0, -2.0, 0.0]));
        assert!(!validate_update(&[1.0, f32::NAN]));
        assert!(!validate_update(&[f32::INFINITY]));
        assert!(!validate_update(&[f32::NEG_INFINITY, 2.0]));
        assert!(validate_update(&[]));
    }

    #[test]
    fn clip_norm_scales_only_oversized_updates() {
        let mut big = vec![3.0f32, 4.0];
        assert!(clip_norm(&mut big, 1.0));
        let norm = (big[0] * big[0] + big[1] * big[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-5, "clipped norm {norm}");
        assert!((big[0] / big[1] - 0.75).abs() < 1e-5, "direction changed");

        let mut small = vec![0.3f32, 0.4];
        assert!(!clip_norm(&mut small, 1.0));
        assert_eq!(small, vec![0.3, 0.4]);

        // Non-finite norms are left for validation to reject.
        let mut poisoned = vec![f32::NAN, 1.0];
        assert!(!clip_norm(&mut poisoned, 1.0));
        assert!(poisoned[0].is_nan());
    }

    #[test]
    fn trimmed_mean_discards_an_outlier() {
        // Five honest clients around 1.0 and one blown-up straggler: a 20%
        // trim must remove the 1e6 update from every coordinate.
        let updates: Vec<Vec<f32>> = vec![
            vec![0.9, 1.1],
            vec![1.0, 1.0],
            vec![1.1, 0.9],
            vec![0.95, 1.05],
            vec![1.05, 0.95],
            vec![1e6, -1e6],
        ];
        let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
        let weights = vec![1.0f32; refs.len()];
        let out = trimmed_mean(&refs, &weights, 0.2).unwrap();
        assert!(
            out.iter().all(|v| (*v - 1.0).abs() < 0.2),
            "outlier leaked into {out:?}"
        );
    }

    #[test]
    fn coordinate_median_resists_a_minority_of_liars() {
        let updates: Vec<Vec<f32>> = vec![
            vec![1.0, -1.0],
            vec![1.1, -0.9],
            vec![0.9, -1.1],
            vec![-500.0, 500.0],
        ];
        let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
        let out = coordinate_median(&refs, &[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(out[0] > 0.0 && out[0] < 1.2, "median hijacked: {out:?}");
        assert!(out[1] < 0.0 && out[1] > -1.2, "median hijacked: {out:?}");
    }

    #[test]
    fn coordinate_median_respects_weights() {
        let refs: Vec<&[f32]> = vec![&[0.0f32], &[10.0f32]];
        // The heavy client owns more than half the total weight, so the
        // weighted median lands on its value.
        let out = coordinate_median(&refs, &[1.0, 3.0]).unwrap();
        assert_eq!(out, vec![10.0]);
        let out = coordinate_median(&refs, &[3.0, 1.0]).unwrap();
        assert_eq!(out, vec![0.0]);
    }

    #[test]
    fn robust_aggregation_reports_typed_errors() {
        assert!(matches!(
            aggregate_robust(Aggregator::WeightedAverage, &[], &[]),
            Err(AggregateError::Empty)
        ));
        let refs: Vec<&[f32]> = vec![&[1.0f32, 2.0], &[1.0f32]];
        assert!(matches!(
            aggregate_robust(Aggregator::CoordinateMedian, &refs, &[1.0, 1.0]),
            Err(AggregateError::LengthMismatch {
                index: 1,
                expected: 2,
                got: 1
            })
        ));
        let refs: Vec<&[f32]> = vec![&[1.0f32]];
        assert!(matches!(
            aggregate_robust(Aggregator::TrimmedMean(0.2), &refs, &[1.0, 1.0]),
            Err(AggregateError::WeightCountMismatch {
                updates: 1,
                weights: 2
            })
        ));
    }

    #[test]
    fn aggregator_parse_accepts_the_documented_spellings() {
        assert_eq!(
            Aggregator::parse("weighted").unwrap(),
            Aggregator::WeightedAverage
        );
        assert_eq!(
            Aggregator::parse("mean").unwrap(),
            Aggregator::WeightedAverage
        );
        assert_eq!(
            Aggregator::parse("median").unwrap(),
            Aggregator::CoordinateMedian
        );
        assert_eq!(
            Aggregator::parse("trimmed").unwrap(),
            Aggregator::TrimmedMean(0.2)
        );
        assert_eq!(
            Aggregator::parse("trimmed:0.1").unwrap(),
            Aggregator::TrimmedMean(0.1)
        );
        assert!(
            Aggregator::parse("trimmed:0.7").is_none(),
            "ratio above 0.5"
        );
        assert_eq!(
            Aggregator::parse("krum").unwrap(),
            Aggregator::Krum { f: 1 }
        );
        assert_eq!(
            Aggregator::parse("krum:2").unwrap(),
            Aggregator::Krum { f: 2 }
        );
        assert_eq!(
            Aggregator::parse("multikrum").unwrap(),
            Aggregator::MultiKrum { f: 1, m: 3 }
        );
        assert_eq!(
            Aggregator::parse("multi-krum:2:5").unwrap(),
            Aggregator::MultiKrum { f: 2, m: 5 }
        );
        assert_eq!(
            Aggregator::parse("geomedian").unwrap(),
            Aggregator::GeometricMedian
        );
        assert_eq!(
            Aggregator::parse("normbound:5").unwrap(),
            Aggregator::NormBound(5.0)
        );
        assert_eq!(
            Aggregator::parse("clip:0.5").unwrap(),
            Aggregator::CenteredClip(0.5)
        );
        assert!(
            Aggregator::parse("multikrum:1:0").is_none(),
            "m must be > 0"
        );
        assert!(Aggregator::parse("normbound:-1").is_none());
        assert!(Aggregator::parse("bogus").is_none(), "unknown aggregator");
        // Every variant's canonical name must parse back to itself.
        for agg in [
            Aggregator::WeightedAverage,
            Aggregator::TrimmedMean(0.2),
            Aggregator::CoordinateMedian,
            Aggregator::Krum { f: 2 },
            Aggregator::MultiKrum { f: 2, m: 4 },
            Aggregator::GeometricMedian,
            Aggregator::NormBound(3.0),
            Aggregator::CenteredClip(1.5),
        ] {
            assert_eq!(Aggregator::parse(&agg.name()), Some(agg), "{agg:?}");
        }
    }

    #[test]
    fn parse_spec_errors_name_keyword_and_parameter_span() {
        // Every malformed shape: (spec, blamed keyword, byte span of the
        // offending parameter — the whole input for unknown keywords).
        let cases = [
            ("bogus", "bogus", (0, 5)),
            ("trimmed:x", "trimmed", (8, 9)),
            ("trimmed:0.5", "trimmed", (8, 11)),
            ("trimmed:-0.1", "trimmed", (8, 12)),
            ("krum:x", "krum", (5, 6)),
            ("multikrum:1", "multikrum", (10, 11)),
            ("multikrum:x:2", "multikrum", (10, 11)),
            ("multikrum:1:x", "multikrum", (12, 13)),
            ("multikrum:1:0", "multikrum", (12, 13)),
            ("multi-krum:1:x", "multikrum", (13, 14)),
            ("normbound:x", "normbound", (10, 11)),
            ("normbound:-1", "normbound", (10, 12)),
            ("normbound:inf", "normbound", (10, 13)),
            ("clip:x", "clip", (5, 6)),
            ("clip:0", "clip", (5, 6)),
        ];
        for (spec, key, span) in cases {
            let err = Aggregator::parse_spec(spec).expect_err(spec);
            assert_eq!(err.family, "aggregator", "{spec}");
            assert_eq!(err.key, key, "{spec}");
            assert_eq!(err.span, span, "{spec}");
        }
        let err = Aggregator::parse_spec("trimmed:0.9").expect_err("trimmed:0.9");
        assert_eq!(
            err.to_string(),
            "aggregator spec: `trimmed` at bytes 8..11: ratio 0.9 outside [0, 0.5)"
        );
    }

    #[test]
    fn streaming_sink_per_fold_matches_refs_bitwise() {
        let updates: [&[f32]; 3] = [&[1.0, -2.5, 0.125], &[0.5, 4.0, -1.0], &[3.0, 0.0, 9.5]];
        let weights = [2.0, 5.0, 1.0];
        let reference = weighted_average_refs(&updates, &weights);
        let total: f32 = weights.iter().sum();
        let mut sink = StreamingWeightedSink::for_cohort(total, updates.len());
        for (i, (u, &w)) in updates.iter().zip(weights.iter()).enumerate() {
            sink.fold(i, u, w).unwrap();
        }
        let streamed = sink.finish().unwrap();
        assert_eq!(streamed.len(), reference.len());
        for (s, r) in streamed.iter().zip(reference.iter()) {
            assert_eq!(s.to_bits(), r.to_bits(), "bit-identity in canonical order");
        }
    }

    #[test]
    fn streaming_sink_deferred_agrees_under_permutation() {
        let updates: [&[f32]; 3] = [&[1.0, -2.5], &[0.5, 4.0], &[3.0, 0.0]];
        let weights = [2.0, 5.0, 1.0];
        let reference = weighted_average_refs(&updates, &weights);
        for order in [[0usize, 1, 2], [2, 0, 1], [1, 2, 0]] {
            let mut sink = StreamingWeightedSink::new();
            for &i in &order {
                let (u, w) = updates
                    .iter()
                    .zip(weights.iter())
                    .nth(i)
                    .map(|(u, &w)| (*u, w))
                    .unwrap_or((&[], 0.0));
                sink.fold(i, u, w).unwrap();
            }
            let streamed = sink.finish().unwrap();
            for (s, r) in streamed.iter().zip(reference.iter()) {
                assert!((s - r).abs() < 1e-5, "{order:?}: {s} vs {r}");
            }
        }
    }

    #[test]
    fn streaming_sink_reports_mismatch_and_spent_state() {
        let mut sink = StreamingWeightedSink::new();
        sink.fold(0, &[1.0, 2.0], 1.0).unwrap();
        assert!(matches!(
            sink.fold(1, &[1.0], 1.0),
            Err(AggregateError::LengthMismatch {
                index: 1,
                expected: 2,
                got: 1
            })
        ));
        assert!(sink.finish().is_ok());
        assert!(
            matches!(sink.finish(), Err(AggregateError::Empty)),
            "a sink is spent after finish"
        );
    }

    #[test]
    fn streaming_sink_rejects_non_positive_total() {
        let mut sink = StreamingWeightedSink::new();
        sink.fold(0, &[1.0], 0.0).unwrap();
        assert!(matches!(
            sink.finish(),
            Err(AggregateError::NonPositiveTotal)
        ));
    }

    #[test]
    fn reservoir_sink_is_exact_under_capacity() {
        let updates: [&[f32]; 5] = [&[1.0], &[2.0], &[3.0], &[100.0], &[-50.0]];
        let weights = [1.0; 5];
        let mut sink = ReservoirSink::median(8, 3);
        for (i, u) in updates.iter().enumerate() {
            sink.fold(i, u, 1.0).unwrap();
        }
        assert_eq!(
            sink.finish().unwrap(),
            coordinate_median(&updates, &weights).unwrap()
        );

        let mut sink = ReservoirSink::trimmed(0.2, 8, 3);
        for (i, u) in updates.iter().enumerate() {
            sink.fold(i, u, 1.0).unwrap();
        }
        assert_eq!(
            sink.finish().unwrap(),
            trimmed_mean(&updates, &weights, 0.2).unwrap()
        );
    }

    #[test]
    fn reservoir_sink_is_bounded_and_replay_identical() {
        let run = || {
            let mut sink = ReservoirSink::median(16, 9);
            for i in 0..5_000usize {
                // analyze:allow(lossy-cast) -- test data generation only.
                sink.fold(i, &[i as f32, -(i as f32)], 1.0).unwrap();
            }
            let bytes = sink.state_bytes();
            (sink.finish().unwrap(), bytes)
        };
        let (a, bytes_a) = run();
        let (b, bytes_b) = run();
        assert_eq!(a, b, "same seed + fold order replays bit-identically");
        assert_eq!(bytes_a, bytes_b);
        let flat_bytes = 5_000 * 2 * std::mem::size_of::<f32>();
        assert!(
            bytes_a < flat_bytes / 10,
            "reservoir must stay far below the O(cohort) collection ({bytes_a} vs {flat_bytes})"
        );
    }

    #[test]
    fn hierarchical_sink_agrees_with_flat_average() {
        let mut sink = HierarchicalSink::new(8, 42);
        let updates: Vec<Vec<f32>> = (0..200)
            .map(|i| {
                // analyze:allow(lossy-cast) -- test data generation only.
                vec![i as f32 * 0.25, 1.0 - i as f32]
            })
            .collect();
        let weights: Vec<f32> = (0..200).map(|i| 1.0 + (i % 7) as f32).collect();
        for (i, (u, &w)) in updates.iter().zip(weights.iter()).enumerate() {
            sink.fold(i, u, w).unwrap();
        }
        let hier = sink.finish().unwrap();
        let flat = weighted_average(&updates, &weights);
        for (h, f) in hier.iter().zip(flat.iter()) {
            assert!((h - f).abs() < 1e-3, "{h} vs {f}");
        }
    }

    #[test]
    fn hierarchical_sink_group_assignment_is_stable() {
        let sink = HierarchicalSink::new(4, 7);
        let assignment: Vec<usize> = (0..64).map(|c| sink.group_of(c)).collect();
        let again: Vec<usize> = (0..64).map(|c| sink.group_of(c)).collect();
        assert_eq!(assignment, again);
        assert!(assignment.iter().all(|&g| g < 4));
        // The seeded hash must actually spread clients across groups.
        let used: std::collections::BTreeSet<usize> = assignment.iter().copied().collect();
        assert!(used.len() > 1, "all clients hashed to one group");
    }

    #[test]
    fn aggregator_sink_factory_mirrors_the_enum() {
        let updates: [&[f32]; 4] = [&[1.0, 8.0], &[2.0, -4.0], &[3.0, 0.5], &[400.0, 1.0]];
        let weights = [1.0; 4];
        for agg in [
            Aggregator::WeightedAverage,
            Aggregator::TrimmedMean(0.25),
            Aggregator::CoordinateMedian,
            Aggregator::Krum { f: 1 },
            Aggregator::MultiKrum { f: 1, m: 2 },
            Aggregator::GeometricMedian,
            Aggregator::NormBound(10.0),
            Aggregator::CenteredClip(5.0),
        ] {
            let mut sink = agg.sink(64, 11);
            for (i, u) in updates.iter().enumerate() {
                sink.fold(i, u, 1.0).unwrap();
            }
            let streamed = sink.finish().unwrap();
            let reference = aggregate_robust(agg, &updates, &weights).unwrap();
            for (s, r) in streamed.iter().zip(reference.iter()) {
                assert!((s - r).abs() < 1e-5, "{agg:?}: {s} vs {r}");
            }
        }
    }

    #[test]
    fn trimmed_mean_rejects_bad_ratio_and_tiny_cohorts() {
        let refs: Vec<&[f32]> = vec![&[1.0f32], &[2.0f32]];
        assert!(matches!(
            trimmed_mean(&refs, &[1.0, 1.0], 0.5),
            Err(AggregateError::InvalidTrimRatio { .. })
        ));
        assert!(matches!(
            trimmed_mean(&refs, &[1.0, 1.0], -0.1),
            Err(AggregateError::InvalidTrimRatio { .. })
        ));
        assert!(matches!(
            trimmed_mean(&refs, &[1.0, 1.0], f32::NAN),
            Err(AggregateError::InvalidTrimRatio { .. })
        ));
        // Trimming one from each side of a two-client cohort leaves nothing:
        // typed error, not a silent average of zero updates.
        assert!(matches!(
            trimmed_mean(&refs, &[1.0, 1.0], 0.49),
            Err(AggregateError::CohortTooSmall { needed: 3, got: 2 })
        ));
        // Ratio zero is a plain weighted mean even for a single client.
        let single: Vec<&[f32]> = vec![&[4.0f32]];
        assert_eq!(trimmed_mean(&single, &[2.0], 0.0).unwrap(), vec![4.0]);
    }

    #[test]
    fn krum_picks_the_central_update_and_rejects_tiny_cohorts() {
        let updates: [&[f32]; 5] = [
            &[1.0, 1.0],
            &[1.1, 0.9],
            &[0.9, 1.1],
            &[1.0, 0.95],
            &[80.0, -80.0],
        ];
        let weights = [1.0; 5];
        let out = krum(&updates, &weights, 1).unwrap();
        assert!(out[0] < 2.0, "byzantine update won krum: {out:?}");
        // The winner is one of the inputs, verbatim.
        assert!(updates.contains(&out.as_slice()));

        let small: Vec<&[f32]> = vec![&[1.0f32], &[2.0f32]];
        assert!(matches!(
            krum(&small, &[1.0, 1.0], 1),
            Err(AggregateError::CohortTooSmall { needed: 4, got: 2 })
        ));
        let one: Vec<&[f32]> = vec![&[1.0f32]];
        assert!(matches!(
            krum(&one, &[1.0], 0),
            Err(AggregateError::CohortTooSmall { needed: 3, got: 1 })
        ));
    }

    #[test]
    fn multi_krum_averages_the_low_score_set() {
        let updates: [&[f32]; 5] = [&[1.0], &[1.2], &[0.8], &[1.1], &[500.0]];
        let weights = [1.0; 5];
        let out = multi_krum(&updates, &weights, 1, 3).unwrap();
        assert!(out[0] > 0.5 && out[0] < 1.5, "outlier leaked: {out:?}");
    }

    #[test]
    fn geometric_median_resists_a_minority_of_liars() {
        let updates: [&[f32]; 4] = [&[1.0, -1.0], &[1.1, -0.9], &[0.9, -1.1], &[-500.0, 500.0]];
        let out = geometric_median(&updates, &[1.0; 4]).unwrap();
        assert!(out[0] > 0.0 && out[0] < 1.5, "hijacked: {out:?}");
        assert!(out[1] < 0.0 && out[1] > -1.5, "hijacked: {out:?}");
        // Single client: the median is that client.
        let one: Vec<&[f32]> = vec![&[3.0f32, -2.0]];
        assert_eq!(geometric_median(&one, &[1.0]).unwrap(), vec![3.0, -2.0]);
    }

    #[test]
    fn geometric_median_is_replay_and_permutation_stable() {
        let updates: [&[f32]; 3] = [&[0.0, 0.0], &[2.0, 0.0], &[0.0, 2.0]];
        let a = geometric_median(&updates, &[1.0; 3]).unwrap();
        let b = geometric_median(&updates, &[1.0; 3]).unwrap();
        assert_eq!(
            a.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "same inputs must produce the same bits"
        );
        let permuted: [&[f32]; 3] = [&[0.0, 2.0], &[0.0, 0.0], &[2.0, 0.0]];
        let c = geometric_median(&permuted, &[1.0; 3]).unwrap();
        for (x, y) in a.iter().zip(c.iter()) {
            assert!((x - y).abs() < 1e-4, "permutation moved the median");
        }
    }

    #[test]
    fn norm_bounded_mean_caps_a_blown_up_client() {
        let updates: [&[f32]; 3] = [&[1.0, 0.0], &[0.0, 1.0], &[1e6, 1e6]];
        let out = norm_bounded_mean(&updates, &[1.0; 3], 2.0).unwrap();
        let norm = (out[0] * out[0] + out[1] * out[1]).sqrt();
        assert!(norm <= 2.0 + 1e-4, "clip failed: {out:?}");
    }

    #[test]
    fn centered_clip_bounds_byzantine_displacement() {
        let updates: [&[f32]; 4] = [&[1.0, 1.0], &[1.1, 0.9], &[0.9, 1.1], &[1e5, -1e5]];
        let out = centered_clip(&updates, &[1.0; 4], 2.0).unwrap();
        // Each iteration moves the center by at most tau, so three
        // iterations bound it within 3·tau of the origin.
        let norm = (out[0] * out[0] + out[1] * out[1]).sqrt();
        assert!(norm <= 3.0 * 2.0 + 1e-4, "center ran away: {out:?}");
        // And honest clients must still pull it toward their mean.
        assert!(out[0] > 0.5, "honest signal lost: {out:?}");
    }

    #[test]
    fn buffered_robust_sink_is_bounded_and_replay_identical() {
        let run = || {
            let mut sink = BufferedRobustSink::new(Aggregator::GeometricMedian, 16, 9);
            for i in 0..3_000usize {
                // analyze:allow(lossy-cast) -- test data generation only.
                sink.fold(i, &[i as f32, -(i as f32)], 1.0).unwrap();
            }
            let bytes = sink.state_bytes();
            (sink.finish().unwrap(), bytes)
        };
        let (a, bytes_a) = run();
        let (b, bytes_b) = run();
        assert_eq!(a, b, "same seed + fold order replays bit-identically");
        assert_eq!(bytes_a, bytes_b);
        let flat_bytes = 3_000 * 2 * std::mem::size_of::<f32>();
        assert!(bytes_a < flat_bytes / 10, "reservoir grew: {bytes_a}");
    }

    #[test]
    fn krum_sink_surfaces_cohort_too_small_for_skipped_rounds() {
        let mut sink = Aggregator::Krum { f: 1 }.sink(64, 1);
        sink.fold(0, &[1.0], 1.0).unwrap();
        assert!(
            matches!(
                sink.finish(),
                Err(AggregateError::CohortTooSmall { needed: 4, got: 1 })
            ),
            "single-client cohort must take the typed skipped-round path"
        );
    }
}
