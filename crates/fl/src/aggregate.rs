//! Server-side aggregation of client updates.
//!
//! Everything travels as flat parameter vectors (`Module::to_flat`). The
//! plain weighted average is FedAvg; Calibre's divergence-aware variant
//! (in the `calibre` crate) reuses [`weighted_average`] with
//! prototype-distance-derived weights.
//!
//! # Robustness
//!
//! A best-effort cohort can report garbage: NaN/Inf poisoned vectors, norm
//! blow-ups, sign flips (see `crate::chaos`). The fault-tolerant path layers
//! three defenses, all selectable via [`Aggregator`]:
//!
//! 1. **Validation** ([`validate_update`]) rejects non-finite updates before
//!    they touch the accumulator — one NaN coordinate would otherwise poison
//!    the entire global model.
//! 2. **Norm clipping** ([`clip_norm`]) caps finite-but-huge updates.
//! 3. **Robust statistics** — [`trimmed_mean`] and [`coordinate_median`]
//!    bound the influence of any single client, absorbing silent
//!    corruptions (sign flips) that validation cannot see.
//!
//! [`aggregate_robust`] is the typed-error front door used by the resilient
//! round executor; the panicking [`weighted_average`] family remains for
//! call sites that have already validated their cohort.

/// Weighted average of flat parameter vectors.
///
/// Weights are normalized internally; non-positive total weight falls back
/// to a uniform average.
///
/// # Panics
///
/// Panics if `updates` is empty, lengths differ, or `weights.len()`
/// mismatches `updates.len()`.
pub fn weighted_average(updates: &[Vec<f32>], weights: &[f32]) -> Vec<f32> {
    let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
    weighted_average_refs(&refs, weights)
}

/// Weighted average over borrowed flat vectors — the zero-copy core of
/// [`weighted_average`]. The server loop aggregates straight from the
/// clients' owned flats without cloning each one first.
///
/// # Panics
///
/// Panics under the same conditions as [`weighted_average`].
pub fn weighted_average_refs(updates: &[&[f32]], weights: &[f32]) -> Vec<f32> {
    assert!(!updates.is_empty(), "cannot aggregate zero updates");
    assert_eq!(
        updates.len(),
        weights.len(),
        "one weight per update required"
    );
    let dim = updates[0].len();
    for (i, u) in updates.iter().enumerate() {
        assert_eq!(
            u.len(),
            dim,
            "update {i} has length {} expected {dim}",
            u.len()
        );
    }
    let span = calibre_telemetry::span("aggregate");
    span.add_items(updates.len() as u64);
    span.add_bytes((updates.len() * dim * std::mem::size_of::<f32>()) as u64);
    // Normalization is folded into the accumulation: each update's scale is
    // `w / total` (uniform fallback on a non-positive total), so no
    // intermediate normalized-weights vector is materialized.
    let total: f32 = weights.iter().sum();
    let uniform = 1.0 / updates.len() as f32;
    let mut out = vec![0.0f32; dim];
    for (u, &w) in updates.iter().zip(weights.iter()) {
        let scale = if total > 0.0 { w / total } else { uniform };
        for (o, &v) in out.iter_mut().zip(u.iter()) {
            *o += scale * v;
        }
    }
    out
}

/// Uniform average of flat parameter vectors.
///
/// # Panics
///
/// Panics under the same conditions as [`weighted_average`].
pub fn uniform_average(updates: &[Vec<f32>]) -> Vec<f32> {
    let w = vec![1.0; updates.len()];
    weighted_average(updates, &w)
}

/// Converts per-client sample counts into FedAvg weights.
pub fn sample_count_weights(counts: &[usize]) -> Vec<f32> {
    counts.iter().map(|&c| c as f32).collect()
}

/// Typed failure of a fault-tolerant aggregation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AggregateError {
    /// No updates survived validation — nothing to aggregate.
    Empty,
    /// Update `index` has a different length than the first update.
    LengthMismatch {
        /// Position of the offending update.
        index: usize,
        /// Expected vector length (from update 0).
        expected: usize,
        /// Actual vector length.
        got: usize,
    },
    /// `weights.len()` does not match `updates.len()`.
    WeightCountMismatch {
        /// Number of updates.
        updates: usize,
        /// Number of weights.
        weights: usize,
    },
}

impl std::fmt::Display for AggregateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AggregateError::Empty => write!(f, "cannot aggregate zero updates"),
            AggregateError::LengthMismatch {
                index,
                expected,
                got,
            } => write!(f, "update {index} has length {got}, expected {expected}"),
            AggregateError::WeightCountMismatch { updates, weights } => {
                write!(f, "{updates} updates but {weights} weights")
            }
        }
    }
}

impl std::error::Error for AggregateError {}

/// Aggregation statistic for the fault-tolerant round path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Aggregator {
    /// Plain weighted average — bit-identical to [`weighted_average_refs`],
    /// zero robustness to silent corruption.
    WeightedAverage,
    /// Per-coordinate weighted average after discarding the
    /// `ceil(ratio * n)` smallest and largest values of each coordinate.
    /// `ratio = 0` degrades to the weighted average (up to summation
    /// order); `ratio` must be `< 0.5`.
    TrimmedMean(f32),
    /// Per-coordinate weighted median: tolerates just under half the cohort
    /// being arbitrarily corrupted, ignores weights magnitudes least.
    CoordinateMedian,
}

impl Aggregator {
    /// Parses a CLI name: `weighted`, `trimmed` / `trimmed:<ratio>`,
    /// `median`.
    pub fn parse(s: &str) -> Option<Aggregator> {
        let lower = s.to_ascii_lowercase();
        match lower.as_str() {
            "weighted" | "weighted-average" | "mean" => Some(Aggregator::WeightedAverage),
            "median" | "coordinate-median" => Some(Aggregator::CoordinateMedian),
            "trimmed" | "trimmed-mean" => Some(Aggregator::TrimmedMean(0.2)),
            other => {
                let ratio = other.strip_prefix("trimmed:")?.parse().ok()?;
                (0.0..0.5)
                    .contains(&ratio)
                    .then_some(Aggregator::TrimmedMean(ratio))
            }
        }
    }

    /// Display name (parsable by [`Aggregator::parse`]).
    pub fn name(self) -> String {
        match self {
            Aggregator::WeightedAverage => "weighted".into(),
            Aggregator::TrimmedMean(r) => format!("trimmed:{r}"),
            Aggregator::CoordinateMedian => "median".into(),
        }
    }
}

/// Whether every coordinate of an update is finite. The validation gate the
/// resilient executor applies before letting an update near the aggregator.
pub fn validate_update(update: &[f32]) -> bool {
    update.iter().all(|v| v.is_finite())
}

/// Clips `update` in place to L2 norm at most `max_norm`; returns `true`
/// when clipping actually happened. Non-finite inputs are left untouched
/// (they must be rejected by [`validate_update`], not laundered).
pub fn clip_norm(update: &mut [f32], max_norm: f32) -> bool {
    let norm_sq: f32 = update.iter().map(|v| v * v).sum();
    if !norm_sq.is_finite() {
        return false;
    }
    let norm = norm_sq.sqrt();
    if norm <= max_norm || norm == 0.0 {
        return false;
    }
    let scale = max_norm / norm;
    for v in update.iter_mut() {
        *v *= scale;
    }
    true
}

fn check_shapes(updates: &[&[f32]], weights: &[f32]) -> Result<usize, AggregateError> {
    if updates.is_empty() {
        return Err(AggregateError::Empty);
    }
    if updates.len() != weights.len() {
        return Err(AggregateError::WeightCountMismatch {
            updates: updates.len(),
            weights: weights.len(),
        });
    }
    let dim = updates[0].len();
    for (i, u) in updates.iter().enumerate() {
        if u.len() != dim {
            return Err(AggregateError::LengthMismatch {
                index: i,
                expected: dim,
                got: u.len(),
            });
        }
    }
    Ok(dim)
}

/// Per-coordinate weighted trimmed mean.
///
/// For each coordinate, the `ceil(ratio * n)` smallest and largest values
/// are discarded and the survivors are averaged with their (re-normalized)
/// weights. At `ratio = 0` nothing is trimmed and the result equals the
/// weighted average up to floating-point summation order.
///
/// # Errors
///
/// Shape errors as in [`aggregate_robust`]; additionally trims are capped so
/// at least one value survives per coordinate.
pub fn trimmed_mean(
    updates: &[&[f32]],
    weights: &[f32],
    ratio: f32,
) -> Result<Vec<f32>, AggregateError> {
    let dim = check_shapes(updates, weights)?;
    let n = updates.len();
    let mut trim = (ratio.max(0.0) * n as f32).ceil() as usize;
    // Keep at least one value per coordinate.
    while n.saturating_sub(2 * trim) == 0 && trim > 0 {
        trim -= 1;
    }
    let span = calibre_telemetry::span("aggregate");
    span.add_items(n as u64);
    let mut out = vec![0.0f32; dim];
    let mut column: Vec<(f32, f32)> = Vec::with_capacity(n);
    for (j, o) in out.iter_mut().enumerate() {
        column.clear();
        column.extend(updates.iter().zip(weights).map(|(u, &w)| (u[j], w)));
        column.sort_by(|a, b| a.0.total_cmp(&b.0));
        let kept = &column[trim..n - trim];
        let total: f32 = kept.iter().map(|(_, w)| w).sum();
        let uniform = 1.0 / kept.len() as f32;
        *o = kept
            .iter()
            .map(|(v, w)| v * if total > 0.0 { w / total } else { uniform })
            .sum();
    }
    Ok(out)
}

/// Per-coordinate weighted median.
///
/// Each output coordinate is the smallest value whose cumulative weight
/// reaches half the total (uniform weights when the total is non-positive).
/// Tolerates just under half the cohort being arbitrarily corrupted.
///
/// # Errors
///
/// Shape errors as in [`aggregate_robust`].
pub fn coordinate_median(updates: &[&[f32]], weights: &[f32]) -> Result<Vec<f32>, AggregateError> {
    let dim = check_shapes(updates, weights)?;
    let n = updates.len();
    let span = calibre_telemetry::span("aggregate");
    span.add_items(n as u64);
    let total: f32 = weights.iter().sum();
    let uniform = total <= 0.0;
    let full: f32 = if uniform { n as f32 } else { total };
    let mut out = vec![0.0f32; dim];
    let mut column: Vec<(f32, f32)> = Vec::with_capacity(n);
    for (j, o) in out.iter_mut().enumerate() {
        column.clear();
        column.extend(
            updates
                .iter()
                .zip(weights)
                .map(|(u, &w)| (u[j], if uniform { 1.0 } else { w })),
        );
        column.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut acc = 0.0f32;
        let mut median = column[n - 1].0;
        for &(v, w) in column.iter() {
            acc += w;
            if acc >= full * 0.5 {
                median = v;
                break;
            }
        }
        *o = median;
    }
    Ok(out)
}

/// Fault-tolerant aggregation front door: dispatches on [`Aggregator`] and
/// returns a typed error instead of panicking.
///
/// [`Aggregator::WeightedAverage`] delegates to [`weighted_average_refs`]
/// after validating shapes, so its output is bit-identical to the legacy
/// path — the golden-checksum tests rely on that.
///
/// # Errors
///
/// [`AggregateError::Empty`] on an empty cohort (e.g. everything was
/// rejected by validation), and shape/weight-count mismatches.
pub fn aggregate_robust(
    aggregator: Aggregator,
    updates: &[&[f32]],
    weights: &[f32],
) -> Result<Vec<f32>, AggregateError> {
    match aggregator {
        Aggregator::WeightedAverage => {
            check_shapes(updates, weights)?;
            Ok(weighted_average_refs(updates, weights))
        }
        Aggregator::TrimmedMean(ratio) => trimmed_mean(updates, weights, ratio),
        Aggregator::CoordinateMedian => coordinate_median(updates, weights),
    }
}

/// Converts per-client divergence rates into aggregation weights via
/// inverse-divergence normalization (Calibre §IV-B: clients whose samples
/// sit closer to their prototypes — lower divergence — contribute more).
///
/// A small epsilon keeps the weights finite when a divergence is zero.
pub fn divergence_weights(divergences: &[f32]) -> Vec<f32> {
    divergences
        .iter()
        .map(|&d| 1.0 / (d.max(0.0) + 1e-3))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_average_of_two_vectors() {
        let avg = uniform_average(&[vec![0.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(avg, vec![1.0, 3.0]);
    }

    #[test]
    fn weighted_average_respects_weights() {
        let avg = weighted_average(&[vec![0.0], vec![10.0]], &[3.0, 1.0]);
        assert!((avg[0] - 2.5).abs() < 1e-6);
    }

    #[test]
    fn weights_are_normalized() {
        let a = weighted_average(&[vec![1.0], vec![3.0]], &[1.0, 1.0]);
        let b = weighted_average(&[vec![1.0], vec![3.0]], &[100.0, 100.0]);
        assert_eq!(a, b);
    }

    #[test]
    fn zero_total_weight_falls_back_to_uniform() {
        let avg = weighted_average(&[vec![0.0], vec![4.0]], &[0.0, 0.0]);
        assert_eq!(avg, vec![2.0]);
    }

    #[test]
    fn single_update_is_identity() {
        let avg = weighted_average(&[vec![1.5, -2.0]], &[7.0]);
        assert_eq!(avg, vec![1.5, -2.0]);
    }

    #[test]
    fn divergence_weights_prefer_low_divergence() {
        let w = divergence_weights(&[0.1, 1.0]);
        assert!(w[0] > w[1]);
    }

    #[test]
    fn sample_count_weights_are_proportional() {
        let w = sample_count_weights(&[10, 30]);
        assert_eq!(w, vec![10.0, 30.0]);
    }

    #[test]
    fn refs_variant_matches_owned_variant_bitwise() {
        let updates = vec![vec![1.0f32, -2.5, 3.25], vec![0.5, 4.0, -1.0]];
        let weights = [2.0, 5.0];
        let owned = weighted_average(&updates, &weights);
        let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
        let borrowed = weighted_average_refs(&refs, &weights);
        assert_eq!(
            owned.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            borrowed.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "cannot aggregate zero updates")]
    fn empty_updates_panics() {
        uniform_average(&[]);
    }

    #[test]
    #[should_panic(expected = "expected")]
    fn mismatched_lengths_panic() {
        uniform_average(&[vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn validate_update_flags_non_finite_values() {
        assert!(validate_update(&[1.0, -2.0, 0.0]));
        assert!(!validate_update(&[1.0, f32::NAN]));
        assert!(!validate_update(&[f32::INFINITY]));
        assert!(!validate_update(&[f32::NEG_INFINITY, 2.0]));
        assert!(validate_update(&[]));
    }

    #[test]
    fn clip_norm_scales_only_oversized_updates() {
        let mut big = vec![3.0f32, 4.0];
        assert!(clip_norm(&mut big, 1.0));
        let norm = (big[0] * big[0] + big[1] * big[1]).sqrt();
        assert!((norm - 1.0).abs() < 1e-5, "clipped norm {norm}");
        assert!((big[0] / big[1] - 0.75).abs() < 1e-5, "direction changed");

        let mut small = vec![0.3f32, 0.4];
        assert!(!clip_norm(&mut small, 1.0));
        assert_eq!(small, vec![0.3, 0.4]);

        // Non-finite norms are left for validation to reject.
        let mut poisoned = vec![f32::NAN, 1.0];
        assert!(!clip_norm(&mut poisoned, 1.0));
        assert!(poisoned[0].is_nan());
    }

    #[test]
    fn trimmed_mean_discards_an_outlier() {
        // Five honest clients around 1.0 and one blown-up straggler: a 20%
        // trim must remove the 1e6 update from every coordinate.
        let updates: Vec<Vec<f32>> = vec![
            vec![0.9, 1.1],
            vec![1.0, 1.0],
            vec![1.1, 0.9],
            vec![0.95, 1.05],
            vec![1.05, 0.95],
            vec![1e6, -1e6],
        ];
        let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
        let weights = vec![1.0f32; refs.len()];
        let out = trimmed_mean(&refs, &weights, 0.2).unwrap();
        assert!(
            out.iter().all(|v| (*v - 1.0).abs() < 0.2),
            "outlier leaked into {out:?}"
        );
    }

    #[test]
    fn coordinate_median_resists_a_minority_of_liars() {
        let updates: Vec<Vec<f32>> = vec![
            vec![1.0, -1.0],
            vec![1.1, -0.9],
            vec![0.9, -1.1],
            vec![-500.0, 500.0],
        ];
        let refs: Vec<&[f32]> = updates.iter().map(Vec::as_slice).collect();
        let out = coordinate_median(&refs, &[1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(out[0] > 0.0 && out[0] < 1.2, "median hijacked: {out:?}");
        assert!(out[1] < 0.0 && out[1] > -1.2, "median hijacked: {out:?}");
    }

    #[test]
    fn coordinate_median_respects_weights() {
        let refs: Vec<&[f32]> = vec![&[0.0f32], &[10.0f32]];
        // The heavy client owns more than half the total weight, so the
        // weighted median lands on its value.
        let out = coordinate_median(&refs, &[1.0, 3.0]).unwrap();
        assert_eq!(out, vec![10.0]);
        let out = coordinate_median(&refs, &[3.0, 1.0]).unwrap();
        assert_eq!(out, vec![0.0]);
    }

    #[test]
    fn robust_aggregation_reports_typed_errors() {
        assert!(matches!(
            aggregate_robust(Aggregator::WeightedAverage, &[], &[]),
            Err(AggregateError::Empty)
        ));
        let refs: Vec<&[f32]> = vec![&[1.0f32, 2.0], &[1.0f32]];
        assert!(matches!(
            aggregate_robust(Aggregator::CoordinateMedian, &refs, &[1.0, 1.0]),
            Err(AggregateError::LengthMismatch {
                index: 1,
                expected: 2,
                got: 1
            })
        ));
        let refs: Vec<&[f32]> = vec![&[1.0f32]];
        assert!(matches!(
            aggregate_robust(Aggregator::TrimmedMean(0.2), &refs, &[1.0, 1.0]),
            Err(AggregateError::WeightCountMismatch {
                updates: 1,
                weights: 2
            })
        ));
    }

    #[test]
    fn aggregator_parse_accepts_the_documented_spellings() {
        assert_eq!(
            Aggregator::parse("weighted").unwrap(),
            Aggregator::WeightedAverage
        );
        assert_eq!(
            Aggregator::parse("mean").unwrap(),
            Aggregator::WeightedAverage
        );
        assert_eq!(
            Aggregator::parse("median").unwrap(),
            Aggregator::CoordinateMedian
        );
        assert_eq!(
            Aggregator::parse("trimmed").unwrap(),
            Aggregator::TrimmedMean(0.2)
        );
        assert_eq!(
            Aggregator::parse("trimmed:0.1").unwrap(),
            Aggregator::TrimmedMean(0.1)
        );
        assert!(
            Aggregator::parse("trimmed:0.7").is_none(),
            "ratio above 0.5"
        );
        assert!(Aggregator::parse("krum").is_none(), "unknown aggregator");
    }
}
