//! Communication-cost accounting.
//!
//! Federated learning's dominant system cost is parameter exchange. This
//! module computes the exact bytes a training run moves, per round and in
//! total, from the model sizes and the selection schedule — the numbers a
//! deployment would plan capacity around. All pFL approaches here exchange
//! the same encoder, so the interesting differences are *what fraction* of
//! the model each algorithm ships (e.g. LG-FedAvg ships only the head;
//! FedAvg ships encoder + head).

use crate::proto::FRAME_OVERHEAD_BYTES;
use calibre_tensor::nn::Module;
use serde::{Deserialize, Serialize};

/// Bytes per scalar parameter on the wire (f32).
pub const BYTES_PER_PARAM: usize = 4;

/// Bytes a single framed message carrying `params` scalars occupies on the
/// wire: the f32 payload plus the fixed frame envelope (version, tag,
/// length, checksum — see [`crate::proto`]).
///
/// `CommReport` deliberately counts payload only, because it compares
/// algorithms by *what* they ship; this helper is for capacity planning of
/// an actual socket deployment, where the envelope is paid per message.
pub fn framed_bytes(params: usize) -> usize {
    params * BYTES_PER_PARAM + FRAME_OVERHEAD_BYTES
}

/// Communication totals for one federated training run.
///
/// # Example
///
/// ```
/// use calibre_fl::comm::{CommReport, BYTES_PER_PARAM};
///
/// // A 1000-parameter encoder exchanged by 5 clients over 10 rounds.
/// let report = CommReport::new(1000, 10, 5);
/// assert_eq!(report.upload_per_round, 1000 * BYTES_PER_PARAM * 5);
/// assert_eq!(report.upload_per_round, report.download_per_round);
/// assert_eq!(report.total, 2 * report.upload_per_round * 10);
///
/// // Doubling the rounds doubles the bytes moved.
/// assert_eq!(CommReport::new(1000, 20, 5).total, 2 * report.total);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CommReport {
    /// Scalars exchanged per client per direction each round.
    pub params_per_client: usize,
    /// Bytes uploaded per round (all selected clients → server).
    pub upload_per_round: usize,
    /// Bytes downloaded per round (server → all selected clients).
    pub download_per_round: usize,
    /// Total bytes over the whole run (upload + download).
    pub total: usize,
    /// Number of rounds accounted.
    pub rounds: usize,
    /// Clients per round accounted.
    pub clients_per_round: usize,
}

impl CommReport {
    /// Builds a report for a run where every selected client exchanges
    /// `params_per_client` scalars in each direction each round.
    pub fn new(params_per_client: usize, rounds: usize, clients_per_round: usize) -> Self {
        let per_direction = params_per_client * BYTES_PER_PARAM * clients_per_round;
        CommReport {
            params_per_client,
            upload_per_round: per_direction,
            download_per_round: per_direction,
            total: 2 * per_direction * rounds,
            rounds,
            clients_per_round,
        }
    }

    /// Builds a report from the module that is actually exchanged.
    pub fn for_module<M: Module + ?Sized>(
        module: &M,
        rounds: usize,
        clients_per_round: usize,
    ) -> Self {
        CommReport::new(module.num_scalars(), rounds, clients_per_round)
    }

    /// Total megabytes over the whole run.
    pub fn total_megabytes(&self) -> f64 {
        self.total as f64 / (1024.0 * 1024.0)
    }

    /// Total bytes over the whole run when every exchange is a framed wire
    /// message (one frame down and one frame up per client per round).
    pub fn total_framed(&self) -> usize {
        2 * framed_bytes(self.params_per_client) * self.clients_per_round * self.rounds
    }
}

impl std::fmt::Display for CommReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} params/client/direction, {:.2} MiB total over {} rounds × {} clients",
            self.params_per_client,
            self.total_megabytes(),
            self.rounds,
            self.clients_per_round
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_tensor::nn::{Activation, Mlp};
    use calibre_tensor::rng;

    #[test]
    fn totals_scale_linearly() {
        let a = CommReport::new(1000, 10, 5);
        let b = CommReport::new(1000, 20, 5);
        assert_eq!(b.total, 2 * a.total);
        assert_eq!(a.upload_per_round, 1000 * 4 * 5);
        assert_eq!(a.upload_per_round, a.download_per_round);
    }

    #[test]
    fn module_report_uses_scalar_count() {
        let mlp = Mlp::new(&[4, 3], Activation::Relu, &mut rng::seeded(0));
        let report = CommReport::for_module(&mlp, 2, 3);
        assert_eq!(report.params_per_client, 4 * 3 + 3);
    }

    #[test]
    fn encoder_only_exchange_is_cheaper_than_full_model() {
        let mut r = rng::seeded(1);
        let encoder = Mlp::new(&[64, 96, 32], Activation::Relu, &mut r);
        let full = Mlp::new(&[64, 96, 32, 10], Activation::Relu, &mut r);
        let enc = CommReport::for_module(&encoder, 10, 5);
        let all = CommReport::for_module(&full, 10, 5);
        assert!(enc.total < all.total);
    }

    #[test]
    fn framed_totals_add_the_envelope_per_message() {
        let report = CommReport::new(1000, 10, 5);
        assert_eq!(framed_bytes(1000), 1000 * BYTES_PER_PARAM + 14);
        // Two frames per client per round, each paying one envelope.
        assert_eq!(report.total_framed() - report.total, 2 * 14 * 5 * 10);
    }

    #[test]
    fn display_mentions_megabytes() {
        let report = CommReport::new(1 << 20, 1, 1);
        assert!(report.to_string().contains("MiB"));
    }
}
