//! FedPer (Arivazhagan et al., 2019): federated learning with
//! personalization layers — the encoder is shared and aggregated, the head
//! is a persistent personalization layer trained jointly but never shipped.

use crate::aggregate::{sample_count_weights, weighted_average_refs};
use crate::baselines::{client_round_seed, evaluate_with_head_finetune, BaselineResult};
use crate::config::FlConfig;
use crate::model::{train_supervised, ClassifierModel, TrainScope};
use crate::parallel::parallel_map;
use calibre_data::FederatedDataset;
use calibre_tensor::nn::{Linear, Module};
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::rng;

/// Runs FedPer end to end.
pub fn run_fedper(fed: &FederatedDataset, cfg: &FlConfig) -> BaselineResult {
    let num_classes = fed.generator().num_classes();
    let template = ClassifierModel::new(&cfg.ssl, num_classes, cfg.seed);
    let mut global_encoder = template.encoder().clone();
    let mut heads: Vec<Linear> = (0..fed.num_clients())
        .map(|id| {
            let mut r = rng::seeded(cfg.seed ^ 0x0FED_04EB ^ id as u64);
            Linear::new(cfg.ssl.repr_dim(), num_classes, &mut r)
        })
        .collect();
    let schedule = cfg.selection_schedule(fed.num_clients());
    let mut round_losses = Vec::with_capacity(schedule.len());

    for (round, selected) in schedule.iter().enumerate() {
        let inputs: Vec<(usize, Linear)> =
            selected.iter().map(|&id| (id, heads[id].clone())).collect();
        let updates = parallel_map(&inputs, |(id, head)| {
            let mut model = template.clone();
            model.encoder_mut().load_flat(&global_encoder.to_flat());
            model.set_head(head.clone());
            let mut opt = Sgd::new(SgdConfig::with_lr_momentum(
                cfg.local_lr,
                cfg.local_momentum,
            ));
            let mut r = rng::seeded(client_round_seed(cfg.seed, round, *id));
            // Joint training of encoder + personalization layer.
            let loss = train_supervised(
                &mut model,
                fed.client(*id),
                fed.generator(),
                cfg.local_epochs,
                cfg.batch_size,
                &mut opt,
                TrainScope::Full,
                &mut r,
            );
            (
                model.encoder().to_flat(),
                model.head().clone(),
                fed.client(*id).train_len(),
                loss,
            )
        });
        let flats: Vec<&[f32]> = updates.iter().map(|(f, _, _, _)| f.as_slice()).collect();
        let counts: Vec<usize> = updates.iter().map(|(_, _, c, _)| *c).collect();
        global_encoder.load_flat(&weighted_average_refs(
            &flats,
            &sample_count_weights(&counts),
        ));
        for ((id, _), (_, head, _, _)) in inputs.iter().zip(updates.iter()) {
            heads[*id] = head.clone();
        }
        round_losses
            .push(updates.iter().map(|(_, _, _, l)| l).sum::<f32>() / updates.len().max(1) as f32);
    }

    let seen = evaluate_with_head_finetune(&global_encoder, fed, num_classes, &cfg.probe, |id| {
        heads[id].clone()
    });

    BaselineResult {
        name: "FedPer".to_string(),
        seen,
        encoder: global_encoder,
        round_losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{NonIid, PartitionConfig, SynthVisionSpec};

    #[test]
    fn fedper_learns_with_personalization_layers() {
        let fed = FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 4,
                train_per_client: 40,
                test_per_client: 20,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 2,
                },
                seed: 23,
            },
        );
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 6;
        cfg.clients_per_round = 3;
        cfg.local_epochs = 2;
        let result = run_fedper(&fed, &cfg);
        assert!(
            result.stats().mean > 0.6,
            "FedPer mean accuracy {:?}",
            result.stats()
        );
    }
}
