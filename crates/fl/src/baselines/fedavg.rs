//! FedAvg (McMahan et al., AISTATS 2017) and FedAvg-FT.
//!
//! FedAvg trains one global classifier by sample-weighted averaging of full
//! local models. The `-FT` variant (paper §V-A) additionally fine-tunes the
//! head on each client's local data during personalization.

use crate::aggregate::{sample_count_weights, weighted_average_refs};
use crate::baselines::{client_round_seed, evaluate_with_head_finetune, BaselineResult};
use crate::compress::{quantize, top_k_sparsify};
use crate::config::FlConfig;
use crate::model::{train_supervised, ClassifierModel, TrainScope};
use crate::parallel::parallel_map;
use crate::personalize::PersonalizationOutcome;
use calibre_data::FederatedDataset;
use calibre_tensor::nn::Module;
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::rng;

/// Lossy compression applied to client → server updates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Compression {
    /// Ship full-precision updates (plain FedAvg).
    None,
    /// Keep only the fraction `keep` of largest-magnitude coordinates.
    TopK {
        /// Fraction of coordinates retained, in `(0, 1]`.
        keep: f32,
    },
    /// Uniform quantization to `bits` bits per coordinate.
    Quantize {
        /// Bits per coordinate (1..=8).
        bits: u8,
    },
}

impl Compression {
    /// Applies the compression round-trip a real deployment would see
    /// (compress on the client, decompress on the server).
    pub fn round_trip(&self, update: Vec<f32>) -> Vec<f32> {
        match *self {
            Compression::None => update,
            Compression::TopK { keep } => {
                assert!(keep > 0.0 && keep <= 1.0, "keep fraction out of range");
                let k = ((update.len() as f32 * keep).ceil() as usize).max(1);
                top_k_sparsify(&update, k).to_dense()
            }
            Compression::Quantize { bits } => quantize(&update, bits).to_dense(),
        }
    }
}

/// Trains a global classifier with FedAvg and returns it together with the
/// round-loss history.
pub fn train_fedavg_global(fed: &FederatedDataset, cfg: &FlConfig) -> (ClassifierModel, Vec<f32>) {
    train_fedavg_global_compressed(fed, cfg, Compression::None)
}

/// FedAvg with lossy update compression on the client → server path (the
/// server's new global model is an average of *decompressed* updates).
pub fn train_fedavg_global_compressed(
    fed: &FederatedDataset,
    cfg: &FlConfig,
    compression: Compression,
) -> (ClassifierModel, Vec<f32>) {
    let num_classes = fed.generator().num_classes();
    let mut global = ClassifierModel::new(&cfg.ssl, num_classes, cfg.seed);
    let schedule = cfg.selection_schedule(fed.num_clients());
    let mut round_losses = Vec::with_capacity(schedule.len());

    for (round, selected) in schedule.iter().enumerate() {
        let updates = parallel_map(selected, |&id| {
            let mut local = global.clone();
            let mut opt = Sgd::new(SgdConfig::with_lr_momentum(
                cfg.local_lr,
                cfg.local_momentum,
            ));
            let mut r = rng::seeded(client_round_seed(cfg.seed, round, id));
            let loss = train_supervised(
                &mut local,
                fed.client(id),
                fed.generator(),
                cfg.local_epochs,
                cfg.batch_size,
                &mut opt,
                TrainScope::Full,
                &mut r,
            );
            (
                compression.round_trip(local.to_flat()),
                fed.client(id).train_len(),
                loss,
            )
        });
        let flats: Vec<&[f32]> = updates.iter().map(|(f, _, _)| f.as_slice()).collect();
        let counts: Vec<usize> = updates.iter().map(|(_, c, _)| *c).collect();
        let mean_loss =
            updates.iter().map(|(_, _, l)| l).sum::<f32>() / updates.len().max(1) as f32;
        round_losses.push(mean_loss);
        global.load_flat(&weighted_average_refs(
            &flats,
            &sample_count_weights(&counts),
        ));
    }
    (global, round_losses)
}

/// Runs FedAvg end to end.
///
/// With `finetune == false` every client evaluates the unmodified global
/// model (plain FedAvg); with `finetune == true` each client fine-tunes the
/// global head on its local data first (FedAvg-FT).
pub fn run_fedavg(fed: &FederatedDataset, cfg: &FlConfig, finetune: bool) -> BaselineResult {
    let num_classes = fed.generator().num_classes();
    let (global, round_losses) = train_fedavg_global(fed, cfg);

    let seen = if finetune {
        let head = global.head().clone();
        evaluate_with_head_finetune(global.encoder(), fed, num_classes, &cfg.probe, |_| {
            head.clone()
        })
    } else {
        let ids: Vec<usize> = (0..fed.num_clients()).collect();
        let accuracies = parallel_map(&ids, |&id| {
            global.test_accuracy(fed.client(id), fed.generator())
        });
        PersonalizationOutcome::from_accuracies(accuracies)
    };

    BaselineResult {
        name: if finetune { "FedAvg-FT" } else { "FedAvg" }.to_string(),
        seen,
        encoder: global.encoder().clone(),
        round_losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{NonIid, PartitionConfig, SynthVisionSpec};

    #[test]
    fn eight_bit_quantization_barely_moves_fedavg() {
        let fed = tiny_fed();
        let cfg = tiny_cfg();
        let (exact, _) = train_fedavg_global(&fed, &cfg);
        let (quantized, _) =
            train_fedavg_global_compressed(&fed, &cfg, Compression::Quantize { bits: 8 });
        let acc = |m: &ClassifierModel| -> f32 {
            (0..fed.num_clients())
                .map(|id| m.test_accuracy(fed.client(id), fed.generator()))
                .sum::<f32>()
                / fed.num_clients() as f32
        };
        let (a, b) = (acc(&exact), acc(&quantized));
        assert!((a - b).abs() < 0.1, "8-bit {b} should track exact {a}");
    }

    #[test]
    fn extreme_sparsification_degrades_the_global_model() {
        let fed = tiny_fed();
        let cfg = tiny_cfg();
        let (exact, _) = train_fedavg_global(&fed, &cfg);
        // Keep 1% of coordinates: the model ships almost nothing.
        let (starved, _) =
            train_fedavg_global_compressed(&fed, &cfg, Compression::TopK { keep: 0.01 });
        let acc = |m: &ClassifierModel| -> f32 {
            (0..fed.num_clients())
                .map(|id| m.test_accuracy(fed.client(id), fed.generator()))
                .sum::<f32>()
                / fed.num_clients() as f32
        };
        assert!(
            acc(&starved) < acc(&exact),
            "1% top-k {} should underperform exact {}",
            acc(&starved),
            acc(&exact)
        );
    }

    fn tiny_fed() -> FederatedDataset {
        FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 4,
                train_per_client: 40,
                test_per_client: 20,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 2,
                },
                seed: 11,
            },
        )
    }

    fn tiny_cfg() -> FlConfig {
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 6;
        cfg.clients_per_round = 3;
        cfg.local_epochs = 2;
        cfg
    }

    #[test]
    fn fedavg_ft_beats_plain_fedavg_under_label_skew() {
        let fed = tiny_fed();
        let cfg = tiny_cfg();
        let plain = run_fedavg(&fed, &cfg, false);
        let ft = run_fedavg(&fed, &cfg, true);
        // Under 2-class clients a personalized head is a huge win — this is
        // the paper's core motivation for personalization.
        assert!(
            ft.stats().mean > plain.stats().mean,
            "FT {:?} should beat plain {:?}",
            ft.stats(),
            plain.stats()
        );
        assert!(ft.stats().mean > 0.5, "FT accuracy {:?}", ft.stats());
    }

    #[test]
    fn training_loss_decreases_over_rounds() {
        let fed = tiny_fed();
        let cfg = tiny_cfg();
        let result = run_fedavg(&fed, &cfg, true);
        let first = result.round_losses.first().copied().unwrap();
        let last = result.round_losses.last().copied().unwrap();
        assert!(
            last < first,
            "round losses should fall: {:?}",
            result.round_losses
        );
    }

    #[test]
    fn result_is_deterministic() {
        let fed = tiny_fed();
        let cfg = tiny_cfg();
        let a = run_fedavg(&fed, &cfg, true);
        let b = run_fedavg(&fed, &cfg, true);
        assert_eq!(a.seen.accuracies, b.seen.accuracies);
    }
}
