//! FedRep (Collins et al., ICML 2021): a shared representation with local
//! heads. Each selected client first refines its *local* head on the frozen
//! shared encoder, then updates the encoder with the head frozen; only the
//! encoder is aggregated.

use crate::aggregate::{sample_count_weights, weighted_average_refs};
use crate::baselines::{client_round_seed, evaluate_with_head_finetune, BaselineResult};
use crate::config::FlConfig;
use crate::model::{train_supervised, ClassifierModel, TrainScope};
use crate::parallel::parallel_map;
use calibre_data::FederatedDataset;
use calibre_tensor::nn::{Linear, Module};
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::rng;

/// Runs FedRep end to end.
pub fn run_fedrep(fed: &FederatedDataset, cfg: &FlConfig) -> BaselineResult {
    let num_classes = fed.generator().num_classes();
    let template = ClassifierModel::new(&cfg.ssl, num_classes, cfg.seed);
    let mut global_encoder = template.encoder().clone();
    // Every client owns a persistent local head.
    let mut heads: Vec<Linear> = (0..fed.num_clients())
        .map(|id| {
            let mut r = rng::seeded(cfg.seed ^ 0x0FED_00EB ^ id as u64);
            Linear::new(cfg.ssl.repr_dim(), num_classes, &mut r)
        })
        .collect();
    let schedule = cfg.selection_schedule(fed.num_clients());
    let mut round_losses = Vec::with_capacity(schedule.len());

    for (round, selected) in schedule.iter().enumerate() {
        let inputs: Vec<(usize, Linear)> =
            selected.iter().map(|&id| (id, heads[id].clone())).collect();
        let updates = parallel_map(&inputs, |(id, head)| {
            let mut model = template.clone();
            model.encoder_mut().load_flat(&global_encoder.to_flat());
            model.set_head(head.clone());
            let mut opt = Sgd::new(SgdConfig::with_lr_momentum(
                cfg.local_lr,
                cfg.local_momentum,
            ));
            let mut r = rng::seeded(client_round_seed(cfg.seed, round, *id));
            // Phase 1: head only, frozen encoder (FedRep trains the head to
            // convergence first — we give it the configured local epochs).
            train_supervised(
                &mut model,
                fed.client(*id),
                fed.generator(),
                cfg.local_epochs,
                cfg.batch_size,
                &mut opt,
                TrainScope::HeadOnly,
                &mut r,
            );
            // Phase 2: one encoder epoch with the head frozen.
            let loss = train_supervised(
                &mut model,
                fed.client(*id),
                fed.generator(),
                1,
                cfg.batch_size,
                &mut opt,
                TrainScope::EncoderOnly,
                &mut r,
            );
            (
                model.encoder().to_flat(),
                model.head().clone(),
                fed.client(*id).train_len(),
                loss,
            )
        });

        let flats: Vec<&[f32]> = updates.iter().map(|(f, _, _, _)| f.as_slice()).collect();
        let counts: Vec<usize> = updates.iter().map(|(_, _, c, _)| *c).collect();
        global_encoder.load_flat(&weighted_average_refs(
            &flats,
            &sample_count_weights(&counts),
        ));
        for ((id, _), (_, head, _, _)) in inputs.iter().zip(updates.iter()) {
            heads[*id] = head.clone();
        }
        let mean_loss =
            updates.iter().map(|(_, _, _, l)| l).sum::<f32>() / updates.len().max(1) as f32;
        round_losses.push(mean_loss);
    }

    // Personalization: each seen client fine-tunes its own head on the
    // frozen shared encoder.
    let seen = evaluate_with_head_finetune(&global_encoder, fed, num_classes, &cfg.probe, |id| {
        heads[id].clone()
    });

    BaselineResult {
        name: "FedRep".to_string(),
        seen,
        encoder: global_encoder,
        round_losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{NonIid, PartitionConfig, SynthVisionSpec};

    #[test]
    fn fedrep_learns_personalized_heads() {
        let fed = FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 4,
                train_per_client: 40,
                test_per_client: 20,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 2,
                },
                seed: 17,
            },
        );
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 6;
        cfg.clients_per_round = 3;
        cfg.local_epochs = 2;
        let result = run_fedrep(&fed, &cfg);
        assert!(
            result.stats().mean > 0.6,
            "FedRep mean accuracy {:?}",
            result.stats()
        );
        assert!(result.round_losses.iter().all(|l| l.is_finite()));
    }
}
