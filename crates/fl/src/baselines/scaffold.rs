//! SCAFFOLD (Karimireddy et al., ICML 2020): stochastic controlled
//! averaging. Client drift under non-i.i.d. data is corrected with control
//! variates `c` (server) and `c_i` (per client): every local gradient is
//! adjusted by `− c_i + c`.

use crate::aggregate::{sample_count_weights, weighted_average_refs};
use crate::baselines::{client_round_seed, evaluate_with_head_finetune, BaselineResult};
use crate::config::FlConfig;
use crate::model::ClassifierModel;
use crate::parallel::parallel_map;
use crate::personalize::PersonalizationOutcome;
use calibre_data::batch::batches;
use calibre_data::FederatedDataset;
use calibre_tensor::nn::{gradients, Binding, Module};
use calibre_tensor::{rng, Graph, Matrix};

/// Flattens per-parameter gradient matrices into one vector.
fn flatten(grads: &[Matrix]) -> Vec<f32> {
    let mut out = Vec::new();
    for g in grads {
        out.extend_from_slice(g.as_slice());
    }
    out
}

/// One local SCAFFOLD pass. Returns `(new_model_flat, new_c_i, steps, loss)`.
fn local_update(
    fed: &FederatedDataset,
    id: usize,
    global_flat: &[f32],
    c_global: &[f32],
    c_i: &[f32],
    cfg: &FlConfig,
    round: usize,
) -> (Vec<f32>, Vec<f32>, usize, f32) {
    let num_classes = fed.generator().num_classes();
    let mut model = ClassifierModel::new(&cfg.ssl, num_classes, cfg.seed);
    model.load_flat(global_flat);
    let data = fed.client(id);
    let labels = data.train_labels();
    let mut r = rng::seeded(client_round_seed(cfg.seed, round, id));
    let mut steps = 0usize;
    let mut loss_sum = 0.0f32;

    for _ in 0..cfg.local_epochs {
        for batch in batches(data.train.len(), cfg.batch_size, false, &mut r) {
            let samples: Vec<_> = batch.iter().map(|&i| &data.train[i]).collect();
            let x = fed.generator().render_batch(samples.iter().copied());
            let y: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();

            let mut g = Graph::new();
            let xn = g.constant(x);
            let mut binding = Binding::new();
            let feats = model.encoder_mut().forward(&mut g, xn, &mut binding);
            let logits = model.head().forward(&mut g, feats, &mut binding);
            let loss = g.cross_entropy(logits, &y);
            loss_sum += g.value(loss).get(0, 0);
            g.backward(loss);
            let flat_grad = flatten(&gradients(&g, &binding));

            // Controlled step: p ← p − lr (g − c_i + c), flat over all params.
            let mut offset = 0;
            for p in model.parameters_mut() {
                let n = p.len();
                for (j, v) in p.as_mut_slice().iter_mut().enumerate() {
                    let idx = offset + j;
                    let corrected = flat_grad[idx] - c_i[idx] + c_global[idx];
                    *v -= cfg.local_lr * corrected;
                }
                offset += n;
            }
            steps += 1;
        }
    }

    // Option II of the SCAFFOLD paper:
    // c_i⁺ = c_i − c + (x − y_i) / (K · lr)
    let model_flat = model.to_flat();
    let scale = 1.0 / (steps.max(1) as f32 * cfg.local_lr);
    let new_c_i: Vec<f32> = (0..model_flat.len())
        .map(|j| c_i[j] - c_global[j] + (global_flat[j] - model_flat[j]) * scale)
        .collect();
    let mean_loss = loss_sum / steps.max(1) as f32;
    (model_flat, new_c_i, steps, mean_loss)
}

/// Trains a global classifier with SCAFFOLD. Returns the model and the
/// round-loss history.
pub fn train_scaffold_global(
    fed: &FederatedDataset,
    cfg: &FlConfig,
) -> (ClassifierModel, Vec<f32>) {
    let num_classes = fed.generator().num_classes();
    let mut global = ClassifierModel::new(&cfg.ssl, num_classes, cfg.seed);
    let dim = global.num_scalars();
    let mut c_global = vec![0.0f32; dim];
    let mut c_clients: Vec<Vec<f32>> = vec![vec![0.0f32; dim]; fed.num_clients()];
    let schedule = cfg.selection_schedule(fed.num_clients());
    let mut round_losses = Vec::with_capacity(schedule.len());

    for (round, selected) in schedule.iter().enumerate() {
        let global_flat = global.to_flat();
        let inputs: Vec<(usize, Vec<f32>)> = selected
            .iter()
            .map(|&id| (id, c_clients[id].clone()))
            .collect();
        let updates = parallel_map(&inputs, |(id, c_i)| {
            local_update(fed, *id, &global_flat, &c_global, c_i, cfg, round)
        });

        let flats: Vec<&[f32]> = updates.iter().map(|(f, _, _, _)| f.as_slice()).collect();
        let counts: Vec<usize> = selected
            .iter()
            .map(|&id| fed.client(id).train_len())
            .collect();
        global.load_flat(&weighted_average_refs(
            &flats,
            &sample_count_weights(&counts),
        ));

        // c ← c + (|S|/N) · mean_i(c_i⁺ − c_i)
        let frac = selected.len() as f32 / fed.num_clients() as f32;
        let mut delta_mean = vec![0.0f32; dim];
        for ((id, _), (_, new_c_i, _, _)) in inputs.iter().zip(updates.iter()) {
            for j in 0..dim {
                delta_mean[j] += (new_c_i[j] - c_clients[*id][j]) / selected.len() as f32;
            }
            c_clients[*id] = new_c_i.clone();
        }
        for j in 0..dim {
            c_global[j] += frac * delta_mean[j];
        }
        let mean_loss =
            updates.iter().map(|(_, _, _, l)| l).sum::<f32>() / updates.len().max(1) as f32;
        round_losses.push(mean_loss);
    }
    (global, round_losses)
}

/// Runs SCAFFOLD end to end (with `finetune` selecting SCAFFOLD vs
/// SCAFFOLD-FT evaluation, as in FedAvg).
pub fn run_scaffold(fed: &FederatedDataset, cfg: &FlConfig, finetune: bool) -> BaselineResult {
    let num_classes = fed.generator().num_classes();
    let (global, round_losses) = train_scaffold_global(fed, cfg);
    let seen = if finetune {
        let head = global.head().clone();
        evaluate_with_head_finetune(global.encoder(), fed, num_classes, &cfg.probe, |_| {
            head.clone()
        })
    } else {
        let ids: Vec<usize> = (0..fed.num_clients()).collect();
        let accuracies = parallel_map(&ids, |&id| {
            global.test_accuracy(fed.client(id), fed.generator())
        });
        PersonalizationOutcome::from_accuracies(accuracies)
    };
    BaselineResult {
        name: if finetune { "SCAFFOLD-FT" } else { "SCAFFOLD" }.to_string(),
        seen,
        encoder: global.encoder().clone(),
        round_losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{NonIid, PartitionConfig, SynthVisionSpec};

    fn tiny_fed() -> FederatedDataset {
        FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 4,
                train_per_client: 40,
                test_per_client: 20,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 2,
                },
                seed: 13,
            },
        )
    }

    fn tiny_cfg() -> FlConfig {
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 6;
        cfg.clients_per_round = 3;
        cfg.local_epochs = 2;
        cfg
    }

    #[test]
    fn scaffold_ft_learns_under_label_skew() {
        let fed = tiny_fed();
        let cfg = tiny_cfg();
        let result = run_scaffold(&fed, &cfg, true);
        assert!(
            result.stats().mean > 0.5,
            "SCAFFOLD-FT mean accuracy {:?}",
            result.stats()
        );
    }

    #[test]
    fn control_variates_keep_training_stable() {
        let fed = tiny_fed();
        let cfg = tiny_cfg();
        let result = run_scaffold(&fed, &cfg, false);
        assert!(result.round_losses.iter().all(|l| l.is_finite()));
        let first = result.round_losses[0];
        let last = *result.round_losses.last().unwrap();
        assert!(last < first, "losses: {:?}", result.round_losses);
    }

    #[test]
    fn deterministic_given_seed() {
        let fed = tiny_fed();
        let cfg = tiny_cfg();
        let a = run_scaffold(&fed, &cfg, true);
        let b = run_scaffold(&fed, &cfg, true);
        assert_eq!(a.seen.accuracies, b.seen.accuracies);
    }
}
