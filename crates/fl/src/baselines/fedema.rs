//! FedEMA (Zhuang et al., ICLR 2022): divergence-aware federated
//! self-supervised learning.
//!
//! FedEMA runs BYOL locally, but instead of overwriting the local online
//! network with the aggregated global model at round start, each client
//! *interpolates*: `w_local ← λ·w_global + (1−λ)·w_local` with a
//! divergence-aware coefficient `λ = min(τ·‖w_global − w_local‖, 1)` —
//! clients far from the global model adopt more of it. This is the paper's
//! closest related work (§II).

use crate::aggregate::{sample_count_weights, weighted_average_refs};
use crate::baselines::{client_round_seed, BaselineResult};
use crate::config::FlConfig;
use crate::parallel::parallel_map_owned;
use crate::personalize::personalize_cohort;
use crate::pfl_ssl::ssl_local_update;
use calibre_data::{AugmentConfig, FederatedDataset};
use calibre_ssl::{Byol, SslMethod};
use calibre_tensor::nn::Module;
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::rng;

/// The divergence auto-scaler τ. The original work calibrates it from the
/// first round's divergence; a fixed value at our scale plays the same role.
const TAU_SCALER: f32 = 0.5;

/// Computes FedEMA's divergence-aware mixing coefficient λ.
fn lambda_for(global_flat: &[f32], local_flat: &[f32]) -> f32 {
    let divergence: f32 = global_flat
        .iter()
        .zip(local_flat.iter())
        .map(|(&g, &l)| (g - l) * (g - l))
        .sum::<f32>()
        .sqrt();
    (TAU_SCALER * divergence).min(1.0)
}

/// Runs FedEMA end to end.
pub fn run_fedema(fed: &FederatedDataset, cfg: &FlConfig, aug: &AugmentConfig) -> BaselineResult {
    let reference = Byol::new(cfg.ssl.clone());
    let mut global_encoder = reference.encoder().clone();
    let mut states: Vec<Option<Byol>> = (0..fed.num_clients()).map(|_| None).collect();
    let schedule = cfg.selection_schedule(fed.num_clients());
    let mut round_losses = Vec::with_capacity(schedule.len());

    for (round, selected) in schedule.iter().enumerate() {
        let global_flat = global_encoder.to_flat();
        let inputs: Vec<(usize, Byol)> = selected
            .iter()
            .map(|&id| {
                let state = states[id].take().unwrap_or_else(|| {
                    Byol::new(cfg.ssl.clone().with_seed(cfg.seed ^ (id as u64) << 8))
                });
                (id, state)
            })
            .collect();

        let updates = parallel_map_owned(inputs, |(id, mut byol)| {
            // Divergence-aware merge of the global encoder into the local
            // online encoder (FedEMA's core mechanism).
            let local_flat = byol.encoder().to_flat();
            let lambda = lambda_for(&global_flat, &local_flat);
            let merged: Vec<f32> = global_flat
                .iter()
                .zip(local_flat.iter())
                .map(|(&g, &l)| lambda * g + (1.0 - lambda) * l)
                .collect();
            byol.encoder_mut().load_flat(&merged);

            let mut opt = Sgd::new(SgdConfig::with_lr_momentum(
                cfg.local_lr,
                cfg.local_momentum,
            ));
            let mut r = rng::seeded(client_round_seed(cfg.seed, round, id));
            let data = fed.client(id);
            let loss = ssl_local_update(
                &mut byol,
                data,
                fed.generator(),
                aug,
                cfg.local_epochs,
                cfg.batch_size,
                &mut opt,
                &mut r,
            );
            let flat = byol.encoder().to_flat();
            let weight = data.ssl_pool().len();
            (id, byol, flat, weight, loss)
        });

        let flats: Vec<&[f32]> = updates.iter().map(|(_, _, f, _, _)| f.as_slice()).collect();
        let counts: Vec<usize> = updates.iter().map(|(_, _, _, c, _)| *c).collect();
        let mean_loss =
            updates.iter().map(|(_, _, _, _, l)| l).sum::<f32>() / updates.len().max(1) as f32;
        global_encoder.load_flat(&weighted_average_refs(
            &flats,
            &sample_count_weights(&counts),
        ));
        for (id, byol, _, _, _) in updates {
            states[id] = Some(byol);
        }
        round_losses.push(mean_loss);
    }

    let num_classes = fed.generator().num_classes();
    let seen = personalize_cohort(&global_encoder, fed, num_classes, &cfg.probe);
    BaselineResult {
        name: "FedEMA".to_string(),
        seen,
        encoder: global_encoder,
        round_losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{NonIid, PartitionConfig, SynthVisionSpec};

    #[test]
    fn lambda_is_clamped_and_monotone() {
        let g = vec![1.0, 0.0];
        assert_eq!(lambda_for(&g, &g), 0.0);
        let near = vec![1.1, 0.0];
        let far = vec![5.0, 5.0];
        let l_near = lambda_for(&g, &near);
        let l_far = lambda_for(&g, &far);
        assert!(l_near < l_far);
        assert!(l_far <= 1.0);
    }

    #[test]
    fn fedema_trains_and_personalizes() {
        let fed = FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 4,
                train_per_client: 40,
                test_per_client: 20,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 2,
                },
                seed: 53,
            },
        );
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 4;
        cfg.clients_per_round = 3;
        cfg.local_epochs = 1;
        cfg.batch_size = 16;
        let result = run_fedema(&fed, &cfg, &AugmentConfig::default());
        assert_eq!(result.name, "FedEMA");
        assert!(
            result.stats().mean > 0.5,
            "FedEMA accuracy {:?}",
            result.stats()
        );
    }
}
