//! The baseline zoo of the Calibre evaluation (§V-A, "Benchmark
//! approaches").
//!
//! | Module | Methods |
//! |---|---|
//! | [`fedavg`] | FedAvg, FedAvg-FT |
//! | [`scaffold`] | SCAFFOLD, SCAFFOLD-FT |
//! | [`fedrep`] | FedRep |
//! | [`fedbabu`] | FedBABU |
//! | [`fedper`] | FedPer |
//! | [`lgfedavg`] | LG-FedAvg |
//! | [`perfedavg`] | PerFedAvg (first-order MAML) |
//! | [`apfl`] | APFL |
//! | [`ditto`] | Ditto |
//! | [`script`] | Script-Convergent, Script-Fair (local-only) |
//! | [`fedema`] | FedEMA (divergence-aware federated BYOL) |
//! | [`fedprox`] | FedProx (extension; not in the paper's roster) |
//!
//! The pFL-SSL family (pFL-SimCLR etc.) lives in [`crate::pfl_ssl`]; Calibre
//! itself lives in the `calibre` crate.
//!
//! Every baseline returns a [`BaselineResult`]: per-seen-client accuracies
//! after its own personalization rule, plus the global encoder used for
//! novel-client evaluation and figure generation.

pub mod apfl;
pub mod ditto;
pub mod fedavg;
pub mod fedbabu;
pub mod fedema;
pub mod fedper;
pub mod fedprox;
pub mod fedrep;
pub mod lgfedavg;
pub mod perfedavg;
pub mod scaffold;
pub mod script;

use crate::metrics::Stats;
use crate::parallel::parallel_map;
use crate::personalize::PersonalizationOutcome;
use calibre_data::FederatedDataset;
use calibre_ssl::{probe_accuracy, train_linear_probe_from, ProbeConfig};
use calibre_tensor::nn::{Linear, Mlp};

/// The outcome of running one baseline's training + personalization.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Method name as reported in the paper's figures.
    pub name: String,
    /// Per-seen-client personalized accuracies and their stats.
    pub seen: PersonalizationOutcome,
    /// The global encoder (novel-client evaluation, t-SNE figures). For
    /// methods without a shared encoder (LG-FedAvg) this is the average of
    /// the client encoders.
    pub encoder: Mlp,
    /// Mean local training loss per round (convergence diagnostics).
    pub round_losses: Vec<f32>,
}

impl BaselineResult {
    /// Convenience accessor for the seen-cohort stats.
    pub fn stats(&self) -> Stats {
        self.seen.stats
    }
}

/// Evaluates a cohort by fine-tuning a given head on frozen encoder
/// features (the `-FT` personalization rule, also used by FedRep / FedPer
/// with their per-client heads).
///
/// `head_for` supplies the initial head per client.
pub fn evaluate_with_head_finetune<F>(
    encoder: &Mlp,
    fed: &FederatedDataset,
    num_classes: usize,
    probe: &ProbeConfig,
    head_for: F,
) -> PersonalizationOutcome
where
    F: Fn(usize) -> Linear + Sync,
{
    let ids: Vec<usize> = (0..fed.num_clients()).collect();
    let accuracies = parallel_map(&ids, |&id| {
        let data = fed.client(id);
        if data.train.is_empty() || data.test.is_empty() {
            return 0.0;
        }
        let train_x = encoder.infer(&fed.generator().render_batch(data.train.iter()));
        let test_x = encoder.infer(&fed.generator().render_batch(data.test.iter()));
        let mut client_probe = *probe;
        client_probe.seed = probe.seed ^ (id as u64).wrapping_mul(0x9E37_79B9);
        let head = train_linear_probe_from(
            head_for(id),
            &train_x,
            &data.train_labels(),
            num_classes,
            &client_probe,
        );
        probe_accuracy(&head, &test_x, &data.test_labels())
    });
    PersonalizationOutcome::from_accuracies(accuracies)
}

/// Derives a per-client, per-round RNG seed from the run seed.
pub(crate) fn client_round_seed(run_seed: u64, round: usize, client: usize) -> u64 {
    run_seed
        ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ (client as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9)
}
