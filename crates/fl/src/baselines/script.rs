//! Script baselines: purely local training, no federation at all.
//!
//! The paper's §V-A: "we allow each client to train its personalized model
//! … separately based solely on their local datasets. Script-Convergent
//! refers to the model trained until convergence, whereas Script-Fair
//! corresponds to the model trained after 10 epochs." These anchor the
//! claim that pFL-SSL personalization can be *worse than no federation*.

use crate::baselines::BaselineResult;
use crate::config::FlConfig;
use crate::model::{train_supervised, ClassifierModel, TrainScope};
use crate::parallel::parallel_map;
use crate::personalize::PersonalizationOutcome;
use calibre_data::FederatedDataset;
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::rng;

/// Epoch budget that stands in for "trained until convergence".
const CONVERGENT_EPOCHS: usize = 60;
/// The paper's Script-Fair budget.
const FAIR_EPOCHS: usize = 10;

/// Runs a Script baseline: every client trains a full local classifier with
/// no communication. `convergent` selects Script-Convergent (long budget)
/// vs Script-Fair (10 epochs).
pub fn run_script(fed: &FederatedDataset, cfg: &FlConfig, convergent: bool) -> BaselineResult {
    let num_classes = fed.generator().num_classes();
    let epochs = if convergent {
        CONVERGENT_EPOCHS
    } else {
        FAIR_EPOCHS
    };
    let ids: Vec<usize> = (0..fed.num_clients()).collect();
    let accuracies = parallel_map(&ids, |&id| {
        let mut model = ClassifierModel::new(&cfg.ssl, num_classes, cfg.seed ^ 0x5C1F7 ^ id as u64);
        // Long purely-local runs on tiny datasets can blow up without a
        // norm bound; clipping keeps Script-Convergent stable.
        let mut opt = Sgd::new(SgdConfig {
            lr: cfg.local_lr,
            momentum: cfg.local_momentum,
            weight_decay: 0.0,
            grad_clip: 5.0,
        });
        let mut r = rng::seeded(cfg.seed ^ 0x05_C1F7_5EED ^ id as u64);
        train_supervised(
            &mut model,
            fed.client(id),
            fed.generator(),
            epochs,
            cfg.batch_size,
            &mut opt,
            TrainScope::Full,
            &mut r,
        );
        model.test_accuracy(fed.client(id), fed.generator())
    });
    let seen = PersonalizationOutcome::from_accuracies(accuracies);

    // No shared encoder exists; export a fresh one so novel-client
    // evaluation measures exactly what a Script novice would have.
    let fresh = ClassifierModel::new(&cfg.ssl, num_classes, cfg.seed ^ 0x5C1F7);
    BaselineResult {
        name: if convergent {
            "Script-Convergent"
        } else {
            "Script-Fair"
        }
        .to_string(),
        seen,
        encoder: fresh.encoder().clone(),
        round_losses: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{NonIid, PartitionConfig, SynthVisionSpec};

    fn fed() -> FederatedDataset {
        FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 3,
                train_per_client: 50,
                test_per_client: 20,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 2,
                },
                seed: 43,
            },
        )
    }

    #[test]
    fn script_fair_learns_two_way_tasks_locally() {
        let mut cfg = FlConfig::for_input(64);
        cfg.batch_size = 16;
        let result = run_script(&fed(), &cfg, false);
        assert!(
            result.stats().mean > 0.7,
            "Script-Fair on 2-class clients {:?}",
            result.stats()
        );
    }

    #[test]
    fn convergent_budget_is_at_least_as_good_as_fair() {
        let mut cfg = FlConfig::for_input(64);
        cfg.batch_size = 16;
        let fed = fed();
        let fair = run_script(&fed, &cfg, false);
        let convergent = run_script(&fed, &cfg, true);
        assert!(
            convergent.stats().mean >= fair.stats().mean - 0.05,
            "convergent {:?} vs fair {:?}",
            convergent.stats(),
            fair.stats()
        );
    }
}
