//! APFL (Deng et al., 2020): adaptive personalized federated learning.
//!
//! Every client keeps a *local* model `v` alongside the shared model `w`;
//! its personalized predictor is the mixture `ᾱ·v + (1−ᾱ)·w`. During the
//! local update the client trains `w` (shipped to the server, FedAvg-style)
//! and takes mixture-gradient steps on `v`; the mixing weight `α` adapts by
//! a closed-form gradient step, as in the original paper.

use crate::aggregate::{sample_count_weights, weighted_average_refs};
use crate::baselines::{client_round_seed, BaselineResult};
use crate::config::FlConfig;
use crate::model::{supervised_step, ClassifierModel, TrainScope};
use crate::parallel::parallel_map;
use crate::personalize::PersonalizationOutcome;
use calibre_data::batch::batches;
use calibre_data::FederatedDataset;
use calibre_tensor::nn::{gradients, Binding, Module};
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::{rng, Graph};

/// Builds the mixture model `ᾱ·v + (1−ᾱ)·w`.
fn mix_models(v: &ClassifierModel, w: &ClassifierModel, alpha: f32) -> ClassifierModel {
    let mut mixed = v.clone();
    let vw: Vec<f32> = v
        .to_flat()
        .iter()
        .zip(w.to_flat().iter())
        .map(|(&a, &b)| alpha * a + (1.0 - alpha) * b)
        .collect();
    mixed.load_flat(&vw);
    mixed
}

/// Runs APFL end to end.
pub fn run_apfl(fed: &FederatedDataset, cfg: &FlConfig) -> BaselineResult {
    let num_classes = fed.generator().num_classes();
    let mut global = ClassifierModel::new(&cfg.ssl, num_classes, cfg.seed);
    // Persistent local models and mixing weights.
    let mut locals: Vec<ClassifierModel> = (0..fed.num_clients())
        .map(|id| ClassifierModel::new(&cfg.ssl, num_classes, cfg.seed ^ 0xAF1 ^ id as u64))
        .collect();
    let mut alphas = vec![0.5f32; fed.num_clients()];
    let schedule = cfg.selection_schedule(fed.num_clients());
    let mut round_losses = Vec::with_capacity(schedule.len());

    for (round, selected) in schedule.iter().enumerate() {
        let inputs: Vec<(usize, ClassifierModel, f32)> = selected
            .iter()
            .map(|&id| (id, locals[id].clone(), alphas[id]))
            .collect();
        let updates = parallel_map(&inputs, |(id, local, alpha)| {
            let data = fed.client(*id);
            let labels = data.train_labels();
            let mut w = global.clone();
            let mut v = local.clone();
            let mut alpha = *alpha;
            let mut w_opt = Sgd::new(SgdConfig::with_lr_momentum(
                cfg.local_lr,
                cfg.local_momentum,
            ));
            let mut r = rng::seeded(client_round_seed(cfg.seed, round, *id));
            let mut loss_sum = 0.0;
            let mut steps = 0;
            for _ in 0..cfg.local_epochs {
                for batch in batches(data.train.len(), cfg.batch_size, false, &mut r) {
                    let samples: Vec<_> = batch.iter().map(|&i| &data.train[i]).collect();
                    let x = fed.generator().render_batch(samples.iter().copied());
                    let y: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
                    // Step the shared model (this is what the server sees).
                    loss_sum += supervised_step(&mut w, &x, &y, &mut w_opt, TrainScope::Full);
                    // Mixture gradient step on the personal model v:
                    // ∂L(ᾱv + (1−ᾱ)w)/∂v = ᾱ · ∂L/∂mixed.
                    let mut mixed = mix_models(&v, &w, alpha);
                    let mut g = Graph::new();
                    let xn = g.constant(x.clone());
                    let mut binding = Binding::new();
                    let feats = mixed.encoder_mut().forward(&mut g, xn, &mut binding);
                    let logits = mixed.head().forward(&mut g, feats, &mut binding);
                    let loss = g.cross_entropy(logits, &y);
                    g.backward(loss);
                    let grads = gradients(&g, &binding);
                    for (p, gr) in v.parameters_mut().into_iter().zip(grads.iter()) {
                        p.add_scaled(gr, -cfg.local_lr * alpha);
                    }
                    // Adaptive α: gradient of the mixture loss w.r.t. α is
                    // ⟨∇L(mixed), v − w⟩.
                    let flat_grads: Vec<f32> =
                        grads.iter().flat_map(|m| m.as_slice().to_vec()).collect();
                    let diff: Vec<f32> = v
                        .to_flat()
                        .iter()
                        .zip(w.to_flat().iter())
                        .map(|(&a, &b)| a - b)
                        .collect();
                    let alpha_grad: f32 = flat_grads
                        .iter()
                        .zip(diff.iter())
                        .map(|(&g_, &d)| g_ * d)
                        .sum();
                    alpha = (alpha - cfg.local_lr * alpha_grad).clamp(0.0, 1.0);
                    steps += 1;
                }
            }
            (
                w.to_flat(),
                v,
                alpha,
                data.train_len(),
                loss_sum / steps.max(1) as f32,
            )
        });

        let flats: Vec<&[f32]> = updates.iter().map(|(f, _, _, _, _)| f.as_slice()).collect();
        let counts: Vec<usize> = updates.iter().map(|(_, _, _, c, _)| *c).collect();
        let mean_loss =
            updates.iter().map(|(_, _, _, _, l)| l).sum::<f32>() / updates.len().max(1) as f32;
        global.load_flat(&weighted_average_refs(
            &flats,
            &sample_count_weights(&counts),
        ));
        for ((id, _, _), (_, v, alpha, _, _)) in inputs.iter().zip(updates) {
            locals[*id] = v;
            alphas[*id] = alpha;
        }
        round_losses.push(mean_loss);
    }

    // Personalization: the mixture model IS the personalized model.
    let ids: Vec<usize> = (0..fed.num_clients()).collect();
    let accuracies = parallel_map(&ids, |&id| {
        let mixed = mix_models(&locals[id], &global, alphas[id]);
        mixed.test_accuracy(fed.client(id), fed.generator())
    });
    let seen = PersonalizationOutcome::from_accuracies(accuracies);

    BaselineResult {
        name: "APFL".to_string(),
        seen,
        encoder: global.encoder().clone(),
        round_losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{NonIid, PartitionConfig, SynthVisionSpec};

    #[test]
    fn apfl_mixture_personalizes() {
        let fed = FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 4,
                train_per_client: 40,
                test_per_client: 20,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 2,
                },
                seed: 37,
            },
        );
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 6;
        cfg.clients_per_round = 3;
        cfg.local_epochs = 2;
        let result = run_apfl(&fed, &cfg);
        assert!(
            result.stats().mean > 0.55,
            "APFL mean accuracy {:?}",
            result.stats()
        );
    }

    #[test]
    fn mix_models_interpolates() {
        let cfg = FlConfig::for_input(64);
        let a = ClassifierModel::new(&cfg.ssl, 10, 0);
        let b = ClassifierModel::new(&cfg.ssl, 10, 1);
        let mixed = mix_models(&a, &b, 0.25);
        let (fa, fb, fm) = (a.to_flat(), b.to_flat(), mixed.to_flat());
        for i in 0..fa.len() {
            let expected = 0.25 * fa[i] + 0.75 * fb[i];
            assert!((fm[i] - expected).abs() < 1e-6);
        }
    }
}
