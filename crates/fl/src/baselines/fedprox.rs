//! FedProx (Li et al., MLSys 2020): FedAvg with a proximal term
//! `μ/2 · ‖w − w_global‖²` in every local objective, damping client drift
//! under heterogeneity.
//!
//! Not part of the paper's benchmark roster — provided as a library
//! extension because it is the most common drift-control baseline and the
//! plumbing (per-batch proximal pull) was already needed for Ditto.

use crate::aggregate::{sample_count_weights, weighted_average_refs};
use crate::baselines::{client_round_seed, evaluate_with_head_finetune, BaselineResult};
use crate::config::FlConfig;
use crate::model::{supervised_step, ClassifierModel, TrainScope};
use crate::parallel::parallel_map;
use calibre_data::batch::batches;
use calibre_data::FederatedDataset;
use calibre_tensor::nn::Module;
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::rng;

/// Runs FedProx end to end with proximal strength `mu`; evaluation uses the
/// `-FT` rule (head fine-tuning), making it directly comparable with
/// FedAvg-FT.
pub fn run_fedprox(fed: &FederatedDataset, cfg: &FlConfig, mu: f32) -> BaselineResult {
    assert!(mu >= 0.0, "proximal strength must be non-negative");
    let num_classes = fed.generator().num_classes();
    let mut global = ClassifierModel::new(&cfg.ssl, num_classes, cfg.seed);
    let schedule = cfg.selection_schedule(fed.num_clients());
    let mut round_losses = Vec::with_capacity(schedule.len());

    for (round, selected) in schedule.iter().enumerate() {
        let global_flat = global.to_flat();
        let updates = parallel_map(selected, |&id| {
            let data = fed.client(id);
            let labels = data.train_labels();
            let mut local = global.clone();
            let mut opt = Sgd::new(SgdConfig::with_lr_momentum(
                cfg.local_lr,
                cfg.local_momentum,
            ));
            let mut r = rng::seeded(client_round_seed(cfg.seed, round, id));
            let mut loss_sum = 0.0;
            let mut steps = 0;
            for _ in 0..cfg.local_epochs {
                for batch in batches(data.train.len(), cfg.batch_size, false, &mut r) {
                    let samples: Vec<_> = batch.iter().map(|&i| &data.train[i]).collect();
                    let x = fed.generator().render_batch(samples.iter().copied());
                    let y: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
                    loss_sum += supervised_step(&mut local, &x, &y, &mut opt, TrainScope::Full);
                    // Proximal pull toward the round's global parameters.
                    if mu > 0.0 {
                        let local_flat = local.to_flat();
                        let pulled: Vec<f32> = local_flat
                            .iter()
                            .zip(global_flat.iter())
                            .map(|(&w, &g)| w - cfg.local_lr * mu * (w - g))
                            .collect();
                        local.load_flat(&pulled);
                    }
                    steps += 1;
                }
            }
            (
                local.to_flat(),
                data.train_len(),
                loss_sum / steps.max(1) as f32,
            )
        });
        let flats: Vec<&[f32]> = updates.iter().map(|(f, _, _)| f.as_slice()).collect();
        let counts: Vec<usize> = updates.iter().map(|(_, c, _)| *c).collect();
        global.load_flat(&weighted_average_refs(
            &flats,
            &sample_count_weights(&counts),
        ));
        round_losses
            .push(updates.iter().map(|(_, _, l)| l).sum::<f32>() / updates.len().max(1) as f32);
    }

    let head = global.head().clone();
    let seen = evaluate_with_head_finetune(global.encoder(), fed, num_classes, &cfg.probe, |_| {
        head.clone()
    });
    BaselineResult {
        name: "FedProx-FT".to_string(),
        seen,
        encoder: global.encoder().clone(),
        round_losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{NonIid, PartitionConfig, SynthVisionSpec};

    fn tiny_fed() -> FederatedDataset {
        FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 4,
                train_per_client: 40,
                test_per_client: 20,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 2,
                },
                seed: 61,
            },
        )
    }

    fn tiny_cfg() -> FlConfig {
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 6;
        cfg.clients_per_round = 3;
        cfg.local_epochs = 2;
        cfg
    }

    #[test]
    fn fedprox_learns_under_label_skew() {
        let result = run_fedprox(&tiny_fed(), &tiny_cfg(), 0.1);
        assert!(
            result.stats().mean > 0.5,
            "FedProx-FT accuracy {:?}",
            result.stats()
        );
    }

    #[test]
    fn zero_mu_matches_fedavg() {
        use crate::baselines::fedavg::run_fedavg;
        let fed = tiny_fed();
        let cfg = tiny_cfg();
        let prox = run_fedprox(&fed, &cfg, 0.0);
        let avg = run_fedavg(&fed, &cfg, true);
        assert_eq!(prox.seen.accuracies, avg.seen.accuracies);
    }

    #[test]
    fn proximal_term_keeps_local_models_closer_to_global() {
        // Compare one client's post-update distance to the global model with
        // and without the proximal pull. Run a single round with one client.
        let fed = tiny_fed();
        let mut cfg = tiny_cfg();
        cfg.rounds = 1;
        cfg.clients_per_round = 1;
        let init = ClassifierModel::new(&cfg.ssl, 10, cfg.seed).to_flat();
        let distance = |result: &BaselineResult| -> f32 {
            result
                .encoder
                .to_flat()
                .iter()
                .zip(init.iter())
                .map(|(a, b)| (a - b) * (a - b))
                .sum::<f32>()
                .sqrt()
        };
        let loose = run_fedprox(&fed, &cfg, 0.0);
        let tight = run_fedprox(&fed, &cfg, 5.0);
        assert!(
            distance(&tight) < distance(&loose),
            "prox {} should be closer than plain {}",
            distance(&tight),
            distance(&loose)
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_mu_rejected() {
        run_fedprox(&tiny_fed(), &tiny_cfg(), -1.0);
    }
}
