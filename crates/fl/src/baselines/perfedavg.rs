//! PerFedAvg (Fallah et al., NeurIPS 2020): personalized FL as first-order
//! MAML. The global model is trained so that a *few local adaptation steps*
//! produce a good personalized model; evaluation therefore adapts the full
//! model locally before testing.

use crate::aggregate::{sample_count_weights, weighted_average_refs};
use crate::baselines::{client_round_seed, BaselineResult};
use crate::config::FlConfig;
use crate::model::{train_supervised, ClassifierModel, TrainScope};
use crate::parallel::parallel_map;
use crate::personalize::PersonalizationOutcome;
use calibre_data::batch::batches;
use calibre_data::FederatedDataset;
use calibre_tensor::nn::{gradients, Binding, Module};
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::{rng, Graph, Matrix};

/// Computes cross-entropy gradients of `model` on a rendered batch.
fn batch_gradients(model: &mut ClassifierModel, x: &Matrix, y: &[usize]) -> (Vec<Matrix>, f32) {
    let mut g = Graph::new();
    let xn = g.constant(x.clone());
    let mut binding = Binding::new();
    let feats = model.encoder_mut().forward(&mut g, xn, &mut binding);
    let logits = model.head().forward(&mut g, feats, &mut binding);
    let loss = g.cross_entropy(logits, y);
    let value = g.value(loss).get(0, 0);
    g.backward(loss);
    (gradients(&g, &binding), value)
}

/// Runs PerFedAvg (FO-MAML variant) end to end.
///
/// Inner (adaptation) learning rate is `cfg.local_lr`; the outer
/// (meta) learning rate is `cfg.local_lr / 2`, the standard β < α heuristic.
pub fn run_perfedavg(fed: &FederatedDataset, cfg: &FlConfig) -> BaselineResult {
    let num_classes = fed.generator().num_classes();
    let mut global = ClassifierModel::new(&cfg.ssl, num_classes, cfg.seed);
    let alpha = cfg.local_lr;
    let beta = cfg.local_lr * 0.5;
    let schedule = cfg.selection_schedule(fed.num_clients());
    let mut round_losses = Vec::with_capacity(schedule.len());

    for (round, selected) in schedule.iter().enumerate() {
        let updates = parallel_map(selected, |&id| {
            let data = fed.client(id);
            let labels = data.train_labels();
            let mut model = global.clone();
            let mut r = rng::seeded(client_round_seed(cfg.seed, round, id));
            let mut loss_sum = 0.0;
            let mut meta_steps = 0;
            for _ in 0..cfg.local_epochs {
                let all = batches(data.train.len(), cfg.batch_size, false, &mut r);
                // Consume batches in (support, query) pairs.
                for pair in all.chunks(2) {
                    if pair.len() < 2 {
                        continue;
                    }
                    let render = |idx: &[usize]| {
                        let samples: Vec<_> = idx.iter().map(|&i| &data.train[i]).collect();
                        let x = fed.generator().render_batch(samples.iter().copied());
                        let y: Vec<usize> = idx.iter().map(|&i| labels[i]).collect();
                        (x, y)
                    };
                    let (x_s, y_s) = render(&pair[0]);
                    let (x_q, y_q) = render(&pair[1]);
                    // Inner step on the support batch.
                    let mut inner = model.clone();
                    let (support_grads, _) = batch_gradients(&mut inner, &x_s, &y_s);
                    for (p, g) in inner.parameters_mut().into_iter().zip(support_grads.iter()) {
                        p.add_scaled(g, -alpha);
                    }
                    // First-order meta gradient: query gradient at the
                    // adapted point, applied to the un-adapted model.
                    let (query_grads, loss) = batch_gradients(&mut inner, &x_q, &y_q);
                    for (p, g) in model.parameters_mut().into_iter().zip(query_grads.iter()) {
                        p.add_scaled(g, -beta);
                    }
                    loss_sum += loss;
                    meta_steps += 1;
                }
            }
            (
                model.to_flat(),
                data.train_len(),
                loss_sum / meta_steps.max(1) as f32,
            )
        });
        let flats: Vec<&[f32]> = updates.iter().map(|(f, _, _)| f.as_slice()).collect();
        let counts: Vec<usize> = updates.iter().map(|(_, c, _)| *c).collect();
        global.load_flat(&weighted_average_refs(
            &flats,
            &sample_count_weights(&counts),
        ));
        round_losses
            .push(updates.iter().map(|(_, _, l)| l).sum::<f32>() / updates.len().max(1) as f32);
    }

    // Personalization: every client adapts the full model locally (the MAML
    // payoff) for the probe budget, then tests.
    let ids: Vec<usize> = (0..fed.num_clients()).collect();
    let accuracies = parallel_map(&ids, |&id| {
        let mut model = global.clone();
        let mut opt = Sgd::new(SgdConfig::with_lr(alpha));
        let mut r = rng::seeded(cfg.seed ^ 0x9E37 ^ id as u64);
        train_supervised(
            &mut model,
            fed.client(id),
            fed.generator(),
            cfg.probe.epochs,
            cfg.probe.batch_size,
            &mut opt,
            TrainScope::Full,
            &mut r,
        );
        model.test_accuracy(fed.client(id), fed.generator())
    });
    let seen = PersonalizationOutcome::from_accuracies(accuracies);

    BaselineResult {
        name: "PerFedAvg".to_string(),
        seen,
        encoder: global.encoder().clone(),
        round_losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{NonIid, PartitionConfig, SynthVisionSpec};

    #[test]
    fn perfedavg_adapts_quickly_after_meta_training() {
        let fed = FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 4,
                train_per_client: 64,
                test_per_client: 20,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 2,
                },
                seed: 31,
            },
        );
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 6;
        cfg.clients_per_round = 3;
        cfg.local_epochs = 2;
        cfg.batch_size = 16;
        let result = run_perfedavg(&fed, &cfg);
        assert!(
            result.stats().mean > 0.6,
            "PerFedAvg mean accuracy {:?}",
            result.stats()
        );
        assert!(result.round_losses.iter().all(|l| l.is_finite()));
    }
}
