//! Ditto (Li et al., ICML 2021): fair and robust FL through personalization.
//!
//! A global model trains FedAvg-style; in parallel, each client maintains a
//! personal model trained with a proximal term `λ/2 · ‖v − w_global‖²` that
//! tethers it to the global solution. The personal model is the one
//! evaluated — Ditto is the paper's dedicated fairness baseline (§V-A).

use crate::aggregate::{sample_count_weights, weighted_average_refs};
use crate::baselines::{client_round_seed, BaselineResult};
use crate::config::FlConfig;
use crate::model::{supervised_step, train_supervised, ClassifierModel, TrainScope};
use crate::parallel::parallel_map;
use crate::personalize::PersonalizationOutcome;
use calibre_data::batch::batches;
use calibre_data::FederatedDataset;
use calibre_tensor::nn::Module;
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::rng;

/// The proximal strength λ (Ditto's default grid centers on ~0.1–1).
const LAMBDA: f32 = 0.5;

/// Runs Ditto end to end.
pub fn run_ditto(fed: &FederatedDataset, cfg: &FlConfig) -> BaselineResult {
    let num_classes = fed.generator().num_classes();
    let mut global = ClassifierModel::new(&cfg.ssl, num_classes, cfg.seed);
    let mut personals: Vec<ClassifierModel> = (0..fed.num_clients())
        .map(|id| ClassifierModel::new(&cfg.ssl, num_classes, cfg.seed ^ 0xD1770 ^ id as u64))
        .collect();
    let schedule = cfg.selection_schedule(fed.num_clients());
    let mut round_losses = Vec::with_capacity(schedule.len());

    for (round, selected) in schedule.iter().enumerate() {
        let global_flat = global.to_flat();
        let inputs: Vec<(usize, ClassifierModel)> = selected
            .iter()
            .map(|&id| (id, personals[id].clone()))
            .collect();
        let updates = parallel_map(&inputs, |(id, personal)| {
            let data = fed.client(*id);
            let labels = data.train_labels();
            let mut w = global.clone();
            let mut v = personal.clone();
            let mut w_opt = Sgd::new(SgdConfig::with_lr_momentum(
                cfg.local_lr,
                cfg.local_momentum,
            ));
            let mut v_opt = Sgd::new(SgdConfig::with_lr(cfg.local_lr));
            let mut r = rng::seeded(client_round_seed(cfg.seed, round, *id));
            let mut loss_sum = 0.0;
            let mut steps = 0;
            for _ in 0..cfg.local_epochs {
                for batch in batches(data.train.len(), cfg.batch_size, false, &mut r) {
                    let samples: Vec<_> = batch.iter().map(|&i| &data.train[i]).collect();
                    let x = fed.generator().render_batch(samples.iter().copied());
                    let y: Vec<usize> = batch.iter().map(|&i| labels[i]).collect();
                    // Global-model step (what the server aggregates).
                    loss_sum += supervised_step(&mut w, &x, &y, &mut w_opt, TrainScope::Full);
                    // Personal-model step with the proximal pull toward the
                    // round's global parameters.
                    supervised_step(&mut v, &x, &y, &mut v_opt, TrainScope::Full);
                    let v_flat = v.to_flat();
                    let pulled: Vec<f32> = v_flat
                        .iter()
                        .zip(global_flat.iter())
                        .map(|(&vv, &gg)| vv - cfg.local_lr * LAMBDA * (vv - gg))
                        .collect();
                    v.load_flat(&pulled);
                    steps += 1;
                }
            }
            (
                w.to_flat(),
                v,
                data.train_len(),
                loss_sum / steps.max(1) as f32,
            )
        });

        let flats: Vec<&[f32]> = updates.iter().map(|(f, _, _, _)| f.as_slice()).collect();
        let counts: Vec<usize> = updates.iter().map(|(_, _, c, _)| *c).collect();
        let mean_loss =
            updates.iter().map(|(_, _, _, l)| l).sum::<f32>() / updates.len().max(1) as f32;
        global.load_flat(&weighted_average_refs(
            &flats,
            &sample_count_weights(&counts),
        ));
        for ((id, _), (_, v, _, _)) in inputs.iter().zip(updates) {
            personals[*id] = v;
        }
        round_losses.push(mean_loss);
    }

    // Evaluation: the personal models. Clients never selected during
    // training still hold their initialization, so give every client a
    // final personal pass (this mirrors Ditto's solver, where the personal
    // objective is optimized locally and cheaply).
    let global_flat = global.to_flat();
    let ids: Vec<usize> = (0..fed.num_clients()).collect();
    let accuracies = parallel_map(&ids, |&id| {
        let mut v = personals[id].clone();
        let mut opt = Sgd::new(SgdConfig::with_lr(cfg.probe.lr));
        let mut r = rng::seeded(cfg.seed ^ 0xD1_770E ^ id as u64);
        let data = fed.client(id);
        for _ in 0..cfg.probe.epochs {
            train_supervised(
                &mut v,
                data,
                fed.generator(),
                1,
                cfg.probe.batch_size,
                &mut opt,
                TrainScope::Full,
                &mut r,
            );
            let v_flat = v.to_flat();
            let pulled: Vec<f32> = v_flat
                .iter()
                .zip(global_flat.iter())
                .map(|(&vv, &gg)| vv - cfg.probe.lr * LAMBDA * (vv - gg))
                .collect();
            v.load_flat(&pulled);
        }
        v.test_accuracy(data, fed.generator())
    });
    let seen = PersonalizationOutcome::from_accuracies(accuracies);

    BaselineResult {
        name: "Ditto".to_string(),
        seen,
        encoder: global.encoder().clone(),
        round_losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{NonIid, PartitionConfig, SynthVisionSpec};

    #[test]
    fn ditto_personal_models_learn() {
        let fed = FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 4,
                train_per_client: 40,
                test_per_client: 20,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 2,
                },
                seed: 41,
            },
        );
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 6;
        cfg.clients_per_round = 3;
        cfg.local_epochs = 2;
        let result = run_ditto(&fed, &cfg);
        assert!(
            result.stats().mean > 0.6,
            "Ditto mean accuracy {:?}",
            result.stats()
        );
    }
}
