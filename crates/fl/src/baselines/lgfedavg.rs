//! LG-FedAvg (Liang et al., 2019): *local* representations, *global* head —
//! the mirror image of FedPer. Each client keeps a personal encoder; only
//! the classifier head is aggregated.

use crate::aggregate::{sample_count_weights, uniform_average, weighted_average};
use crate::baselines::{client_round_seed, BaselineResult};
use crate::config::FlConfig;
use crate::model::{train_supervised, ClassifierModel, TrainScope};
use crate::parallel::parallel_map;
use crate::personalize::PersonalizationOutcome;
use calibre_data::FederatedDataset;
use calibre_ssl::{probe_accuracy, train_linear_probe_from};
use calibre_tensor::nn::{Mlp, Module};
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::rng;

/// Runs LG-FedAvg end to end.
///
/// The exported `encoder` in the result is the uniform average of all client
/// encoders — LG-FedAvg has no true global encoder, and this average is what
/// a novel client would reasonably bootstrap from.
pub fn run_lgfedavg(fed: &FederatedDataset, cfg: &FlConfig) -> BaselineResult {
    let num_classes = fed.generator().num_classes();
    let template = ClassifierModel::new(&cfg.ssl, num_classes, cfg.seed);
    let mut global_head = template.head().clone();
    // Per-client persistent local encoders.
    let mut encoders: Vec<Mlp> = (0..fed.num_clients())
        .map(|id| {
            let mut r = rng::seeded(cfg.seed ^ 0x16FED ^ id as u64);
            Mlp::new(
                &cfg.ssl.encoder_layer_dims(),
                calibre_tensor::nn::Activation::Relu,
                &mut r,
            )
        })
        .collect();
    let schedule = cfg.selection_schedule(fed.num_clients());
    let mut round_losses = Vec::with_capacity(schedule.len());

    for (round, selected) in schedule.iter().enumerate() {
        let inputs: Vec<(usize, Mlp)> = selected
            .iter()
            .map(|&id| (id, encoders[id].clone()))
            .collect();
        let updates = parallel_map(&inputs, |(id, encoder)| {
            let mut model = template.clone();
            model.encoder_mut().load_flat(&encoder.to_flat());
            model.set_head(global_head.clone());
            let mut opt = Sgd::new(SgdConfig::with_lr_momentum(
                cfg.local_lr,
                cfg.local_momentum,
            ));
            let mut r = rng::seeded(client_round_seed(cfg.seed, round, *id));
            let loss = train_supervised(
                &mut model,
                fed.client(*id),
                fed.generator(),
                cfg.local_epochs,
                cfg.batch_size,
                &mut opt,
                TrainScope::Full,
                &mut r,
            );
            (
                model.encoder().to_flat(),
                model.head().to_flat(),
                fed.client(*id).train_len(),
                loss,
            )
        });
        // Only the head aggregates.
        let head_flats: Vec<Vec<f32>> = updates.iter().map(|(_, h, _, _)| h.clone()).collect();
        let counts: Vec<usize> = updates.iter().map(|(_, _, c, _)| *c).collect();
        global_head.load_flat(&weighted_average(
            &head_flats,
            &sample_count_weights(&counts),
        ));
        for ((id, _), (enc_flat, _, _, _)) in inputs.iter().zip(updates.iter()) {
            encoders[*id].load_flat(enc_flat);
        }
        round_losses
            .push(updates.iter().map(|(_, _, _, l)| l).sum::<f32>() / updates.len().max(1) as f32);
    }

    // Personalization: each client keeps its local encoder and fine-tunes
    // the global head on it.
    let ids: Vec<usize> = (0..fed.num_clients()).collect();
    let accuracies = parallel_map(&ids, |&id| {
        let data = fed.client(id);
        if data.train.is_empty() || data.test.is_empty() {
            return 0.0;
        }
        let train_x = encoders[id].infer(&fed.generator().render_batch(data.train.iter()));
        let test_x = encoders[id].infer(&fed.generator().render_batch(data.test.iter()));
        let mut probe = cfg.probe;
        probe.seed = cfg.probe.seed ^ (id as u64).wrapping_mul(0x9E37_79B9);
        let head = train_linear_probe_from(
            global_head.clone(),
            &train_x,
            &data.train_labels(),
            num_classes,
            &probe,
        );
        probe_accuracy(&head, &test_x, &data.test_labels())
    });
    let seen = PersonalizationOutcome::from_accuracies(accuracies);

    // Export the average of local encoders as the best available "global"
    // encoder for novel clients / figures.
    let encoder_flats: Vec<Vec<f32>> = encoders.iter().map(Module::to_flat).collect();
    let mut mean_encoder = encoders[0].clone();
    mean_encoder.load_flat(&uniform_average(&encoder_flats));

    BaselineResult {
        name: "LG-FedAvg".to_string(),
        seen,
        encoder: mean_encoder,
        round_losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{NonIid, PartitionConfig, SynthVisionSpec};

    #[test]
    fn lgfedavg_personalizes_through_local_encoders() {
        let fed = FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 4,
                train_per_client: 40,
                test_per_client: 20,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 2,
                },
                seed: 29,
            },
        );
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 6;
        cfg.clients_per_round = 3;
        cfg.local_epochs = 2;
        let result = run_lgfedavg(&fed, &cfg);
        assert!(
            result.stats().mean > 0.6,
            "LG-FedAvg mean accuracy {:?}",
            result.stats()
        );
    }
}
