//! FedBABU (Oh et al., ICLR 2022): train the *body*, freeze the *head*.
//!
//! The head stays at its shared random initialization for the entire
//! training stage and is never aggregated; only the encoder learns. At
//! personalization time each client fine-tunes the head from that shared
//! initialization. The paper (§II) notes FedBABU's two-stage structure is
//! the closest supervised relative of Calibre's own pipeline.

use crate::aggregate::{sample_count_weights, weighted_average_refs};
use crate::baselines::{client_round_seed, evaluate_with_head_finetune, BaselineResult};
use crate::config::FlConfig;
use crate::model::{train_supervised, ClassifierModel, TrainScope};
use crate::parallel::parallel_map;
use calibre_data::FederatedDataset;
use calibre_tensor::nn::Module;
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::rng;

/// Runs FedBABU end to end.
pub fn run_fedbabu(fed: &FederatedDataset, cfg: &FlConfig) -> BaselineResult {
    let num_classes = fed.generator().num_classes();
    // One shared random head, fixed for the entire training stage.
    let template = ClassifierModel::new(&cfg.ssl, num_classes, cfg.seed);
    let fixed_head = template.head().clone();
    let mut global_encoder = template.encoder().clone();
    let schedule = cfg.selection_schedule(fed.num_clients());
    let mut round_losses = Vec::with_capacity(schedule.len());

    for (round, selected) in schedule.iter().enumerate() {
        let updates = parallel_map(selected, |&id| {
            let mut model = template.clone();
            model.encoder_mut().load_flat(&global_encoder.to_flat());
            model.set_head(fixed_head.clone());
            let mut opt = Sgd::new(SgdConfig::with_lr_momentum(
                cfg.local_lr,
                cfg.local_momentum,
            ));
            let mut r = rng::seeded(client_round_seed(cfg.seed, round, id));
            let loss = train_supervised(
                &mut model,
                fed.client(id),
                fed.generator(),
                cfg.local_epochs,
                cfg.batch_size,
                &mut opt,
                TrainScope::EncoderOnly,
                &mut r,
            );
            (model.encoder().to_flat(), fed.client(id).train_len(), loss)
        });
        let flats: Vec<&[f32]> = updates.iter().map(|(f, _, _)| f.as_slice()).collect();
        let counts: Vec<usize> = updates.iter().map(|(_, c, _)| *c).collect();
        global_encoder.load_flat(&weighted_average_refs(
            &flats,
            &sample_count_weights(&counts),
        ));
        round_losses
            .push(updates.iter().map(|(_, _, l)| l).sum::<f32>() / updates.len().max(1) as f32);
    }

    // Personalization: fine-tune the head from the shared initialization.
    let seen = evaluate_with_head_finetune(&global_encoder, fed, num_classes, &cfg.probe, |_| {
        fixed_head.clone()
    });

    BaselineResult {
        name: "FedBABU".to_string(),
        seen,
        encoder: global_encoder,
        round_losses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_data::{NonIid, PartitionConfig, SynthVisionSpec};

    #[test]
    fn fedbabu_trains_body_and_personalizes_head() {
        let fed = FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 4,
                train_per_client: 40,
                test_per_client: 20,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity {
                    classes_per_client: 2,
                },
                seed: 19,
            },
        );
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 6;
        cfg.clients_per_round = 3;
        cfg.local_epochs = 2;
        let result = run_fedbabu(&fed, &cfg);
        assert!(
            result.stats().mean > 0.6,
            "FedBABU mean accuracy {:?}",
            result.stats()
        );
    }
}
