//! Update compression: top-k sparsification and uniform quantization.
//!
//! Standard federated-learning bandwidth reducers. Both operate on the flat
//! parameter-vector wire format ([`Module::to_flat`]) and are *lossy*; the
//! tests and the `ablations` bench quantify the accuracy/bandwidth
//! trade-off. Compression composes with any aggregation strategy because a
//! decompressed update is again a plain flat vector.
//!
//! [`Module::to_flat`]: calibre_tensor::nn::Module::to_flat

use serde::{Deserialize, Serialize};

/// A sparsified update: the `k` largest-magnitude coordinates of a flat
/// vector, stored as (index, value) pairs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SparseUpdate {
    /// Length of the original dense vector.
    pub dim: usize,
    /// Indices of the retained coordinates (sorted ascending).
    pub indices: Vec<u32>,
    /// Values of the retained coordinates, parallel to `indices`.
    pub values: Vec<f32>,
}

impl SparseUpdate {
    /// Wire size in bytes (4 bytes per index + 4 per value).
    pub fn wire_bytes(&self) -> usize {
        self.indices.len() * 8
    }

    /// Reconstructs the dense vector (zeros at dropped coordinates).
    pub fn to_dense(&self) -> Vec<f32> {
        let span = calibre_telemetry::span("decompress");
        span.add_items(self.dim as u64);
        let mut out = vec![0.0f32; self.dim];
        for (&i, &v) in self.indices.iter().zip(&self.values) {
            out[i as usize] = v;
        }
        out
    }
}

/// Keeps the `k` largest-magnitude coordinates of `update`.
///
/// `k` is clamped to the vector length; `k == dim` is lossless.
///
/// # Panics
///
/// Panics if `k == 0` or the update is longer than `u32::MAX` scalars.
pub fn top_k_sparsify(update: &[f32], k: usize) -> SparseUpdate {
    let span = calibre_telemetry::span("compress");
    span.add_items(update.len() as u64);
    assert!(k > 0, "k must be positive");
    assert!(
        update.len() <= u32::MAX as usize,
        "update too large for u32 indices"
    );
    let k = k.min(update.len());
    let mut order: Vec<usize> = (0..update.len()).collect();
    order.sort_by(|&a, &b| update[b].abs().total_cmp(&update[a].abs()));
    let mut kept: Vec<usize> = order[..k].to_vec();
    kept.sort_unstable();
    SparseUpdate {
        dim: update.len(),
        indices: kept.iter().map(|&i| i as u32).collect(),
        values: kept.iter().map(|&i| update[i]).collect(),
    }
}

/// A uniformly-quantized update: values mapped to `2^bits` levels across
/// `[min, max]`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QuantizedUpdate {
    /// Quantization resolution in bits (1..=8; levels are stored in a byte).
    pub bits: u8,
    /// Minimum of the original values.
    pub min: f32,
    /// Maximum of the original values.
    pub max: f32,
    /// One level per coordinate.
    pub levels: Vec<u8>,
}

impl QuantizedUpdate {
    /// Wire size in bytes: packed levels plus the two range floats.
    pub fn wire_bytes(&self) -> usize {
        // Levels are conceptually packed at `bits` per coordinate.
        (self.levels.len() * self.bits as usize).div_ceil(8) + 8
    }

    /// Reconstructs the dense vector (each level maps to its bin center).
    pub fn to_dense(&self) -> Vec<f32> {
        let levels = (1u32 << self.bits) - 1;
        if levels == 0 || self.max <= self.min {
            return vec![self.min; self.levels.len()];
        }
        let step = (self.max - self.min) / levels as f32;
        self.levels
            .iter()
            .map(|&l| self.min + l as f32 * step)
            .collect()
    }
}

/// Quantizes a dense update to `bits` bits per coordinate.
///
/// # Panics
///
/// Panics if `bits` is 0 or greater than 8, or any value is non-finite.
pub fn quantize(update: &[f32], bits: u8) -> QuantizedUpdate {
    let span = calibre_telemetry::span("compress");
    span.add_items(update.len() as u64);
    assert!((1..=8).contains(&bits), "bits must be in 1..=8, got {bits}");
    assert!(
        update.iter().all(|v| v.is_finite()),
        "cannot quantize non-finite values"
    );
    let min = update.iter().cloned().fold(f32::INFINITY, f32::min);
    let max = update.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let (min, max) = if update.is_empty() {
        (0.0, 0.0)
    } else {
        (min, max)
    };
    let levels = (1u32 << bits) - 1;
    let scale = if max > min {
        levels as f32 / (max - min)
    } else {
        0.0
    };
    QuantizedUpdate {
        bits,
        min,
        max,
        levels: update
            .iter()
            .map(|&v| (((v - min) * scale).round() as u32).min(levels) as u8)
            .collect(),
    }
}

/// Maximum absolute reconstruction error of a compressed update.
pub fn reconstruction_error(original: &[f32], reconstructed: &[f32]) -> f32 {
    assert_eq!(original.len(), reconstructed.len(), "length mismatch");
    original
        .iter()
        .zip(reconstructed)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_tensor::rng;

    fn random_update(n: usize, seed: u64) -> Vec<f32> {
        rng::normal_vec(&mut rng::seeded(seed), n)
    }

    #[test]
    fn top_k_keeps_largest_magnitudes() {
        let update = vec![0.1, -5.0, 0.3, 2.0, -0.2];
        let sparse = top_k_sparsify(&update, 2);
        assert_eq!(sparse.indices, vec![1, 3]);
        assert_eq!(sparse.values, vec![-5.0, 2.0]);
        let dense = sparse.to_dense();
        assert_eq!(dense, vec![0.0, -5.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn full_k_is_lossless() {
        let update = random_update(64, 1);
        let sparse = top_k_sparsify(&update, 64);
        assert_eq!(sparse.to_dense(), update);
    }

    #[test]
    fn sparsification_error_decreases_with_k() {
        let update = random_update(256, 2);
        let mut last = f32::INFINITY;
        for k in [8, 32, 128, 256] {
            let err = reconstruction_error(&update, &top_k_sparsify(&update, k).to_dense());
            assert!(err <= last + 1e-6, "k={k}: error {err} > previous {last}");
            last = err;
        }
        assert_eq!(last, 0.0);
    }

    #[test]
    fn top_k_wire_size_beats_dense_when_sparse_enough() {
        let update = random_update(1000, 3);
        let sparse = top_k_sparsify(&update, 100);
        assert!(sparse.wire_bytes() < 1000 * 4);
    }

    #[test]
    fn quantization_roundtrip_error_is_bounded_by_half_step() {
        let update = random_update(512, 4);
        for bits in [2u8, 4, 8] {
            let q = quantize(&update, bits);
            let dense = q.to_dense();
            let levels = (1u32 << bits) - 1;
            let step = (q.max - q.min) / levels as f32;
            let err = reconstruction_error(&update, &dense);
            assert!(
                err <= step / 2.0 + 1e-5,
                "bits={bits}: error {err} exceeds half-step {}",
                step / 2.0
            );
        }
    }

    #[test]
    fn more_bits_means_less_error() {
        let update = random_update(512, 5);
        let e2 = reconstruction_error(&update, &quantize(&update, 2).to_dense());
        let e8 = reconstruction_error(&update, &quantize(&update, 8).to_dense());
        assert!(e8 < e2, "8-bit error {e8} should beat 2-bit {e2}");
    }

    #[test]
    fn constant_vector_quantizes_exactly() {
        let update = vec![3.5f32; 16];
        let q = quantize(&update, 4);
        assert_eq!(q.to_dense(), update);
    }

    #[test]
    fn quantized_wire_size_is_bits_per_coordinate() {
        let update = random_update(1000, 6);
        let q = quantize(&update, 8);
        assert_eq!(q.wire_bytes(), 1000 + 8);
        let q4 = quantize(&update, 4);
        assert_eq!(q4.wire_bytes(), 500 + 8);
    }

    #[test]
    #[should_panic(expected = "bits must be in 1..=8")]
    fn quantize_rejects_zero_bits() {
        quantize(&[1.0], 0);
    }

    #[test]
    fn quantized_aggregation_stays_close_to_exact() {
        // Compress → decompress → aggregate should track exact aggregation.
        use crate::aggregate::uniform_average;
        let updates: Vec<Vec<f32>> = (0..5).map(|i| random_update(128, 10 + i)).collect();
        let exact = uniform_average(&updates);
        let compressed: Vec<Vec<f32>> = updates.iter().map(|u| quantize(u, 8).to_dense()).collect();
        let approx = uniform_average(&compressed);
        let err = reconstruction_error(&exact, &approx);
        assert!(err < 0.05, "aggregated quantization error {err}");
    }
}
