//! The `calibre-serve` engine: round orchestration over a [`Transport`].
//!
//! One function, [`run_rounds`], owns the whole server loop — cohort
//! selection through [`crate::sampler`], round execution through
//! [`RoundScheduler::run_round_transport`], model application, and
//! crash-safe persistence through [`CheckpointStore`]. The two public
//! entries differ **only** in the transport they plug in:
//!
//! * [`run_in_process`] — an [`InProcessTransport`] over the deterministic
//!   simulated workload ([`sim_update`]);
//! * [`run_server`] — a [`SocketTransport`] speaking [`crate::proto`]
//!   frames to real `calibre-client` processes.
//!
//! Because both paths execute the same loop body, the cross-transport
//! guarantee — same seeds + same cohort schedule ⇒ byte-identical final
//! model — holds by construction wherever the transport delivers every
//! surviving reply (bounded retries absorb recoverable wire faults).

use std::path::PathBuf;

use calibre_telemetry::{metrics, Recorder};

use crate::adversary::{AttackPlan, ReputationBook};
use crate::chaos::{FaultPlan, WireFaultPlan, WireInjector};
use crate::checkpoint::{CheckpointStore, ServerCheckpoint};
use crate::proto::model_checksum;
use crate::resilient::RoundPolicy;
use crate::sampler::{Sampler, SamplerKind};
use crate::scheduler::RoundScheduler;
use crate::transport::{
    InProcessTransport, Listener, NetPolicy, SocketTransport, StreamUpdate, Transport,
    TransportError, WelcomeInfo,
};
use calibre_tensor::rng;
use rand::Rng;

/// Everything a serve run is derived from. Two runs with equal configs
/// produce byte-identical final models on any transport that delivers.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Registered client population (valid ids are `0..population`).
    pub population: usize,
    /// Clients sampled per round.
    pub cohort: usize,
    /// Federated rounds.
    pub rounds: usize,
    /// Model dimension.
    pub dim: usize,
    /// Clients in flight at once per wave.
    pub wave: usize,
    /// Run seed — sampling, initialization, workload, and chaos all derive
    /// from it.
    pub seed: u64,
    /// Quorum/aggregation policy.
    pub policy: RoundPolicy,
    /// Client-level chaos (dropout, corruption), applied by the scheduler
    /// identically on every transport.
    pub chaos: FaultPlan,
    /// Byzantine-client simulation, applied by the scheduler identically
    /// on every transport. Inactive by default.
    pub attack: AttackPlan,
    /// Server-side anomaly detection and quarantine. Off by default; when
    /// on, quarantined clients stop being sampled and the reputation book
    /// persists through the server checkpoint.
    pub detect: bool,
    /// Wire-level chaos (frame drops, delays, truncations, partitions,
    /// reconnect churn), applied only by the socket transport.
    pub wire: WireFaultPlan,
    /// Socket retry/timeout policy.
    pub net: NetPolicy,
    /// Server checkpoint path; `None` disables persistence.
    pub checkpoint: Option<PathBuf>,
}

impl ServeConfig {
    /// The loopback smoke configuration the CI serve job and the identity
    /// tests share: 4 clients, cohort 3, 3 rounds.
    pub fn smoke() -> Self {
        ServeConfig {
            population: 4,
            cohort: 3,
            rounds: 3,
            dim: 32,
            wave: 2,
            seed: 0xCA11_B8E5,
            policy: RoundPolicy {
                min_quorum: 2,
                ..RoundPolicy::default()
            },
            chaos: FaultPlan::default(),
            attack: AttackPlan::default(),
            detect: false,
            wire: WireFaultPlan::default(),
            net: NetPolicy::default(),
            checkpoint: None,
        }
    }

    /// Planned wire bytes for one nominal round: one model down and one
    /// update up per cohort member, plus frame overhead (retries and
    /// reconnects add observed bytes on top).
    pub fn planned_round_bytes(&self) -> u64 {
        (2 * crate::comm::framed_bytes(self.dim) * self.cohort) as u64
    }
}

/// What a serve run produced — the bits the smoke gates assert on.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeOutcome {
    /// Rounds executed (including skipped ones).
    pub rounds_run: usize,
    /// Rounds that missed quorum and left the model untouched.
    pub skipped_rounds: usize,
    /// Total accepted client updates across rounds.
    pub accepted_total: usize,
    /// Total dropped clients (chaos dropouts + undelivered replies).
    pub dropped_total: usize,
    /// The final global model.
    pub model: Vec<f32>,
    /// FNV-1a fingerprint of the final model's bit patterns — the quantity
    /// the cross-transport identity test compares.
    pub checksum: u64,
}

/// Deterministic initial model for a serve run: seeded, zero-mean, small.
pub fn sim_init(seed: u64, dim: usize) -> Vec<f32> {
    let mut r = rng::seeded(seed ^ 0x1217_AC3D_5EED_F00D);
    (0..dim).map(|_| 0.1 * (r.gen::<f32>() - 0.5)).collect()
}

/// The deterministic simulated client workload both transports run: a
/// decay pull toward zero plus seeded exploration noise. Crucially the
/// update **depends on the received global model**, so any lost, stale, or
/// reordered delivery changes the final checksum — the identity test
/// detects transport bugs, not just RNG agreement.
pub fn sim_update(seed: u64, round: usize, client: usize, global: &[f32]) -> StreamUpdate {
    let mixed = seed
        .wrapping_add((round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add((client as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
    let mut r = rng::seeded(mixed);
    let update: Vec<f32> = global
        .iter()
        .map(|g| -0.1 * g + 0.05 * (r.gen::<f32>() - 0.5))
        .collect();
    let loss = if update.is_empty() {
        0.0
    } else {
        // analyze:allow(lossy-cast) -- model dims sit far below f32
        // integer precision loss (2^24).
        update.iter().map(|v| v * v).sum::<f32>() / update.len() as f32
    };
    StreamUpdate {
        update,
        // analyze:allow(lossy-cast) -- small residue classes only.
        weight: 1.0 + (client % 7) as f32,
        loss,
        divergence: 0.0,
    }
}

fn restore_or_init(
    cfg: &ServeConfig,
    store: Option<&CheckpointStore>,
) -> (usize, Vec<f32>, ReputationBook) {
    if let Some(store) = store {
        if let Ok(ckpt) = store.load_with(ServerCheckpoint::parse) {
            if ckpt.model.len() == cfg.dim && ckpt.round <= cfg.rounds {
                return (ckpt.round, ckpt.model, ckpt.reputation);
            }
        }
    }
    (0, sim_init(cfg.seed, cfg.dim), ReputationBook::new())
}

/// Runs the full round loop over any transport. This is the single body
/// both [`run_server`] and [`run_in_process`] execute — the heart of the
/// cross-transport identity guarantee.
///
/// # Errors
///
/// Propagates unrecoverable [`TransportError`]s (per-client delivery
/// failures are absorbed as drops) and surfaces checkpoint I/O failures as
/// [`TransportError::Protocol`].
pub fn run_rounds(
    cfg: &ServeConfig,
    transport: &mut dyn Transport,
    recorder: &dyn Recorder,
) -> Result<ServeOutcome, TransportError> {
    let store = cfg.checkpoint.as_ref().map(CheckpointStore::new);
    let (start_round, mut model, reputation) = restore_or_init(cfg, store.as_ref());

    let scheduler = RoundScheduler::sampled(
        Sampler::new(SamplerKind::Uniform, cfg.seed),
        cfg.population,
        cfg.cohort,
        cfg.rounds,
    )
    .with_policy(cfg.policy)
    .with_chaos(cfg.chaos.clone(), cfg.seed)
    .with_attack(cfg.attack.clone(), cfg.seed)
    .with_detection(cfg.detect)
    .with_reputation(reputation);

    let mut out = ServeOutcome {
        rounds_run: start_round,
        skipped_rounds: 0,
        accepted_total: 0,
        dropped_total: 0,
        model: Vec::new(),
        checksum: 0,
    };
    for round in start_round..cfg.rounds {
        let selected = scheduler.select(round, None);
        recorder.round_start(round, &selected);
        // The policy's aggregator picks the sink: plain weighted averaging
        // streams in O(model); robust defenses buffer (memory-bounded) and
        // aggregate at finish. The reservoir seed mixes the round index so
        // any capacity-forced sampling still replays identically.
        let mut sink = cfg.policy.aggregator.sink(
            selected.len().max(1),
            cfg.seed ^ (round as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        );
        let streamed = scheduler.run_round_transport(
            round,
            &selected,
            cfg.wave,
            &model,
            sink.as_mut(),
            transport,
            recorder,
        )?;
        out.accepted_total += streamed.accepted;
        out.dropped_total += streamed.dropped;
        if let Some(aggregate) = streamed.aggregated {
            for (m, a) in model.iter_mut().zip(aggregate.iter()) {
                *m += a;
            }
        } else {
            out.skipped_rounds += 1;
        }
        out.rounds_run = round + 1;
        metrics::gauge_set("calibre_serve_round", &[], (round + 1) as f64);
        metrics::gauge_set(
            "calibre_serve_mean_loss",
            &[],
            f64::from(streamed.mean_loss),
        );
        if let Some(store) = &store {
            let ckpt = ServerCheckpoint {
                round: round + 1,
                model: model.clone(),
                reputation: scheduler.reputation(),
            };
            store
                .save_text(&ckpt.to_text())
                .map_err(|e| TransportError::Protocol(format!("checkpoint save: {e}")))?;
        }
    }

    out.checksum = model_checksum(&model);
    out.model = model;
    metrics::gauge_set(
        "calibre_serve_skipped_rounds",
        &[],
        out.skipped_rounds as f64,
    );
    Ok(out)
}

/// Runs the serve loop entirely in-process over the simulated workload —
/// the "golden twin" the socket path is compared against.
///
/// # Errors
///
/// Only checkpoint I/O can fail; the in-process transport itself cannot.
pub fn run_in_process(
    cfg: &ServeConfig,
    recorder: &dyn Recorder,
) -> Result<ServeOutcome, TransportError> {
    let seed = cfg.seed;
    let mut transport = InProcessTransport::new(move |round, client, global: &[f32]| {
        sim_update(seed, round, client, global)
    });
    run_rounds(cfg, &mut transport, recorder)
}

/// The `Welcome` a server derives from its config (public so the bins and
/// tests can build transports directly).
pub fn welcome_info(cfg: &ServeConfig) -> WelcomeInfo {
    WelcomeInfo {
        seed: cfg.seed,
        rounds: cfg.rounds as u32,
        dim: cfg.dim as u32,
        population: cfg.population as u32,
        churn_prob: cfg.wire.churn_prob,
        churn_seed: WireInjector::for_run(cfg.wire.clone(), cfg.seed).mixed_seed(),
    }
}

/// Serves a run over a bound listener: registers `population` clients,
/// drives the rounds through a [`SocketTransport`] (with deterministic
/// wire chaos when `cfg.wire` is active), then broadcasts `Finish` with
/// the final model fingerprint.
///
/// # Errors
///
/// [`TransportError::Registration`] when the population never assembles,
/// otherwise as [`run_rounds`].
pub fn run_server(
    cfg: &ServeConfig,
    listener: Listener,
    recorder: &dyn Recorder,
) -> Result<ServeOutcome, TransportError> {
    let wire = cfg
        .wire
        .is_active()
        .then(|| WireInjector::for_run(cfg.wire.clone(), cfg.seed));
    let mut transport = SocketTransport::new(listener, welcome_info(cfg), cfg.net.clone(), wire);
    transport.register()?;
    let out = run_rounds(cfg, &mut transport, recorder)?;
    transport.finish(out.rounds_run, out.checksum)?;
    Ok(out)
}

/// The client-side work closure matching [`sim_update`] — what
/// `calibre-client` and the loopback tests hand to
/// [`crate::transport::run_client`].
pub fn sim_client_work(seed: u64, client: usize) -> impl FnMut(usize, &[f32]) -> StreamUpdate {
    move |round, global| sim_update(seed, round, client, global)
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_telemetry::NullRecorder;

    #[test]
    fn in_process_serve_is_replay_identical() {
        let cfg = ServeConfig::smoke();
        let a = run_in_process(&cfg, &NullRecorder).unwrap();
        let b = run_in_process(&cfg, &NullRecorder).unwrap();
        assert_eq!(a.checksum, b.checksum);
        assert_eq!(a.model, b.model);
        assert_eq!(a.rounds_run, 3);
        assert_eq!(a.skipped_rounds, 0);
        assert!(a.accepted_total > 0);

        let mut other = cfg;
        other.seed ^= 1;
        let c = run_in_process(&other, &NullRecorder).unwrap();
        assert_ne!(a.checksum, c.checksum, "seed must matter");
    }

    #[test]
    fn serve_checkpoint_resume_is_bit_identical_to_uninterrupted() {
        let dir = std::env::temp_dir().join(format!("calibre-serve-ckpt-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("server.ckpt");
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(path.with_extension("ckpt.prev"));

        let mut cfg = ServeConfig::smoke();
        let uninterrupted = run_in_process(&cfg, &NullRecorder).unwrap();

        // Run only 2 of 3 rounds, "crash", then resume to completion.
        cfg.checkpoint = Some(path.clone());
        let mut partial = cfg.clone();
        partial.rounds = 2;
        run_in_process(&partial, &NullRecorder).unwrap();
        let resumed = run_in_process(&cfg, &NullRecorder).unwrap();
        assert_eq!(
            resumed.checksum, uninterrupted.checksum,
            "resume must replay bit-identically"
        );
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(dir.join("server.ckpt.prev"));
    }

    #[test]
    fn planned_round_bytes_counts_both_directions_plus_framing() {
        let cfg = ServeConfig::smoke();
        let expected = (2 * 32 * 4 + 2 * 14) as u64 * 3;
        assert_eq!(cfg.planned_round_bytes(), expected);
    }
}
