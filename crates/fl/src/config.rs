//! Federated-learning run configuration and client-selection schedule.

use crate::adversary::AttackPlan;
use crate::chaos::FaultPlan;
use crate::resilient::RoundPolicy;
use calibre_ssl::{ProbeConfig, SslConfig};
use calibre_tensor::rng;
use serde::{Deserialize, Serialize};

/// Configuration of one federated training run.
///
/// The paper's full-scale settings (§V-A) are 100 clients, 200 rounds, 10
/// clients per round, 3 local epochs, batch size 32 (supervised) / 256
/// (SSL), personalization via 10-epoch SGD at lr 0.05. The scaled defaults
/// here preserve the ratios at simulation-friendly sizes; the experiment
/// harness can restore the paper's numbers via CLI flags.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FlConfig {
    /// Number of federated rounds.
    pub rounds: usize,
    /// Clients sampled per round.
    pub clients_per_round: usize,
    /// Local epochs per selected client per round.
    pub local_epochs: usize,
    /// Local mini-batch size.
    pub batch_size: usize,
    /// Local learning rate.
    pub local_lr: f32,
    /// Local SGD momentum.
    pub local_momentum: f32,
    /// Personalization-stage hyperparameters (paper: 10 epochs, lr 0.05,
    /// batch 32).
    pub probe: ProbeConfig,
    /// SSL architecture/hyperparameters (also fixes the supervised encoder).
    pub ssl: SslConfig,
    /// Probability that a selected client drops out of a round before
    /// reporting (device unavailability / network failure simulation).
    /// At least one client always survives per round. 0 disables dropout.
    ///
    /// This thins the *selection schedule* up front. For runtime faults
    /// (dropout after selection, stragglers, crashes, corrupted updates)
    /// use [`FlConfig::chaos`], which the resilient round executor
    /// handles per attempt.
    pub dropout_prob: f32,
    /// Deterministic runtime fault injection. The default plan is inactive
    /// and training is bit-identical to a chaos-free build.
    pub chaos: FaultPlan,
    /// Deterministic Byzantine-client simulation. The default plan is
    /// inactive and training is bit-identical to an attack-free build.
    pub attack: AttackPlan,
    /// Server-side anomaly detection and quarantine. Off by default; when
    /// on, quarantined clients stop being selected.
    pub detect: bool,
    /// Server-side failure handling: retries, minimum quorum, aggregation
    /// statistic, optional norm clipping.
    pub policy: RoundPolicy,
    /// Which round execution path the training loops take (collect vs.
    /// constant-memory streaming) and the auto-switch threshold.
    pub streaming: StreamingConfig,
    /// Run seed (client sampling, initialization, shuffling).
    pub seed: u64,
}

/// Which round execution path a training loop uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RoundPath {
    /// Collect below [`StreamingConfig::threshold`] clients per round,
    /// stream at or above it.
    Auto,
    /// Always collect-then-aggregate (full telemetry, retries, state
    /// caching) — the historical path the golden checksums pin.
    Collect,
    /// Always stream updates into a constant-memory sink (lean telemetry,
    /// no retries, fresh per-client state each round).
    Streaming,
}

impl RoundPath {
    /// Parses a `--round-path` flag value.
    ///
    /// # Errors
    ///
    /// Returns a message naming the accepted values.
    pub fn parse(value: &str) -> Result<RoundPath, String> {
        match value {
            "auto" => Ok(RoundPath::Auto),
            "collect" => Ok(RoundPath::Collect),
            "streaming" => Ok(RoundPath::Streaming),
            other => Err(format!(
                "round-path: expected auto|collect|streaming, got {other:?}"
            )),
        }
    }
}

/// How the training loops choose between the collect and streaming round
/// paths (ROADMAP item 1: stream automatically above a cohort threshold,
/// with a flag to force either path).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StreamingConfig {
    /// Forced or automatic path selection.
    pub path: RoundPath,
    /// Cohort size at which [`RoundPath::Auto`] switches to streaming.
    pub threshold: usize,
    /// Wave size (clients in flight at once) on the streaming path.
    pub wave: usize,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            path: RoundPath::Auto,
            // Defaults keep the simulation-scale runs (≤ 10 clients/round)
            // on the collect path, so the golden training checksums are
            // untouched; production cohorts cross it and stream.
            threshold: 64,
            wave: 32,
        }
    }
}

impl StreamingConfig {
    /// Whether a round with `cohort` selected clients takes the streaming
    /// path.
    pub fn use_streaming(&self, cohort: usize) -> bool {
        match self.path {
            RoundPath::Collect => false,
            RoundPath::Streaming => true,
            RoundPath::Auto => cohort >= self.threshold.max(1),
        }
    }
}

impl FlConfig {
    /// Scaled-down defaults for an observation width.
    pub fn for_input(input_dim: usize) -> Self {
        FlConfig {
            rounds: 20,
            clients_per_round: 5,
            local_epochs: 3,
            batch_size: 32,
            local_lr: 0.05,
            local_momentum: 0.9,
            probe: ProbeConfig::default(),
            ssl: SslConfig::for_input(input_dim),
            dropout_prob: 0.0,
            chaos: FaultPlan::default(),
            attack: AttackPlan::default(),
            detect: false,
            policy: RoundPolicy::default(),
            streaming: StreamingConfig::default(),
            seed: 0,
        }
    }

    /// Builds the client-selection schedule: for each round, which clients
    /// participate (sampled without replacement per round, as in the paper).
    ///
    /// With `dropout_prob > 0`, each selected client is then independently
    /// dropped with that probability (simulated unavailability), but every
    /// round retains at least one client.
    ///
    /// # Panics
    ///
    /// Panics if `num_clients == 0` or `dropout_prob` is outside `[0, 1)`.
    pub fn selection_schedule(&self, num_clients: usize) -> Vec<Vec<usize>> {
        assert!(num_clients > 0, "need at least one client");
        assert!(
            (0.0..1.0).contains(&self.dropout_prob),
            "dropout_prob must be in [0, 1), got {}",
            self.dropout_prob
        );
        let per_round = self.clients_per_round.min(num_clients);
        let mut r = rng::seeded(self.seed ^ 0x5E1E_C7ED);
        (0..self.rounds)
            .map(|_| {
                let mut selected = rng::sample_without_replacement(&mut r, num_clients, per_round);
                if self.dropout_prob > 0.0 {
                    use rand::Rng;
                    let survivors: Vec<usize> = selected
                        .iter()
                        .copied()
                        .filter(|_| r.gen::<f32>() >= self.dropout_prob)
                        .collect();
                    if !survivors.is_empty() {
                        selected = survivors;
                    } else {
                        selected.truncate(1);
                    }
                }
                selected
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_has_correct_shape() {
        let cfg = FlConfig::for_input(64);
        let schedule = cfg.selection_schedule(30);
        assert_eq!(schedule.len(), cfg.rounds);
        for round in &schedule {
            assert_eq!(round.len(), cfg.clients_per_round);
            let mut sorted = round.clone();
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), round.len(), "no repeats within a round");
            assert!(round.iter().all(|&c| c < 30));
        }
    }

    #[test]
    fn schedule_caps_at_population() {
        let mut cfg = FlConfig::for_input(64);
        cfg.clients_per_round = 50;
        let schedule = cfg.selection_schedule(3);
        assert!(schedule.iter().all(|r| r.len() == 3));
    }

    #[test]
    fn dropout_thins_rounds_but_never_empties_them() {
        let mut cfg = FlConfig::for_input(64);
        cfg.rounds = 200;
        cfg.clients_per_round = 5;
        cfg.dropout_prob = 0.5;
        let schedule = cfg.selection_schedule(30);
        let total: usize = schedule.iter().map(Vec::len).sum();
        // Expect roughly half the nominal participation.
        let nominal = 200 * 5;
        assert!(
            total < nominal * 7 / 10,
            "dropout had no effect: {total}/{nominal}"
        );
        assert!(schedule.iter().all(|round| !round.is_empty()));
    }

    #[test]
    fn zero_dropout_keeps_full_rounds() {
        let cfg = FlConfig::for_input(64);
        let schedule = cfg.selection_schedule(30);
        assert!(schedule.iter().all(|r| r.len() == cfg.clients_per_round));
    }

    #[test]
    #[should_panic(expected = "dropout_prob")]
    fn dropout_prob_of_one_is_rejected() {
        let mut cfg = FlConfig::for_input(64);
        cfg.dropout_prob = 1.0;
        cfg.selection_schedule(10);
    }

    #[test]
    fn streaming_path_selection_honors_force_and_threshold() {
        let auto = StreamingConfig::default();
        assert!(!auto.use_streaming(5), "simulation cohorts stay on collect");
        assert!(auto.use_streaming(auto.threshold));
        let collect = StreamingConfig {
            path: RoundPath::Collect,
            ..StreamingConfig::default()
        };
        assert!(!collect.use_streaming(100_000));
        let stream = StreamingConfig {
            path: RoundPath::Streaming,
            ..StreamingConfig::default()
        };
        assert!(stream.use_streaming(1));
        assert_eq!(RoundPath::parse("auto"), Ok(RoundPath::Auto));
        assert_eq!(RoundPath::parse("collect"), Ok(RoundPath::Collect));
        assert_eq!(RoundPath::parse("streaming"), Ok(RoundPath::Streaming));
        assert!(RoundPath::parse("warp").is_err());
    }

    #[test]
    fn schedule_is_deterministic_in_seed() {
        let cfg = FlConfig::for_input(64);
        assert_eq!(cfg.selection_schedule(20), cfg.selection_schedule(20));
        let mut other = cfg.clone();
        other.seed += 1;
        assert_ne!(other.selection_schedule(20), cfg.selection_schedule(20));
    }
}
