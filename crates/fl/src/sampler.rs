//! Seeded cohort sampling for massive-cohort rounds.
//!
//! At production scale only a cohort of the client population participates
//! in each round. [`Sampler`] picks that cohort deterministically: the
//! selection is a pure function of `(seed, round, population, cohort,
//! scores)`, so a replayed run — or a resumed one — selects exactly the
//! same clients regardless of when or how often `select` is called
//! (`DESIGN.md` §11).

use calibre_tensor::rng::{sample_without_replacement, seeded};
use rand::rngs::StdRng;
use rand::Rng as _;

/// Domain-separation salt so the sampler stream never collides with the
/// per-client training rngs derived from the same run seed.
const SAMPLER_SALT: u64 = 0x5A4D_504C_4552_0001;

/// The sampling strategy of a [`Sampler`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplerKind {
    /// Every client is equally likely.
    Uniform,
    /// Clients are drawn proportionally to a caller-supplied importance
    /// score (e.g. sample counts), without replacement.
    Importance,
    /// Clients are drawn proportionally to their last reported model
    /// divergence, favouring *high*-divergence clients. This is the inverse
    /// of the divergence-aware aggregation weighting
    /// ([`crate::aggregate::divergence_weights`] down-weights divergent
    /// updates when merging): sampling seeks out the clients the global
    /// model fits worst so their data is represented, while aggregation
    /// then tempers how hard each such update pulls.
    DivergenceWeighted,
}

impl SamplerKind {
    /// Parses the CLI spelling (`uniform` / `importance` / `divergence`).
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "uniform" => Some(SamplerKind::Uniform),
            "importance" => Some(SamplerKind::Importance),
            "divergence" => Some(SamplerKind::DivergenceWeighted),
            _ => None,
        }
    }

    /// The canonical CLI spelling accepted by [`SamplerKind::parse`].
    pub fn name(self) -> &'static str {
        match self {
            SamplerKind::Uniform => "uniform",
            SamplerKind::Importance => "importance",
            SamplerKind::DivergenceWeighted => "divergence",
        }
    }
}

/// A deterministic cohort sampler.
///
/// # Determinism
///
/// `select` re-derives its rng from `(seed, round)` on every call, so the
/// result is replay-identical and independent of call order: sampling
/// round 7 before round 3, or sampling round 3 twice, changes nothing.
/// Weighted modes break score ties by client index, so equal scores are
/// also deterministic.
///
/// # Examples
///
/// ```
/// use calibre_fl::sampler::{Sampler, SamplerKind};
///
/// let sampler = Sampler::new(SamplerKind::Uniform, 42);
/// let a = sampler.select(3, 1_000, 10, None);
/// let b = sampler.select(3, 1_000, 10, None);
/// assert_eq!(a, b, "same (seed, round) always selects the same cohort");
/// assert_eq!(a.len(), 10);
/// assert!(a.iter().all(|&c| c < 1_000));
/// assert_ne!(a, sampler.select(4, 1_000, 10, None), "rounds decorrelate");
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Sampler {
    kind: SamplerKind,
    seed: u64,
}

impl Sampler {
    /// A sampler with the given strategy and run seed.
    pub fn new(kind: SamplerKind, seed: u64) -> Self {
        Sampler { kind, seed }
    }

    /// The sampling strategy.
    pub fn kind(&self) -> SamplerKind {
        self.kind
    }

    fn round_rng(&self, round: usize) -> StdRng {
        // analyze:allow(lossy-cast) -- round→u64 is widening on every
        // supported target.
        seeded(self.seed ^ SAMPLER_SALT ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Selects `cohort` distinct clients from `0..population` for `round`.
    ///
    /// `scores` feeds the weighted modes: importance scores for
    /// [`SamplerKind::Importance`], last-known divergences for
    /// [`SamplerKind::DivergenceWeighted`] (indexed by client id; missing
    /// or non-positive entries fall back to a tiny uniform weight so every
    /// client stays reachable). Uniform sampling ignores it, and weighted
    /// samplers degrade to uniform when no scores exist yet — the first
    /// round of a divergence-weighted run has no divergences to use.
    ///
    /// The result is sorted ascending. A `cohort` of `population` or more
    /// selects everyone.
    pub fn select(
        &self,
        round: usize,
        population: usize,
        cohort: usize,
        scores: Option<&[f32]>,
    ) -> Vec<usize> {
        if cohort >= population {
            return (0..population).collect();
        }
        let mut rng = self.round_rng(round);
        let mut picked = match (self.kind, scores) {
            (SamplerKind::Uniform, _) | (_, None) => {
                sample_without_replacement(&mut rng, population, cohort)
            }
            (_, Some(scores)) => weighted_without_replacement(&mut rng, population, cohort, scores),
        };
        picked.sort_unstable();
        picked
    }

    /// [`Sampler::select`] over the population minus `banned` (quarantined
    /// clients from a `ReputationBook`).
    ///
    /// With an empty ban set this **delegates to `select` verbatim** —
    /// same rng stream, same result, bit for bit — so an unarmed
    /// reputation book can never perturb the golden selections. With bans,
    /// the sampler draws over the allowed-id list (re-deriving the same
    /// `(seed, round)` rng) and maps indices back to client ids; the result
    /// is sorted ascending and never contains a banned id. A ban set
    /// covering the whole population selects nobody — the caller's
    /// skipped-round path.
    pub fn select_excluding(
        &self,
        round: usize,
        population: usize,
        cohort: usize,
        scores: Option<&[f32]>,
        banned: &std::collections::BTreeSet<usize>,
    ) -> Vec<usize> {
        if banned.is_empty() {
            return self.select(round, population, cohort, scores);
        }
        let allowed: Vec<usize> = (0..population).filter(|c| !banned.contains(c)).collect();
        if cohort >= allowed.len() {
            return allowed;
        }
        let mut rng = self.round_rng(round);
        let allowed_scores: Vec<f32>;
        let scores = match scores {
            None => None,
            Some(scores) => {
                allowed_scores = allowed
                    .iter()
                    .map(|&c| scores.get(c).copied().unwrap_or(0.0))
                    .collect();
                Some(allowed_scores.as_slice())
            }
        };
        let mut picked: Vec<usize> = match (self.kind, scores) {
            (SamplerKind::Uniform, _) | (_, None) => {
                sample_without_replacement(&mut rng, allowed.len(), cohort)
            }
            (_, Some(scores)) => {
                weighted_without_replacement(&mut rng, allowed.len(), cohort, scores)
            }
        }
        .into_iter()
        .filter_map(|i| allowed.get(i).copied())
        .collect();
        picked.sort_unstable();
        picked
    }
}

/// Weighted sampling without replacement via the exponential race: client
/// `i` gets key `-ln(uᵢ)/wᵢ` and the `cohort` smallest keys win. Ties are
/// broken by client index so the result is a total order.
fn weighted_without_replacement(
    rng: &mut StdRng,
    population: usize,
    cohort: usize,
    scores: &[f32],
) -> Vec<usize> {
    const FLOOR: f32 = 1e-6;
    let mut keyed: Vec<(f32, usize)> = (0..population)
        .map(|i| {
            let w = scores.get(i).copied().unwrap_or(0.0).max(0.0) + FLOOR;
            let u: f32 = rng.gen_range(f32::EPSILON..1.0);
            (-u.ln() / w, i)
        })
        .collect();
    keyed.sort_unstable_by(|a, b| a.0.total_cmp(&b.0).then(a.1.cmp(&b.1)));
    keyed.into_iter().take(cohort).map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_selection_is_replay_identical_and_in_range() {
        let sampler = Sampler::new(SamplerKind::Uniform, 7);
        let a = sampler.select(0, 500, 50, None);
        let b = sampler.select(0, 500, 50, None);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        assert!(a.iter().all(|&c| c < 500));
    }

    #[test]
    fn selection_is_independent_of_call_order() {
        let sampler = Sampler::new(SamplerKind::Uniform, 7);
        let late_first = sampler.select(9, 100, 10, None);
        let _ = sampler.select(0, 100, 10, None);
        assert_eq!(late_first, sampler.select(9, 100, 10, None));
    }

    #[test]
    fn rounds_decorrelate() {
        let sampler = Sampler::new(SamplerKind::Uniform, 7);
        let rounds: Vec<Vec<usize>> = (0..4).map(|r| sampler.select(r, 1_000, 20, None)).collect();
        assert!(
            rounds.windows(2).any(|w| w[0] != w[1]),
            "consecutive rounds must not repeat the cohort"
        );
    }

    #[test]
    fn full_cohort_selects_everyone() {
        let sampler = Sampler::new(SamplerKind::DivergenceWeighted, 1);
        assert_eq!(sampler.select(0, 5, 5, None), vec![0, 1, 2, 3, 4]);
        assert_eq!(sampler.select(0, 5, 9, None), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn importance_sampling_favours_heavy_scores() {
        let sampler = Sampler::new(SamplerKind::Importance, 3);
        let mut scores = vec![0.01f32; 100];
        for s in scores.iter_mut().take(10) {
            *s = 100.0;
        }
        let mut heavy_hits = 0usize;
        for round in 0..50 {
            let picked = sampler.select(round, 100, 10, Some(&scores));
            heavy_hits += picked.iter().filter(|&&c| c < 10).count();
        }
        assert!(
            heavy_hits > 350,
            "heavy clients should dominate the cohort, got {heavy_hits}/500"
        );
    }

    #[test]
    fn divergence_weighted_favours_divergent_clients() {
        let sampler = Sampler::new(SamplerKind::DivergenceWeighted, 11);
        let mut divergences = vec![0.001f32; 50];
        if let Some(d) = divergences.get_mut(42) {
            *d = 50.0;
        }
        let hits = (0..40)
            .filter(|&r| sampler.select(r, 50, 5, Some(&divergences)).contains(&42))
            .count();
        assert!(hits > 30, "most divergent client picked {hits}/40 rounds");
    }

    #[test]
    fn weighted_sampler_without_scores_degrades_to_uniform() {
        let with_kind = Sampler::new(SamplerKind::Importance, 5).select(2, 200, 20, None);
        let uniform = Sampler::new(SamplerKind::Uniform, 5).select(2, 200, 20, None);
        assert_eq!(with_kind, uniform);
    }

    #[test]
    fn empty_cohort_selects_nobody() {
        for kind in [
            SamplerKind::Uniform,
            SamplerKind::Importance,
            SamplerKind::DivergenceWeighted,
        ] {
            let sampler = Sampler::new(kind, 9);
            assert!(sampler.select(0, 100, 0, None).is_empty());
            assert!(sampler.select(3, 100, 0, Some(&[1.0; 100])).is_empty());
        }
    }

    #[test]
    fn empty_population_selects_nobody() {
        let sampler = Sampler::new(SamplerKind::Uniform, 9);
        assert!(sampler.select(0, 0, 0, None).is_empty());
        assert!(sampler.select(0, 0, 10, None).is_empty());
    }

    #[test]
    fn fraction_rounding_to_zero_clients_is_an_empty_round() {
        // A 0.4% participation fraction of a 100-client population truncates
        // to a cohort of zero — the round must come back empty, not panic.
        let population = 100usize;
        // analyze:allow(lossy-cast) -- test-scale populations only.
        let cohort = (population as f32 * 0.004) as usize;
        assert_eq!(cohort, 0);
        let sampler = Sampler::new(SamplerKind::Uniform, 21);
        assert!(sampler.select(0, population, cohort, None).is_empty());
    }

    #[test]
    fn fraction_of_one_selects_the_whole_population() {
        let population = 37usize;
        // analyze:allow(lossy-cast) -- test-scale populations only.
        let cohort = (population as f32 * 1.0) as usize;
        let sampler = Sampler::new(SamplerKind::Importance, 21);
        let picked = sampler.select(5, population, cohort, Some(&vec![2.0; population]));
        assert_eq!(picked, (0..population).collect::<Vec<_>>());
    }

    #[test]
    fn all_zero_weights_still_fill_the_cohort_deterministically() {
        // Zero (and negative) scores sum to nothing; the exponential-race
        // floor keeps every client reachable instead of dividing by zero.
        let zeros = vec![0.0f32; 60];
        let sampler = Sampler::new(SamplerKind::Importance, 13);
        let a = sampler.select(2, 60, 12, Some(&zeros));
        let b = sampler.select(2, 60, 12, Some(&zeros));
        assert_eq!(a, b, "zero weights must still be replay-identical");
        assert_eq!(a.len(), 12);
        assert!(a.windows(2).all(|w| w[0] < w[1]), "sorted and distinct");
        assert!(a.iter().all(|&c| c < 60));

        let negative = vec![-3.0f32; 60];
        let c = sampler.select(2, 60, 12, Some(&negative));
        assert_eq!(a, c, "negative scores clamp to the same floor as zeros");
        assert!(a.iter().all(|&i| i < 60));
    }

    #[test]
    fn select_excluding_with_no_bans_is_bit_identical_to_select() {
        use std::collections::BTreeSet;
        let empty = BTreeSet::new();
        for kind in [
            SamplerKind::Uniform,
            SamplerKind::Importance,
            SamplerKind::DivergenceWeighted,
        ] {
            let sampler = Sampler::new(kind, 17);
            let scores = vec![1.5f32; 80];
            for round in 0..5 {
                assert_eq!(
                    sampler.select_excluding(round, 80, 12, Some(&scores), &empty),
                    sampler.select(round, 80, 12, Some(&scores)),
                    "an empty ban set must not perturb selection"
                );
                assert_eq!(
                    sampler.select_excluding(round, 80, 12, None, &empty),
                    sampler.select(round, 80, 12, None),
                );
            }
        }
    }

    #[test]
    fn select_excluding_never_draws_banned_clients() {
        use std::collections::BTreeSet;
        let banned: BTreeSet<usize> = [3, 7, 11, 42].into_iter().collect();
        let sampler = Sampler::new(SamplerKind::Uniform, 23);
        for round in 0..10 {
            let picked = sampler.select_excluding(round, 50, 20, None, &banned);
            assert_eq!(picked.len(), 20);
            assert!(picked.windows(2).all(|w| w[0] < w[1]), "sorted, distinct");
            assert!(
                picked.iter().all(|c| !banned.contains(c)),
                "banned client drawn in round {round}: {picked:?}"
            );
        }
        // Replay-identical under bans too.
        assert_eq!(
            sampler.select_excluding(4, 50, 20, None, &banned),
            sampler.select_excluding(4, 50, 20, None, &banned),
        );
    }

    #[test]
    fn select_excluding_everyone_banned_is_an_empty_round() {
        use std::collections::BTreeSet;
        let everyone: BTreeSet<usize> = (0..10).collect();
        let sampler = Sampler::new(SamplerKind::Uniform, 5);
        assert!(sampler
            .select_excluding(0, 10, 4, None, &everyone)
            .is_empty());
        // Bans shrinking the population below the cohort select all survivors.
        let most: BTreeSet<usize> = (0..8).collect();
        assert_eq!(sampler.select_excluding(0, 10, 4, None, &most), vec![8, 9]);
    }

    #[test]
    fn select_excluding_ban_set_larger_than_population_is_safe() {
        use std::collections::BTreeSet;
        let sampler = Sampler::new(SamplerKind::Uniform, 9);
        // A ban set strictly larger than the population (superset of every
        // id plus ids that never existed) selects nobody, without panics.
        let superset: BTreeSet<usize> = (0..40).collect();
        assert!(sampler
            .select_excluding(1, 10, 4, None, &superset)
            .is_empty());
        // Bans naming only out-of-range ids leave everyone drawable and
        // never leak a nonexistent client into the cohort.
        let out_of_range: BTreeSet<usize> = (100..140).collect();
        let picked = sampler.select_excluding(1, 10, 4, None, &out_of_range);
        assert_eq!(picked.len(), 4);
        assert!(picked.iter().all(|&c| c < 10), "{picked:?}");
    }

    #[test]
    fn quarantine_can_empty_a_round_below_quorum() {
        use crate::adversary::ReputationBook;
        // A book that has quarantined 9 of 10 clients: selection shrinks to
        // the lone survivor, below any sensible quorum — the caller's
        // skipped-round path, never a panic.
        let mut lines = String::from("reputation 9\n");
        for client in 0..9 {
            lines.push_str(&format!("rep {client} 40800000 3 1\n"));
        }
        let book = ReputationBook::parse_checkpoint_lines(lines.lines().peekable())
            .expect("checkpoint lines parse");
        let banned = book.quarantined();
        assert_eq!(banned.len(), 9);
        let sampler = Sampler::new(SamplerKind::Uniform, 31);
        let picked = sampler.select_excluding(0, 10, 4, None, &banned);
        assert_eq!(picked, vec![9], "only the unquarantined client survives");
        let min_quorum = 3;
        assert!(
            picked.len() < min_quorum,
            "a quorum gate must now skip the round"
        );
        // Quarantining the survivor too empties the round entirely.
        let mut all = banned;
        all.insert(9);
        assert!(sampler.select_excluding(0, 10, 4, None, &all).is_empty());
    }

    #[test]
    fn selection_with_a_nonempty_book_is_replay_identical() {
        use crate::adversary::ReputationBook;
        let lines = "reputation 3\nrep 2 40a00000 3 1\nrep 5 40f00000 4 1\nrep 8 3f000000 1 0\n";
        let book = ReputationBook::parse_checkpoint_lines(lines.lines().peekable())
            .expect("checkpoint lines parse");
        let banned = book.quarantined();
        assert_eq!(banned.len(), 2, "the unquarantined entry must not ban");
        for kind in [
            SamplerKind::Uniform,
            SamplerKind::Importance,
            SamplerKind::DivergenceWeighted,
        ] {
            let sampler = Sampler::new(kind, 13);
            let scores = vec![0.5f32; 30];
            for round in 0..6 {
                let a = sampler.select_excluding(round, 30, 8, Some(&scores), &banned);
                let b = sampler.select_excluding(round, 30, 8, Some(&scores), &banned);
                assert_eq!(a, b, "replay diverged at round {round} ({kind:?})");
                assert!(a.iter().all(|c| !banned.contains(c)), "{a:?}");
                // A book rebuilt from its own checkpoint drives the exact
                // same selection.
                let replayed = ReputationBook::parse_checkpoint_lines(
                    book.to_checkpoint_lines().lines().peekable(),
                )
                .expect("round-tripped book parses");
                assert_eq!(
                    sampler.select_excluding(round, 30, 8, Some(&scores), &replayed.quarantined()),
                    a
                );
            }
        }
    }

    #[test]
    fn kind_parse_round_trips() {
        for kind in [
            SamplerKind::Uniform,
            SamplerKind::Importance,
            SamplerKind::DivergenceWeighted,
        ] {
            assert_eq!(SamplerKind::parse(kind.name()), Some(kind));
        }
        assert_eq!(SamplerKind::parse("magic"), None);
    }
}
