//! Resilient round execution: bounded retries, update validation, and
//! minimum-quorum partial aggregation over a chaos-injected cohort.
//!
//! The federated round loops ([`crate::pfl_ssl`], and the Calibre framework
//! in the `calibre` crate) funnel their select → local-update → aggregate
//! cycle through [`run_round_resilient`], which:
//!
//! 1. asks the optional [`FaultInjector`] what goes wrong for each
//!    `(round, client, attempt)` cell — dropout, straggle, mid-update
//!    panic, or update corruption;
//! 2. runs the surviving clients through
//!    [`crate::parallel::parallel_map_resilient`], so a panicking worker
//!    (injected *or* genuine) is isolated to its slot instead of tearing
//!    down the run;
//! 3. retries panicked clients up to [`RoundPolicy::max_retries`] times
//!    with freshly created state (the old state died in the unwind);
//! 4. validates every reported update ([`validate_update`]): non-finite
//!    updates are rejected for the round, and [`RoundPolicy::clip_norm`]
//!    optionally caps each update's L2 norm;
//! 5. aggregates the accepted updates with the configured [`Aggregator`]
//!    if at least [`RoundPolicy::min_quorum`] survived, re-normalizing
//!    weights over the survivors; otherwise the round is *skipped* —
//!    reported via telemetry, never a panic.
//!
//! With no injector and the default policy the executor is bit-identical
//! to the historical nominal path: same state creation order, same worker
//! closure, same [`weighted_average_refs`](crate::aggregate::weighted_average_refs)
//! call over the same slot-ordered updates — the golden-checksum tests pin
//! this.
//!
//! Telemetry stays count-stable for nominal rounds: `Fault` and
//! `RoundResilience` events are emitted only when something non-nominal
//! actually happened.

use crate::aggregate::{
    aggregate_robust, clip_norm, validate_update, Aggregator, StreamingWeightedSink, UpdateSink,
};
use crate::chaos::{panic_injected, ClientFault, FaultInjector};
use crate::parallel::parallel_map_resilient;
use calibre_telemetry::{metrics, Recorder};
use serde::{Deserialize, Serialize};
use std::time::Duration;

/// How the server treats failures within one round.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RoundPolicy {
    /// Minimum number of accepted client updates required to aggregate;
    /// below this the round is skipped (global model unchanged). Values
    /// below 1 behave as 1.
    pub min_quorum: usize,
    /// How many times a panicked client is re-run within the round.
    pub max_retries: usize,
    /// Aggregation statistic applied to the accepted updates.
    pub aggregator: Aggregator,
    /// Optional L2 norm cap applied to each accepted update.
    pub clip_norm: Option<f32>,
}

impl Default for RoundPolicy {
    fn default() -> Self {
        RoundPolicy {
            min_quorum: 1,
            max_retries: 1,
            aggregator: Aggregator::WeightedAverage,
            clip_norm: None,
        }
    }
}

/// What one client's local update hands back to the server.
#[derive(Debug)]
pub struct ClientOutcome<S, P> {
    /// The client's persistent state, returned to the server-side cache.
    pub state: S,
    /// The flattened parameters the client reports.
    pub flat: Vec<f32>,
    /// The client's sample count (basis for FedAvg weighting).
    pub count: usize,
    /// Method-specific payload (losses, divergence, ...).
    pub payload: P,
}

/// An accepted (validated) client update, in selection-slot order.
#[derive(Debug)]
pub struct AcceptedClient<S, P> {
    /// Index into the round's selection (stable ordering key).
    pub slot: usize,
    /// Client id.
    pub id: usize,
    /// Persistent client state to return to the cache.
    pub state: S,
    /// Validated (possibly norm-clipped) flattened parameters.
    pub flat: Vec<f32>,
    /// Sample count.
    pub count: usize,
    /// Method-specific payload.
    pub payload: P,
    /// Wall-clock of the accepted attempt, measured in the worker.
    pub wall: Duration,
}

/// One fault observed (injected or genuine) during a round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultRecord {
    /// Client the fault hit.
    pub client: usize,
    /// Delivery attempt (0 = first try).
    pub attempt: usize,
    /// Telemetry tag (`"dropout"`, `"panic"`, `"corrupt_nan"`, ...).
    pub kind: &'static str,
    /// Whether the resilient layer detected and handled it (vs. a silent
    /// corruption that reached the aggregator).
    pub detected: bool,
}

/// Deterministic accounting of everything non-nominal in one round.
#[derive(Debug, Clone, Default)]
pub struct RoundReport {
    /// Faults the injector fired this round (all attempts).
    pub injected: usize,
    /// Faults the resilient layer detected (dropouts, panics, rejected or
    /// clipped updates) — includes genuine, non-injected panics.
    pub detected: usize,
    /// Client re-runs after a panic.
    pub retries: usize,
    /// Number of accepted updates (the achieved quorum).
    pub quorum: usize,
    /// Whether the round was skipped for missing the minimum quorum.
    pub skipped: bool,
    /// Sum of the aggregation weights over accepted clients.
    pub weight_sum: f32,
    /// Every fault observed, in deterministic (attempt, slot) order.
    pub faults: Vec<FaultRecord>,
}

impl RoundReport {
    /// Whether the round was completely nominal (no faults, no retries,
    /// full participation) — in which case no resilience telemetry is
    /// emitted and the round is bit-identical to the historical path.
    pub fn is_nominal(&self, selected: usize) -> bool {
        self.faults.is_empty() && !self.skipped && self.retries == 0 && self.quorum == selected
    }
}

/// Result of one resilient round.
#[derive(Debug)]
pub struct ResilientRound<S, P> {
    /// Accepted client updates in selection-slot order.
    pub accepted: Vec<AcceptedClient<S, P>>,
    /// States of clients that ran but whose update was rejected by
    /// validation — returned so the server-side cache keeps them.
    pub rejected_states: Vec<(usize, S)>,
    /// Aggregated parameters, or `None` when the round was skipped.
    pub aggregated: Option<Vec<f32>>,
    /// Fault/retry/quorum accounting.
    pub report: RoundReport,
}

/// Executes one federated round under faults.
///
/// - `selected` — the round's client selection, in schedule order.
/// - `make_state` — takes (or lazily creates) a client's persistent state;
///   called again with the same id when a panicked client is retried (its
///   previous state died in the unwind).
/// - `work` — the local update: `(client_id, state) -> ClientOutcome`. Runs
///   on worker threads; panics are caught and isolated per slot.
/// - `weights_of` — maps the accepted cohort to aggregation weights (e.g.
///   sample counts, optionally modulated by divergence). Only called when
///   at least one update was accepted.
///
/// Fault and resilience telemetry is emitted on the calling thread after
/// all attempts complete, and only when the round was non-nominal.
#[allow(clippy::too_many_arguments)] // one entry point for the whole round
pub fn run_round_resilient<S, P, MS, W, WF>(
    round: usize,
    selected: &[usize],
    mut make_state: MS,
    work: W,
    weights_of: WF,
    injector: Option<&FaultInjector>,
    policy: &RoundPolicy,
    recorder: &dyn Recorder,
) -> ResilientRound<S, P>
where
    S: Send,
    P: Send,
    MS: FnMut(usize) -> S,
    W: Fn(usize, S) -> ClientOutcome<S, P> + Sync,
    WF: FnOnce(&[AcceptedClient<S, P>]) -> Vec<f32>,
{
    let mut report = RoundReport::default();
    let mut accepted: Vec<AcceptedClient<S, P>> = Vec::with_capacity(selected.len());
    let mut rejected_states: Vec<(usize, S)> = Vec::new();
    // (slot, id) pairs still owed an attempt.
    let mut pending: Vec<(usize, usize)> = selected.iter().copied().enumerate().collect();

    let mut attempt = 0;
    while !pending.is_empty() && attempt <= policy.max_retries {
        let mut meta: Vec<(usize, usize, Option<ClientFault>)> = Vec::new();
        let mut wave: Vec<(usize, usize, Option<ClientFault>, S)> = Vec::new();
        for &(slot, id) in &pending {
            let fault = injector.and_then(|inj| inj.decide(round, id, attempt));
            if fault.is_some() {
                report.injected += 1;
            }
            if fault == Some(ClientFault::Dropout) {
                // The client never runs: its cached state is untouched.
                report.detected += 1;
                report.faults.push(FaultRecord {
                    client: id,
                    attempt,
                    kind: "dropout",
                    detected: true,
                });
                continue;
            }
            meta.push((slot, id, fault));
            wave.push((slot, id, fault, make_state(id)));
        }
        pending.clear();

        let results = parallel_map_resilient(wave, |(_slot, id, fault, state)| {
            if let Some(ClientFault::Straggle { delay_ms }) = fault {
                std::thread::sleep(Duration::from_millis(delay_ms));
            }
            if fault == Some(ClientFault::PanicMidUpdate) {
                panic_injected(round, id);
            }
            work(id, state)
        });

        for ((slot, id, fault), (result, wall)) in meta.into_iter().zip(results) {
            match result {
                Err(_panic) => {
                    // Injected or genuine — either way the state is gone.
                    report.detected += 1;
                    report.faults.push(FaultRecord {
                        client: id,
                        attempt,
                        kind: "panic",
                        detected: true,
                    });
                    if attempt < policy.max_retries {
                        report.retries += 1;
                        pending.push((slot, id));
                    }
                }
                Ok(mut outcome) => {
                    if let Some(ClientFault::Corrupt(kind)) = fault {
                        injector
                            // analyze:allow(no-expect) -- `fault` is Some
                            // only when an injector produced it above.
                            .expect("corruption faults only come from an injector")
                            .corrupt(round, id, attempt, kind, &mut outcome.flat);
                    }
                    if !validate_update(&outcome.flat) {
                        // Non-finite update: terminal for the round, but the
                        // client's (finite) training state is kept.
                        report.detected += 1;
                        report.faults.push(FaultRecord {
                            client: id,
                            attempt,
                            kind: match fault {
                                Some(f) => f.kind_tag(),
                                None => "invalid",
                            },
                            detected: true,
                        });
                        rejected_states.push((id, outcome.state));
                        continue;
                    }
                    let clipped = policy
                        .clip_norm
                        .map(|m| clip_norm(&mut outcome.flat, m))
                        .unwrap_or(false);
                    match fault {
                        Some(ClientFault::Straggle { .. }) => report.faults.push(FaultRecord {
                            client: id,
                            attempt,
                            kind: "straggle",
                            detected: false,
                        }),
                        Some(ClientFault::Corrupt(kind)) => {
                            // Finite corruption: detected only if the norm
                            // clip actually bit.
                            if clipped {
                                report.detected += 1;
                            }
                            report.faults.push(FaultRecord {
                                client: id,
                                attempt,
                                kind: kind.kind_tag(),
                                detected: clipped,
                            });
                        }
                        _ => {}
                    }
                    accepted.push(AcceptedClient {
                        slot,
                        id,
                        state: outcome.state,
                        flat: outcome.flat,
                        count: outcome.count,
                        payload: outcome.payload,
                        wall,
                    });
                }
            }
        }
        attempt += 1;
    }

    accepted.sort_by_key(|a| a.slot);
    report.quorum = accepted.len();
    let min_quorum = policy.min_quorum.max(1);
    let aggregated = if accepted.len() >= min_quorum {
        let weights = weights_of(&accepted);
        report.weight_sum = weights.iter().sum();
        // Accepted updates are finite and same-shaped, so this only fails
        // on a caller bug (weight count); degrade to a skipped round rather
        // than panicking mid-training.
        aggregate_accepted(policy.aggregator, &accepted, &weights)
    } else {
        None
    };
    report.skipped = aggregated.is_none();

    // Live-export counters (inert unless the metrics registry is enabled).
    // Guarded so nominal rounds create no fault series at all.
    if report.injected > 0 {
        metrics::counter_add("calibre_faults_injected_total", &[], report.injected as u64);
    }
    if report.detected > 0 {
        metrics::counter_add("calibre_faults_detected_total", &[], report.detected as u64);
    }
    if report.retries > 0 {
        metrics::counter_add("calibre_retries_total", &[], report.retries as u64);
    }

    if !report.is_nominal(selected.len()) {
        for f in &report.faults {
            recorder.fault(round, f.client, f.attempt, f.kind, f.detected);
        }
        recorder.round_resilience(
            round,
            report.injected,
            report.detected,
            report.retries,
            report.quorum,
            report.skipped,
        );
    }

    ResilientRound {
        accepted,
        rejected_states,
        aggregated,
        report,
    }
}

/// Aggregates the accepted cohort. The weighted average streams each
/// update straight out of its [`AcceptedClient`] through a
/// [`StreamingWeightedSink`] — no intermediate `Vec` of borrows, and
/// bit-identical to the historical
/// [`weighted_average_refs`](crate::aggregate::weighted_average_refs) call
/// because the sink applies the same total-first, slot-ordered arithmetic.
/// The robust statistics need all per-coordinate columns at once, so they
/// keep the collected-slice path.
fn aggregate_accepted<S, P>(
    aggregator: Aggregator,
    accepted: &[AcceptedClient<S, P>],
    weights: &[f32],
) -> Option<Vec<f32>> {
    match aggregator {
        Aggregator::WeightedAverage => {
            let n = accepted.len();
            if n == 0 || weights.len() != n {
                return None;
            }
            let dim = accepted.first().map(|a| a.flat.len()).unwrap_or(0);
            let span = calibre_telemetry::span("aggregate");
            span.add_items(n as u64);
            span.add_bytes((n * dim * std::mem::size_of::<f32>()) as u64);
            let total: f32 = weights.iter().sum();
            let mut sink = StreamingWeightedSink::for_cohort(total, n);
            for (a, &w) in accepted.iter().zip(weights.iter()) {
                sink.fold(a.slot, &a.flat, w).ok()?;
            }
            sink.finish().ok()
        }
        _ => {
            let flats: Vec<&[f32]> = accepted.iter().map(|a| a.flat.as_slice()).collect();
            aggregate_robust(aggregator, &flats, weights).ok()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::FaultPlan;
    use calibre_telemetry::{Event, MemoryRecorder, NullRecorder};

    /// A toy "client": state is its id, update is a constant vector scaled
    /// by (id + 1); weight 1 each.
    fn toy_work(id: usize, state: u64) -> ClientOutcome<u64, f32> {
        let v = (id + 1) as f32;
        ClientOutcome {
            state,
            flat: vec![v; 4],
            count: 1,
            payload: v,
        }
    }

    fn uniform_weights<S, P>(accepted: &[AcceptedClient<S, P>]) -> Vec<f32> {
        vec![1.0; accepted.len()]
    }

    #[test]
    fn nominal_round_accepts_everyone_and_averages() {
        let selected = [0usize, 1, 2];
        let out = run_round_resilient(
            0,
            &selected,
            |id| id as u64,
            toy_work,
            uniform_weights,
            None,
            &RoundPolicy::default(),
            &NullRecorder,
        );
        assert_eq!(out.accepted.len(), 3);
        assert!(out.report.is_nominal(3));
        assert_eq!(out.report.quorum, 3);
        let agg = out.aggregated.unwrap();
        for v in &agg {
            assert!((v - 2.0).abs() < 1e-6, "mean of 1,2,3 is 2, got {v}");
        }
        // Accepted kept selection order.
        let ids: Vec<usize> = out.accepted.iter().map(|a| a.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn nominal_round_emits_no_resilience_telemetry() {
        let rec = MemoryRecorder::new();
        run_round_resilient(
            0,
            &[0usize, 1],
            |id| id as u64,
            toy_work,
            uniform_weights,
            None,
            &RoundPolicy::default(),
            &rec,
        );
        assert!(rec.events().is_empty(), "{:#?}", rec.events());
    }

    #[test]
    fn guaranteed_panics_exhaust_retries_and_skip_the_round() {
        let plan = FaultPlan {
            panic_prob: 1.0,
            ..FaultPlan::default()
        };
        let injector = FaultInjector::new(plan);
        let rec = MemoryRecorder::new();
        let policy = RoundPolicy {
            max_retries: 1,
            ..RoundPolicy::default()
        };
        let out = run_round_resilient(
            0,
            &[0usize, 1, 2],
            |id| id as u64,
            toy_work,
            uniform_weights,
            Some(&injector),
            &policy,
            &rec,
        );
        assert!(out.accepted.is_empty());
        assert!(out.aggregated.is_none());
        assert!(out.report.skipped);
        assert_eq!(out.report.retries, 3, "each client retried once");
        assert_eq!(out.report.injected, 6, "3 clients x 2 attempts");
        // Telemetry: 6 fault events + 1 round_resilience.
        let events = rec.events();
        assert_eq!(events.len(), 7, "{events:#?}");
        assert!(matches!(
            events.last().unwrap(),
            Event::RoundResilience { skipped: true, .. }
        ));
    }

    #[test]
    fn genuine_panics_are_retried_with_fresh_state() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let out = run_round_resilient(
            0,
            &[0usize, 1],
            |id| id as u64,
            |id, state| {
                if id == 1 && calls.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("flaky client");
                }
                toy_work(id, state)
            },
            uniform_weights,
            None,
            &RoundPolicy::default(),
            &NullRecorder,
        );
        assert_eq!(out.report.retries, 1);
        assert_eq!(out.report.injected, 0, "genuine panic is not injected");
        assert_eq!(out.report.detected, 1);
        assert_eq!(out.accepted.len(), 2, "retry succeeded");
        assert_eq!(out.accepted[1].id, 1);
    }

    #[test]
    fn non_finite_updates_are_rejected_but_state_survives() {
        let out = run_round_resilient(
            3,
            &[0usize, 1, 2],
            |id| id as u64,
            |id, state| {
                let mut o = toy_work(id, state);
                if id == 1 {
                    o.flat[2] = f32::NAN;
                }
                o
            },
            uniform_weights,
            None,
            &RoundPolicy::default(),
            &NullRecorder,
        );
        assert_eq!(out.accepted.len(), 2);
        assert_eq!(out.rejected_states, vec![(1, 1u64)]);
        assert_eq!(out.report.quorum, 2);
        assert!(!out.report.skipped, "quorum of 1 still met");
        let agg = out.aggregated.unwrap();
        assert!(agg.iter().all(|v| v.is_finite()));
        for v in &agg {
            assert!((v - 2.0).abs() < 1e-6, "mean of 1,3 is 2, got {v}");
        }
    }

    #[test]
    fn missing_quorum_skips_without_panicking() {
        let plan = FaultPlan {
            drop_prob: 1.0,
            ..FaultPlan::default()
        };
        let injector = FaultInjector::new(plan);
        let out = run_round_resilient(
            0,
            &[4usize, 5],
            |id| id as u64,
            toy_work,
            uniform_weights,
            Some(&injector),
            &RoundPolicy {
                min_quorum: 2,
                ..RoundPolicy::default()
            },
            &NullRecorder,
        );
        assert!(out.aggregated.is_none());
        assert!(out.report.skipped);
        assert_eq!(out.report.quorum, 0);
        assert!(out
            .report
            .faults
            .iter()
            .all(|f| f.kind == "dropout" && f.detected));
    }

    #[test]
    fn min_quorum_gates_partial_aggregation() {
        // One NaN client out of three: quorum 3 cannot be met.
        let out = run_round_resilient(
            0,
            &[0usize, 1, 2],
            |id| id as u64,
            |id, state| {
                let mut o = toy_work(id, state);
                if id == 0 {
                    o.flat[0] = f32::INFINITY;
                }
                o
            },
            uniform_weights,
            None,
            &RoundPolicy {
                min_quorum: 3,
                ..RoundPolicy::default()
            },
            &NullRecorder,
        );
        assert_eq!(out.report.quorum, 2);
        assert!(out.report.skipped);
        assert!(out.aggregated.is_none());
    }

    #[test]
    fn clip_norm_caps_blown_up_updates() {
        let out = run_round_resilient(
            0,
            &[0usize, 1],
            |id| id as u64,
            |id, state| {
                let mut o = toy_work(id, state);
                if id == 1 {
                    for v in o.flat.iter_mut() {
                        *v *= 1e6;
                    }
                }
                o
            },
            uniform_weights,
            None,
            &RoundPolicy {
                clip_norm: Some(10.0),
                ..RoundPolicy::default()
            },
            &NullRecorder,
        );
        let agg = out.aggregated.unwrap();
        let norm: f32 = agg.iter().map(|v| v * v).sum::<f32>().sqrt();
        assert!(norm < 10.0, "aggregate norm {norm} should be bounded");
    }

    #[test]
    fn median_aggregation_shrugs_off_a_sign_flip() {
        let policy = RoundPolicy {
            aggregator: Aggregator::CoordinateMedian,
            ..RoundPolicy::default()
        };
        let out = run_round_resilient(
            0,
            &[0usize, 1, 2],
            |id| id as u64,
            |id, state| {
                let mut o = toy_work(id, state);
                o.flat = vec![1.0; 4];
                if id == 2 {
                    for v in o.flat.iter_mut() {
                        *v = -1e6;
                    }
                }
                o
            },
            uniform_weights,
            None,
            &policy,
            &NullRecorder,
        );
        let agg = out.aggregated.unwrap();
        for v in &agg {
            assert!((v - 1.0).abs() < 1e-6, "median ignores the outlier: {v}");
        }
    }
}
