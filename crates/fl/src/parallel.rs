//! Parallel execution of independent client updates.
//!
//! Within a federated round the selected clients are independent, so their
//! local updates run on `std::thread` scoped threads. The helpers preserve
//! input order in their output, which the aggregation code relies on.
//!
//! # Chunking and load imbalance
//!
//! Work is split into *contiguous chunks* of `ceil(items / threads)` items,
//! one chunk per thread. This costs nothing in coordination — no work queue,
//! no atomics on the hot path — but it load-balances poorly when per-item
//! cost is skewed: a thread whose chunk holds the slowest clients (e.g. the
//! ones with the largest local datasets) finishes last while the others sit
//! idle. That tradeoff is acceptable here because a round's selected clients
//! have similar sample budgets by construction; if a future workload breaks
//! that assumption (say, clients with order-of-magnitude different data
//! sizes), switch to work stealing or size-sorted round-robin assignment
//! before tuning anything else. The [`parallel_map_owned_timed`] variant
//! exposes exactly the per-item wall-clock needed to diagnose such skew.
//!
//! # Workspaces are per worker
//!
//! The local-update closures each create their own
//! [`calibre_tensor::StepArena`], so every worker thread owns a private
//! buffer pool — recycled tape storage never crosses threads and needs no
//! locking. The only shared execution state is the process-wide backend
//! selection (`calibre_tensor::backend::global_backend`), which workers read
//! through an `Arc` at workspace creation.

use std::num::NonZeroUsize;
// analyze:allow(wallclock) -- Duration/Instant feed per-client telemetry
// only; scheduling and aggregation stay clock-free.
use std::time::{Duration, Instant};

/// Maps `f` over `items` in parallel, preserving order.
///
/// The closure receives the item by reference and must be `Sync`; results
/// are collected in input order. Uses up to `available_parallelism` threads
/// (capped by the item count); falls back to sequential execution for a
/// single item.
///
/// # Examples
///
/// ```
/// use calibre_fl::parallel::parallel_map;
///
/// let squares = parallel_map(&[1, 2, 3, 4], |&x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = worker_count(items.len());
    if threads <= 1 || items.len() == 1 {
        return items.iter().map(&f).collect();
    }

    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let chunk_size = items.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (item_chunk, result_chunk) in
            items.chunks(chunk_size).zip(results.chunks_mut(chunk_size))
        {
            let f = &f;
            scope.spawn(move || {
                for (item, slot) in item_chunk.iter().zip(result_chunk.iter_mut()) {
                    let _span = calibre_telemetry::span("client");
                    *slot = Some(f(item));
                }
            });
        }
    });
    results
        .into_iter()
        // analyze:allow(no-expect) -- the scoped threads fill every slot
        // before `scope` returns; an empty slot is impossible.
        .map(|r| r.expect("every slot filled by its chunk thread"))
        .collect()
}

/// Like [`parallel_map`], but consumes the items — used when each client's
/// persistent state (SSL networks, optimizers, queues) must move into its
/// update closure and back out through the result.
pub fn parallel_map_owned<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    parallel_map_owned_timed(items, f)
        .into_iter()
        .map(|(r, _)| r)
        .collect()
}

/// Like [`parallel_map_owned`], but additionally reports each item's
/// wall-clock execution time, measured *inside* its worker thread.
///
/// This is the round-telemetry hook: per-client timings taken outside the
/// parallel section would measure the whole round, not the client, so the
/// clock must run where the work runs. Results stay in input order.
pub fn parallel_map_owned_timed<T, R, F>(items: Vec<T>, f: F) -> Vec<(R, Duration)>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    // The span wraps the same region the per-item clock measures, from
    // inside the worker thread — so parallel clients land on distinct tids.
    let timed = |f: &F, item: T| {
        let _span = calibre_telemetry::span("client");
        let start = Instant::now(); // analyze:allow(wallclock) -- telemetry only
        let out = f(item);
        (out, start.elapsed())
    };
    let threads = worker_count(items.len());
    if threads <= 1 || items.len() == 1 {
        return items.into_iter().map(|item| timed(&f, item)).collect();
    }
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut results: Vec<Option<(R, Duration)>> = (0..slots.len()).map(|_| None).collect();
    let chunk_size = slots.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in slots
            .chunks_mut(chunk_size)
            .zip(results.chunks_mut(chunk_size))
        {
            let f = &f;
            let timed = &timed;
            scope.spawn(move || {
                for (slot, out) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                    // analyze:allow(no-expect) -- slots are populated just
                    // before the scope spawns and taken exactly once.
                    let item = slot.take().expect("slot filled before scope");
                    *out = Some(timed(f, item));
                }
            });
        }
    });
    results
        .into_iter()
        // analyze:allow(no-expect) -- the scoped threads fill every slot
        // before `scope` returns; an empty slot is impossible.
        .map(|r| r.expect("every slot filled by its chunk thread"))
        .collect()
}

/// A panic caught from one client's worker closure.
///
/// Produced by [`parallel_map_resilient`]; the payload is stringified so it
/// can cross threads and land in telemetry without generic baggage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClientPanic {
    /// The panic payload, if it was a `&str` or `String` (the usual case);
    /// `"<non-string panic payload>"` otherwise.
    pub message: String,
}

impl std::fmt::Display for ClientPanic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "client worker panicked: {}", self.message)
    }
}

impl std::error::Error for ClientPanic {}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Like [`parallel_map_owned_timed`], but a panic in one item's closure is
/// caught (`catch_unwind` around the worker body) and surfaces as an `Err`
/// in that item's slot instead of aborting the whole round.
///
/// This is the execution substrate of the resilient round executor: a
/// client crashing mid-update must cost exactly one cohort slot, never the
/// run. Results stay in input order; the per-item wall clock covers the
/// failed attempt too (crash time is still time spent).
///
/// The closure must be idempotent-safe to lose: when it panics, the moved
/// item is gone with it — retry logic has to rebuild state upstream.
///
/// # Examples
///
/// ```
/// use calibre_fl::parallel::parallel_map_resilient;
///
/// let out = parallel_map_resilient(vec![1, 2, 3], |x| {
///     if x == 2 { panic!("boom") }
///     x * 10
/// });
/// assert_eq!(out[0].0.as_ref().unwrap(), &10);
/// assert!(out[1].0.is_err());
/// assert_eq!(out[2].0.as_ref().unwrap(), &30);
/// ```
pub fn parallel_map_resilient<T, R, F>(
    items: Vec<T>,
    f: F,
) -> Vec<(Result<R, ClientPanic>, Duration)>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let guarded = |f: &F, item: T| {
        let _span = calibre_telemetry::span("client");
        let start = Instant::now(); // analyze:allow(wallclock) -- telemetry only
                                    // AssertUnwindSafe: the closure owns `item` (moved in, lost on
                                    // panic) and the shared captures are read-only (`Fn` + `Sync`), so
                                    // no observable state can be left torn by an unwind.
        let out =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(item))).map_err(|payload| {
                ClientPanic {
                    message: panic_message(payload),
                }
            });
        (out, start.elapsed())
    };
    let threads = worker_count(items.len());
    if threads <= 1 || items.len() == 1 {
        return items.into_iter().map(|item| guarded(&f, item)).collect();
    }
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut results: Vec<Option<(Result<R, ClientPanic>, Duration)>> =
        (0..slots.len()).map(|_| None).collect();
    let chunk_size = slots.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (in_chunk, out_chunk) in slots
            .chunks_mut(chunk_size)
            .zip(results.chunks_mut(chunk_size))
        {
            let f = &f;
            let guarded = &guarded;
            scope.spawn(move || {
                for (slot, out) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                    // analyze:allow(no-expect) -- slots are populated just
                    // before the scope spawns and taken exactly once.
                    let item = slot.take().expect("slot filled before scope");
                    *out = Some(guarded(f, item));
                }
            });
        }
    });
    results
        .into_iter()
        // analyze:allow(no-expect) -- the scoped threads fill every slot
        // before `scope` returns; an empty slot is impossible.
        .map(|r| r.expect("every slot filled by its chunk thread"))
        .collect()
}

/// Number of worker threads for `len` items: `available_parallelism` capped
/// by the item count.
fn worker_count(len: usize) -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn owned_variant_preserves_order_and_moves_items() {
        let items: Vec<String> = (0..50).map(|i| i.to_string()).collect();
        let out = parallel_map_owned(items, |s| format!("x{s}"));
        assert_eq!(out.len(), 50);
        assert_eq!(out[7], "x7");
    }

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let out: Vec<usize> = parallel_map(&[] as &[usize], |&i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..37).collect();
        let _ = parallel_map(&items, |_| counter.fetch_add(1, Ordering::SeqCst));
        assert_eq!(counter.load(Ordering::SeqCst), 37);
    }

    #[test]
    fn single_item_runs_sequentially() {
        let out = parallel_map(&[41usize], |&i| i + 1);
        assert_eq!(out, vec![42]);
    }

    #[test]
    fn timed_variant_measures_each_item() {
        let items: Vec<u64> = vec![1, 5, 1, 5];
        let out = parallel_map_owned_timed(items, |ms| {
            std::thread::sleep(Duration::from_millis(ms));
            ms
        });
        assert_eq!(out.len(), 4);
        for (ms, elapsed) in &out {
            assert!(
                *elapsed >= Duration::from_millis(*ms),
                "item slept {ms}ms but measured {elapsed:?}"
            );
        }
        assert_eq!(out[1].0, 5);
    }

    #[test]
    fn timed_empty_input_gives_empty_output() {
        let out: Vec<(usize, Duration)> = parallel_map_owned_timed(Vec::new(), |i: usize| i);
        assert!(out.is_empty());
    }

    #[test]
    fn resilient_map_isolates_panics_to_their_slot() {
        let items: Vec<usize> = (0..20).collect();
        let out = parallel_map_resilient(items, |i| {
            if i % 7 == 3 {
                panic!("injected failure on {i}");
            }
            i * 2
        });
        assert_eq!(out.len(), 20);
        for (i, (result, _)) in out.iter().enumerate() {
            if i % 7 == 3 {
                let err = result.as_ref().unwrap_err();
                assert!(err.message.contains("injected failure"), "{err}");
            } else {
                assert_eq!(result.as_ref().unwrap(), &(i * 2));
            }
        }
    }

    #[test]
    fn resilient_map_matches_timed_map_when_nothing_panics() {
        let items: Vec<usize> = (0..13).collect();
        let ok: Vec<usize> = parallel_map_resilient(items, |i| i + 1)
            .into_iter()
            .map(|(r, _)| r.unwrap())
            .collect();
        assert_eq!(ok, (1..14).collect::<Vec<_>>());
    }

    #[test]
    fn resilient_map_stringifies_string_panics() {
        let out = parallel_map_resilient(vec![0usize], |_| -> usize {
            panic!("{}", String::from("owned message"))
        });
        assert_eq!(out[0].0.as_ref().unwrap_err().message, "owned message");
    }

    #[test]
    fn resilient_empty_input_gives_empty_output() {
        let out: Vec<(Result<usize, ClientPanic>, Duration)> =
            parallel_map_resilient(Vec::new(), |i: usize| i);
        assert!(out.is_empty());
    }
}
