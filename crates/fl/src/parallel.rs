//! Parallel execution of independent client updates.
//!
//! Within a federated round the selected clients are independent, so their
//! local updates run on crossbeam scoped threads. The helper preserves input
//! order in its output, which the aggregation code relies on.

use std::num::NonZeroUsize;

/// Maps `f` over `items` in parallel, preserving order.
///
/// The closure receives the item by reference and must be `Sync`; results
/// are collected in input order. Uses up to `available_parallelism` threads
/// (capped by the item count); falls back to sequential execution for a
/// single item.
pub fn parallel_map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len());
    if threads <= 1 || items.len() == 1 {
        return items.iter().map(&f).collect();
    }

    let mut results: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    let chunk_size = items.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (chunk_idx, (item_chunk, result_chunk)) in items
            .chunks(chunk_size)
            .zip(results.chunks_mut(chunk_size))
            .enumerate()
        {
            let f = &f;
            let _ = chunk_idx;
            scope.spawn(move |_| {
                for (item, slot) in item_chunk.iter().zip(result_chunk.iter_mut()) {
                    *slot = Some(f(item));
                }
            });
        }
    })
    .expect("client update thread panicked");
    results
        .into_iter()
        .map(|r| r.expect("every slot filled by its chunk thread"))
        .collect()
}

/// Like [`parallel_map`], but consumes the items — used when each client's
/// persistent state (SSL networks, optimizers, queues) must move into its
/// update closure and back out through the result.
pub fn parallel_map_owned<T, R, F>(items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    if items.is_empty() {
        return Vec::new();
    }
    let threads = std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(items.len());
    if threads <= 1 || items.len() == 1 {
        return items.into_iter().map(f).collect();
    }
    let mut slots: Vec<Option<T>> = items.into_iter().map(Some).collect();
    let mut results: Vec<Option<R>> = (0..slots.len()).map(|_| None).collect();
    let chunk_size = slots.len().div_ceil(threads);
    crossbeam::thread::scope(|scope| {
        for (in_chunk, out_chunk) in slots
            .chunks_mut(chunk_size)
            .zip(results.chunks_mut(chunk_size))
        {
            let f = &f;
            scope.spawn(move |_| {
                for (slot, out) in in_chunk.iter_mut().zip(out_chunk.iter_mut()) {
                    let item = slot.take().expect("slot filled before scope");
                    *out = Some(f(item));
                }
            });
        }
    })
    .expect("client update thread panicked");
    results
        .into_iter()
        .map(|r| r.expect("every slot filled by its chunk thread"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn owned_variant_preserves_order_and_moves_items() {
        let items: Vec<String> = (0..50).map(|i| i.to_string()).collect();
        let out = parallel_map_owned(items, |s| format!("x{s}"));
        assert_eq!(out.len(), 50);
        assert_eq!(out[7], "x7");
    }

    #[test]
    fn preserves_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = parallel_map(&items, |&i| i * 2);
        assert_eq!(out, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_input_gives_empty_output() {
        let out: Vec<usize> = parallel_map(&[] as &[usize], |&i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let counter = AtomicUsize::new(0);
        let items: Vec<usize> = (0..37).collect();
        let _ = parallel_map(&items, |_| counter.fetch_add(1, Ordering::SeqCst));
        assert_eq!(counter.load(Ordering::SeqCst), 37);
    }

    #[test]
    fn single_item_runs_sequentially() {
        let out = parallel_map(&[41usize], |&i| i + 1);
        assert_eq!(out, vec![42]);
    }
}
