//! # calibre-fl
//!
//! Federated-learning runtime, aggregation strategies and the full baseline
//! zoo used in the Calibre evaluation (ICDCS 2024).
//!
//! **Role in Algorithm 1:** the orchestrator of both stages. The federated
//! *training* stage is the select → broadcast → local-update → aggregate
//! round loop ([`pfl_ssl`] for the SSL chassis, [`baselines`] for the
//! supervised zoo); the *personalization* stage is [`personalize`], which
//! fits every client's linear probe on the frozen global encoder. Both
//! stages report their lifecycle to a `calibre_telemetry::Recorder`.
//!
//! The crate provides:
//!
//! - the run configuration and client-selection schedule ([`FlConfig`]);
//! - the supervised classifier model and its scoped local training
//!   ([`model`]);
//! - server aggregation primitives ([`aggregate`]), including the
//!   divergence-weight transform Calibre's server uses;
//! - the shared personalization stage ([`personalize`]) — frozen encoder +
//!   10-epoch linear probe per client, exactly the paper's §V-A settings;
//! - the pFL-SSL chassis ([`pfl_ssl`]) that turns any `calibre_ssl` method
//!   into a personalized-FL approach;
//! - every benchmark approach of the paper ([`baselines`]): FedAvg(-FT),
//!   SCAFFOLD(-FT), FedRep, FedBABU, FedPer, LG-FedAvg, PerFedAvg, APFL,
//!   Ditto, FedEMA and the local-only Script baselines;
//! - parallel client execution ([`parallel`]) and fairness metrics
//!   ([`metrics`]);
//! - deterministic fault injection ([`chaos`]) and the resilient round
//!   executor ([`resilient`]) that survives dropouts, stragglers, panics
//!   and corrupted updates with bounded retries and minimum-quorum
//!   partial aggregation;
//! - crash-safe checkpointing ([`checkpoint`]) with atomic writes,
//!   integrity checksums, and a previous-generation fallback.
//!
//! # Example: FedAvg-FT on a tiny federation
//!
//! ```
//! use calibre_data::{FederatedDataset, PartitionConfig, NonIid, SynthVisionSpec};
//! use calibre_fl::{FlConfig, baselines::fedavg::run_fedavg};
//!
//! let fed = FederatedDataset::build(SynthVisionSpec::cifar10(), &PartitionConfig {
//!     num_clients: 3, train_per_client: 30, test_per_client: 10,
//!     unlabeled_per_client: 0, non_iid: NonIid::Iid, seed: 1,
//! });
//! let mut cfg = FlConfig::for_input(64);
//! cfg.rounds = 2;
//! cfg.clients_per_round = 2;
//! let result = run_fedavg(&fed, &cfg, true);
//! assert_eq!(result.seen.accuracies.len(), 3);
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod adversary;
pub mod aggregate;
pub mod baselines;
pub mod chaos;
pub mod checkpoint;
pub mod comm;
pub mod compress;
mod config;
pub mod metrics;
pub mod model;
pub mod parallel;
pub mod personalize;
pub mod pfl_ssl;
pub mod proto;
pub mod resilient;
pub mod sampler;
pub mod scheduler;
pub mod secure;
pub mod serve;
pub mod spec;
pub mod transport;

pub use adversary::{AttackInjector, AttackKind, AttackPlan, ReputationBook};
pub use aggregate::{
    BufferedRobustSink, HierarchicalSink, ReservoirSink, StreamingWeightedSink, UpdateSink,
};
pub use chaos::{FaultInjector, FaultPlan, WireFaultPlan, WireInjector};
pub use config::{FlConfig, RoundPath, StreamingConfig};
pub use metrics::{jain_index, pearson, worst_fraction_mean, ConfusionMatrix, Stats};
pub use personalize::{personalize_cohort, personalize_cohort_observed, PersonalizationOutcome};
pub use resilient::RoundPolicy;
pub use sampler::{Sampler, SamplerKind};
pub use scheduler::{RoundScheduler, StreamedRound};
pub use spec::SpecError;
pub use transport::{
    ClientAddr, ClientOptions, InProcessTransport, Listener, SocketTransport, StreamUpdate,
    Transport, TransportError, WaveSlot,
};
