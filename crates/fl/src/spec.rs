//! Shared error type for CLI spec strings (`--attack`, `--aggregator`, …).
//!
//! Every spec parser in the crate reports failures the same way: which key
//! was at fault, where that fragment sits in the input (byte span), and
//! what went wrong with it. The span lets callers underline the offending
//! fragment in diagnostics instead of echoing the whole spec and leaving
//! the user to diff it by eye.

/// A parse failure in a spec string, pointing at the offending fragment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Which spec family rejected the input (`"attack"`, `"aggregator"`).
    pub family: &'static str,
    /// The key or keyword at fault (e.g. `flip`, `trimmed`).
    pub key: String,
    /// Byte range `start..end` of the offending fragment in the input.
    pub span: (usize, usize),
    /// What went wrong with that fragment.
    pub detail: String,
}

impl SpecError {
    /// Builds an error for `key`, blaming the `span` byte range of the
    /// input.
    pub fn new(
        family: &'static str,
        key: &str,
        span: (usize, usize),
        detail: impl Into<String>,
    ) -> SpecError {
        SpecError {
            family,
            key: key.to_string(),
            span,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} spec: `{}` at bytes {}..{}: {}",
            self.family, self.key, self.span.0, self.span.1, self.detail
        )
    }
}

impl std::error::Error for SpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_family_key_span_and_detail() {
        let err = SpecError::new("attack", "warp", (9, 17), "unknown key");
        assert_eq!(
            err.to_string(),
            "attack spec: `warp` at bytes 9..17: unknown key"
        );
    }
}
