//! The method registry: every approach evaluated in the paper, runnable by
//! id.

use calibre::{run_calibre_observed, CalibreConfig};
use calibre_data::{AugmentConfig, FederatedDataset};
use calibre_fl::baselines::{
    apfl::run_apfl, ditto::run_ditto, fedavg::run_fedavg, fedbabu::run_fedbabu, fedema::run_fedema,
    fedper::run_fedper, fedprox::run_fedprox, fedrep::run_fedrep, lgfedavg::run_lgfedavg,
    perfedavg::run_perfedavg, scaffold::run_scaffold, script::run_script, BaselineResult,
};
use calibre_fl::pfl_ssl::run_pfl_ssl_observed;
use calibre_fl::FlConfig;
use calibre_ssl::SslKind;
use calibre_telemetry::{NullRecorder, Recorder};

/// Identifier of a method in the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MethodId {
    /// FedAvg with head fine-tuning (FedAvg-FT).
    FedAvgFt,
    /// SCAFFOLD with head fine-tuning (SCAFFOLD-FT).
    ScaffoldFt,
    /// FedRep.
    FedRep,
    /// FedBABU.
    FedBabu,
    /// FedPer.
    FedPer,
    /// LG-FedAvg.
    LgFedAvg,
    /// PerFedAvg (FO-MAML).
    PerFedAvg,
    /// APFL.
    Apfl,
    /// Ditto.
    Ditto,
    /// FedProx with head fine-tuning (library extension, not in the paper).
    FedProxFt,
    /// FedEMA.
    FedEma,
    /// Local-only training until convergence.
    ScriptConvergent,
    /// Local-only training for 10 epochs.
    ScriptFair,
    /// Plain pFL-SSL with the given backbone (no calibration).
    PflSsl(SslKind),
    /// Calibre with the given SSL backbone.
    Calibre(SslKind),
    /// Calibre ablation with explicit `L_n` / `L_p` toggles (Table I).
    CalibreAblation(SslKind, bool, bool),
}

impl MethodId {
    /// The full Fig. 3 / Fig. 4 method roster in paper order.
    pub fn roster() -> Vec<MethodId> {
        vec![
            MethodId::FedAvgFt,
            MethodId::ScaffoldFt,
            MethodId::FedRep,
            MethodId::FedBabu,
            MethodId::FedPer,
            MethodId::LgFedAvg,
            MethodId::PerFedAvg,
            MethodId::Apfl,
            MethodId::Ditto,
            MethodId::FedEma,
            MethodId::ScriptConvergent,
            MethodId::ScriptFair,
            MethodId::PflSsl(SslKind::SimClr),
            MethodId::PflSsl(SslKind::Byol),
            MethodId::Calibre(SslKind::SimClr),
            MethodId::Calibre(SslKind::Byol),
            MethodId::Calibre(SslKind::SimSiam),
            MethodId::Calibre(SslKind::MoCoV2),
        ]
    }

    /// A smaller roster for quick comparisons (smoke runs, examples).
    pub fn short_roster() -> Vec<MethodId> {
        vec![
            MethodId::FedAvgFt,
            MethodId::FedBabu,
            MethodId::PflSsl(SslKind::SimClr),
            MethodId::Calibre(SslKind::SimClr),
        ]
    }

    /// Display name matching the paper.
    pub fn name(self) -> String {
        match self {
            MethodId::FedAvgFt => "FedAvg-FT".into(),
            MethodId::ScaffoldFt => "SCAFFOLD-FT".into(),
            MethodId::FedRep => "FedRep".into(),
            MethodId::FedBabu => "FedBABU".into(),
            MethodId::FedPer => "FedPer".into(),
            MethodId::LgFedAvg => "LG-FedAvg".into(),
            MethodId::PerFedAvg => "PerFedAvg".into(),
            MethodId::Apfl => "APFL".into(),
            MethodId::Ditto => "Ditto".into(),
            MethodId::FedProxFt => "FedProx-FT".into(),
            MethodId::FedEma => "FedEMA".into(),
            MethodId::ScriptConvergent => "Script-Convergent".into(),
            MethodId::ScriptFair => "Script-Fair".into(),
            MethodId::PflSsl(kind) => format!("pFL-{}", kind.name()),
            MethodId::Calibre(kind) => format!("Calibre ({})", kind.name()),
            MethodId::CalibreAblation(kind, ln, lp) => {
                format!("Calibre ({}) [L_n={} L_p={}]", kind.name(), ln, lp)
            }
        }
    }

    /// Parses a CLI method name (case-insensitive, as printed by
    /// [`MethodId::name`] for the non-parameterized variants, or
    /// `pfl-simclr` / `calibre-simclr` style for the SSL families).
    pub fn parse(s: &str) -> Option<MethodId> {
        let lower = s.to_ascii_lowercase();
        let kind_of = |name: &str| -> Option<SslKind> {
            SslKind::ALL
                .into_iter()
                .find(|k| k.name().eq_ignore_ascii_case(name))
        };
        match lower.as_str() {
            "fedavg-ft" | "fedavgft" => Some(MethodId::FedAvgFt),
            "scaffold-ft" | "scaffoldft" => Some(MethodId::ScaffoldFt),
            "fedrep" => Some(MethodId::FedRep),
            "fedbabu" => Some(MethodId::FedBabu),
            "fedper" => Some(MethodId::FedPer),
            "lg-fedavg" | "lgfedavg" => Some(MethodId::LgFedAvg),
            "perfedavg" => Some(MethodId::PerFedAvg),
            "apfl" => Some(MethodId::Apfl),
            "ditto" => Some(MethodId::Ditto),
            "fedprox" | "fedprox-ft" => Some(MethodId::FedProxFt),
            "fedema" => Some(MethodId::FedEma),
            "script-convergent" => Some(MethodId::ScriptConvergent),
            "script-fair" => Some(MethodId::ScriptFair),
            _ => {
                if let Some(rest) = lower.strip_prefix("pfl-") {
                    kind_of(rest).map(MethodId::PflSsl)
                } else if let Some(rest) = lower.strip_prefix("calibre-ablation-") {
                    // `calibre-ablation-<kind>[:ln][:lp]` — explicit loss
                    // toggles, e.g. `calibre-ablation-simclr:ln:lp`.
                    let mut parts = rest.split(':');
                    let kind = kind_of(parts.next().unwrap_or(""))?;
                    let (mut ln, mut lp) = (false, false);
                    for flag in parts {
                        match flag {
                            "ln" => ln = true,
                            "lp" => lp = true,
                            _ => return None,
                        }
                    }
                    Some(MethodId::CalibreAblation(kind, ln, lp))
                } else if let Some(rest) = lower.strip_prefix("calibre-") {
                    kind_of(rest).map(MethodId::Calibre)
                } else {
                    None
                }
            }
        }
    }
}

/// Runs a method end to end on a federated dataset.
pub fn run_method(id: MethodId, fed: &FederatedDataset, cfg: &FlConfig) -> BaselineResult {
    run_method_observed(id, fed, cfg, &NullRecorder)
}

/// Like [`run_method`], reporting round-level telemetry for the SSL-based
/// methods (pFL-SSL and Calibre families) to `recorder`.
///
/// The supervised baselines have their own round loops and are not
/// instrumented yet; for them the recorder simply sees no events.
pub fn run_method_observed(
    id: MethodId,
    fed: &FederatedDataset,
    cfg: &FlConfig,
    recorder: &dyn Recorder,
) -> BaselineResult {
    let aug = AugmentConfig::default();
    match id {
        MethodId::FedAvgFt => run_fedavg(fed, cfg, true),
        MethodId::ScaffoldFt => run_scaffold(fed, cfg, true),
        MethodId::FedRep => run_fedrep(fed, cfg),
        MethodId::FedBabu => run_fedbabu(fed, cfg),
        MethodId::FedPer => run_fedper(fed, cfg),
        MethodId::LgFedAvg => run_lgfedavg(fed, cfg),
        MethodId::PerFedAvg => run_perfedavg(fed, cfg),
        MethodId::Apfl => run_apfl(fed, cfg),
        MethodId::Ditto => run_ditto(fed, cfg),
        MethodId::FedProxFt => run_fedprox(fed, cfg, 0.1),
        MethodId::FedEma => run_fedema(fed, cfg, &aug),
        MethodId::ScriptConvergent => run_script(fed, cfg, true),
        MethodId::ScriptFair => run_script(fed, cfg, false),
        MethodId::PflSsl(kind) => run_pfl_ssl_observed(fed, cfg, kind, &aug, recorder),
        MethodId::Calibre(kind) => {
            // The regularizers fade in over the first half of training:
            // pseudo-labels from an untrained encoder are noise.
            let ccfg = CalibreConfig {
                warmup_rounds: cfg.rounds / 2,
                ..CalibreConfig::default()
            };
            run_calibre_observed(fed, cfg, kind, &ccfg, &aug, recorder)
        }
        MethodId::CalibreAblation(kind, use_ln, use_lp) => {
            let ccfg = CalibreConfig {
                warmup_rounds: cfg.rounds / 2,
                ..CalibreConfig::ablation(use_ln, use_lp)
            };
            let mut result = run_calibre_observed(fed, cfg, kind, &ccfg, &aug, recorder);
            result.name = id.name();
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_covers_every_roster_method() {
        for id in MethodId::roster() {
            let key = match id {
                MethodId::PflSsl(kind) => format!("pfl-{}", kind.name()),
                MethodId::Calibre(kind) => format!("calibre-{}", kind.name()),
                other => other.name(),
            };
            assert_eq!(MethodId::parse(&key), Some(id), "failed to parse {key}");
        }
    }

    #[test]
    fn parse_rejects_unknown() {
        assert_eq!(MethodId::parse("fedsgd"), None);
        assert_eq!(MethodId::parse("calibre-unknown"), None);
        assert_eq!(MethodId::parse("calibre-ablation-simclr:bogus"), None);
    }

    #[test]
    fn parse_covers_the_ablation_family() {
        assert_eq!(
            MethodId::parse("calibre-ablation-simclr:ln:lp"),
            Some(MethodId::CalibreAblation(SslKind::SimClr, true, true))
        );
        assert_eq!(
            MethodId::parse("calibre-ablation-byol:lp"),
            Some(MethodId::CalibreAblation(SslKind::Byol, false, true))
        );
        assert_eq!(
            MethodId::parse("calibre-ablation-simclr"),
            Some(MethodId::CalibreAblation(SslKind::SimClr, false, false))
        );
    }

    #[test]
    fn names_are_distinct() {
        let names: Vec<String> = MethodId::roster().iter().map(|m| m.name()).collect();
        let mut dedup = names.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), names.len());
    }
}
