//! # calibre-bench
//!
//! Experiment harness regenerating every table and figure of the Calibre
//! paper (ICDCS 2024). See `DESIGN.md` §4 for the experiment index and
//! `EXPERIMENTS.md` for paper-vs-measured records.
//!
//! Binaries:
//!
//! - `fig3` — mean/variance of personalized accuracy across methods, three
//!   datasets, Q- and D-non-i.i.d. (paper Fig. 3);
//! - `fig4` — seen + novel client cohorts under D-non-i.i.d. (paper Fig. 4);
//! - `table1` — the `L_n`/`L_p` ablation for Calibre (SimCLR/SwAV/SMoG)
//!   (paper Table I);
//! - `tsne` — 2-D embeddings + cluster-quality metrics for the qualitative
//!   figures (paper Figs. 1, 2, 5–8);
//! - `calibre-obs` — offline queries over recorded JSONL telemetry:
//!   run summaries, per-round drill-downs, fairness tables, and
//!   threshold-gated diffs between two runs (see [`obsquery`]).
//!
//! All binaries accept `--scale smoke|default|paper` to trade fidelity for
//! wall-clock time; `paper` restores the publication's 100 clients × 200
//! rounds. The shared observability flags (`--telemetry <path>`,
//! `--trace <path>`, `--profile <path>`; see [`obs`]) stream round-level
//! JSONL events, export a Perfetto-compatible Chrome trace of the span
//! layer, and print/write an aggregated hot-path profile (see
//! `calibre-telemetry` and the README's "Observing a run" and "Profiling a
//! run" walkthroughs).
//!
//! **Role in Algorithm 1:** the driver. Every binary runs the federated
//! *training* stage to produce an encoder and the *personalization* stage to
//! score it, at the scale the experiment calls for.

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod obs;
pub mod obsquery;
pub mod registry;
pub mod report;
pub mod scale;

pub use registry::{run_method, run_method_observed, MethodId};
pub use scale::{build_dataset, DatasetId, Scale, Setting};

/// Parses `--key value` style CLI arguments into (key, value) pairs.
///
/// Returns an error message for a dangling key.
pub fn parse_args(args: &[String]) -> Result<Vec<(String, String)>, String> {
    let mut out = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let key = &args[i];
        if !key.starts_with("--") {
            return Err(format!("expected --flag, got {key}"));
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("missing value for {key}"))?;
        out.push((key.trim_start_matches("--").to_string(), value.clone()));
        i += 2;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_args_handles_pairs() {
        let args: Vec<String> = ["--scale", "smoke", "--seed", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let parsed = parse_args(&args).unwrap();
        assert_eq!(parsed[0], ("scale".to_string(), "smoke".to_string()));
        assert_eq!(parsed[1], ("seed".to_string(), "7".to_string()));
    }

    #[test]
    fn parse_args_rejects_dangling_flag() {
        let args: Vec<String> = ["--scale"].iter().map(|s| s.to_string()).collect();
        assert!(parse_args(&args).is_err());
    }

    #[test]
    fn parse_args_rejects_bare_value() {
        let args: Vec<String> = ["smoke"].iter().map(|s| s.to_string()).collect();
        assert!(parse_args(&args).is_err());
    }
}
