//! Result-row reporting: aligned stdout tables plus CSV sidecars under
//! `results/`.

use calibre_fl::Stats;
use std::io::Write;
use std::path::Path;

/// One experiment-cell result row.
#[derive(Debug, Clone)]
pub struct Row {
    /// Dataset name (`CIFAR-10`, …).
    pub dataset: String,
    /// Non-i.i.d. setting name.
    pub setting: String,
    /// Method name.
    pub method: String,
    /// Cohort label (`seen` / `novel`).
    pub cohort: String,
    /// Accuracy statistics of the cohort.
    pub stats: Stats,
}

impl Row {
    /// Formats the row for stdout.
    pub fn display(&self) -> String {
        format!(
            "{:<10} {:<15} {:<22} {:<6} mean {:>6.2}%  var {:>8.5}  std {:>6.2}",
            self.dataset,
            self.setting,
            self.method,
            self.cohort,
            self.stats.mean_percent(),
            self.stats.variance,
            self.stats.std_percent(),
        )
    }
}

/// Prints a header followed by all rows.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("== {title} ==");
    println!(
        "{:<10} {:<15} {:<22} {:<6} {:>12} {:>12} {:>10}",
        "dataset", "setting", "method", "cohort", "mean(%)", "variance", "std(%)"
    );
    for row in rows {
        println!("{}", row.display());
    }
}

/// Writes rows as CSV to `results/<name>.csv` (creating the directory).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_csv(name: &str, rows: &[Row]) -> std::io::Result<std::path::PathBuf> {
    let dir = Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(f, "dataset,setting,method,cohort,mean,variance,std,count")?;
    for r in rows {
        writeln!(
            f,
            "{},{},{},{},{},{},{},{}",
            r.dataset,
            r.setting,
            r.method,
            r.cohort,
            r.stats.mean,
            r.stats.variance,
            r.stats.std,
            r.stats.count
        )?;
    }
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Row {
        Row {
            dataset: "CIFAR-10".into(),
            setting: "Q-non-iid".into(),
            method: "Calibre (SimCLR)".into(),
            cohort: "seen".into(),
            stats: Stats::from_accuracies(&[0.8, 0.9]),
        }
    }

    #[test]
    fn display_contains_key_fields() {
        let s = row().display();
        assert!(s.contains("CIFAR-10"));
        assert!(s.contains("Calibre (SimCLR)"));
        assert!(s.contains("85.00"));
    }

    #[test]
    fn csv_roundtrip_has_header_and_row() {
        let dir = std::env::temp_dir().join("calibre-bench-test");
        let _ = std::fs::create_dir_all(&dir);
        let old = std::env::current_dir().unwrap();
        std::env::set_current_dir(&dir).unwrap();
        let path = write_csv("test_rows", &[row()]).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        std::env::set_current_dir(old).unwrap();
        assert!(content.starts_with("dataset,setting,method"));
        assert!(content.contains("Calibre (SimCLR)"));
    }
}
