//! Experiment scales and dataset construction.
//!
//! The paper runs 100 training clients (+50 novel) for 200 rounds on a GPU;
//! this harness defaults to a scaled configuration that preserves the
//! client/round/epoch *ratios* at CPU-simulation sizes, and exposes the full
//! paper configuration behind [`Scale::Paper`].

use calibre_data::{FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
use calibre_fl::FlConfig;

/// Which dataset analog an experiment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetId {
    /// CIFAR-10 analog: 10 classes.
    Cifar10,
    /// CIFAR-100 analog: 100 classes.
    Cifar100,
    /// STL-10 analog: 10 classes, few labels, large unlabeled pool.
    Stl10,
}

impl DatasetId {
    /// All three datasets in paper order.
    pub const ALL: [DatasetId; 3] = [DatasetId::Cifar10, DatasetId::Cifar100, DatasetId::Stl10];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Cifar10 => "CIFAR-10",
            DatasetId::Cifar100 => "CIFAR-100",
            DatasetId::Stl10 => "STL-10",
        }
    }

    /// The generator spec for this dataset.
    pub fn spec(self) -> SynthVisionSpec {
        match self {
            DatasetId::Cifar10 => SynthVisionSpec::cifar10(),
            DatasetId::Cifar100 => SynthVisionSpec::cifar100(),
            DatasetId::Stl10 => SynthVisionSpec::stl10(),
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<DatasetId> {
        match s.to_ascii_lowercase().as_str() {
            "cifar10" | "cifar-10" => Some(DatasetId::Cifar10),
            "cifar100" | "cifar-100" => Some(DatasetId::Cifar100),
            "stl10" | "stl-10" => Some(DatasetId::Stl10),
            _ => None,
        }
    }

    /// The paper's quantity-based classes-per-client for this dataset
    /// (`S = 2` of the `(2, 500)` setting for the 10-class datasets,
    /// `S = 10` for CIFAR-100).
    pub fn quantity_classes(self) -> usize {
        match self {
            DatasetId::Cifar100 => 10,
            _ => 2,
        }
    }
}

/// Label-skew setting of an experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Setting {
    /// Quantity-based label non-i.i.d. (`(S, #samples)` in the paper).
    QuantityNonIid,
    /// Distribution-based label non-i.i.d. with Dirichlet 0.3
    /// (`(0.3, #samples)`).
    DirichletNonIid,
}

impl Setting {
    /// Both settings in paper order.
    pub const ALL: [Setting; 2] = [Setting::QuantityNonIid, Setting::DirichletNonIid];

    /// Display name matching the paper's notation.
    pub fn name(self) -> &'static str {
        match self {
            Setting::QuantityNonIid => "Q-non-iid",
            Setting::DirichletNonIid => "D-non-iid(0.3)",
        }
    }

    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Setting> {
        match s.to_ascii_lowercase().as_str() {
            "q" | "quantity" => Some(Setting::QuantityNonIid),
            "d" | "dirichlet" => Some(Setting::DirichletNonIid),
            _ => None,
        }
    }

    /// The `NonIid` regime for a dataset under this setting.
    pub fn non_iid(self, dataset: DatasetId) -> NonIid {
        match self {
            Setting::QuantityNonIid => NonIid::Quantity {
                classes_per_client: dataset.quantity_classes(),
            },
            Setting::DirichletNonIid => NonIid::Dirichlet { alpha: 0.3 },
        }
    }
}

/// How big an experiment run is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-long CI-friendly runs (used by the integration tests).
    Smoke,
    /// The default harness scale: preserves the paper's ratios at CPU size.
    Default,
    /// The paper's full 100 clients × 200 rounds (hours on CPU).
    Paper,
}

impl Scale {
    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Scale::Smoke),
            "default" => Some(Scale::Default),
            "paper" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// Number of training clients.
    pub fn clients(self) -> usize {
        match self {
            Scale::Smoke => 6,
            Scale::Default => 20,
            Scale::Paper => 100,
        }
    }

    /// Number of novel (never-trained) clients for Fig. 4.
    pub fn novel_clients(self) -> usize {
        match self {
            Scale::Smoke => 3,
            Scale::Default => 10,
            Scale::Paper => 50,
        }
    }

    /// Labeled training samples per client.
    pub fn train_per_client(self, dataset: DatasetId) -> usize {
        match (dataset, self) {
            // STL-10 is label-scarce: the real corpus has 5 000 labeled vs
            // 100 000 unlabeled samples (1:20); the analog keeps labels rare
            // relative to the unlabeled pool.
            (DatasetId::Stl10, Scale::Smoke) => 15,
            (DatasetId::Stl10, Scale::Default) => 20,
            (DatasetId::Stl10, Scale::Paper) => 50,
            (_, Scale::Smoke) => 40,
            (_, Scale::Default) => 100,
            (_, Scale::Paper) => 500,
        }
    }

    /// Labeled test samples per client.
    pub fn test_per_client(self) -> usize {
        match self {
            Scale::Smoke => 20,
            Scale::Default => 40,
            Scale::Paper => 100,
        }
    }

    /// Unlabeled samples per client (STL-10 analog only).
    pub fn unlabeled_per_client(self, dataset: DatasetId) -> usize {
        if dataset != DatasetId::Stl10 {
            return 0;
        }
        match self {
            Scale::Smoke => 40,
            Scale::Default => 200,
            Scale::Paper => 1000,
        }
    }

    /// The federated-learning configuration at this scale.
    pub fn fl_config(self, seed: u64) -> FlConfig {
        let mut cfg = FlConfig::for_input(64);
        match self {
            Scale::Smoke => {
                cfg.rounds = 4;
                cfg.clients_per_round = 3;
                cfg.local_epochs = 1;
                cfg.batch_size = 16;
            }
            Scale::Default => {
                cfg.rounds = 40;
                cfg.clients_per_round = 5;
                cfg.local_epochs = 2;
                cfg.batch_size = 32;
            }
            Scale::Paper => {
                cfg.rounds = 200;
                cfg.clients_per_round = 10;
                cfg.local_epochs = 3;
                cfg.batch_size = 32;
            }
        }
        cfg.seed = seed;
        cfg
    }
}

/// Builds the federated dataset for an experiment cell.
///
/// `extra_clients` are appended for the novel-client cohort (split off with
/// [`FederatedDataset::split_novel`]).
pub fn build_dataset(
    dataset: DatasetId,
    setting: Setting,
    scale: Scale,
    extra_clients: usize,
    seed: u64,
) -> FederatedDataset {
    FederatedDataset::build(
        dataset.spec(),
        &PartitionConfig {
            num_clients: scale.clients() + extra_clients,
            train_per_client: scale.train_per_client(dataset),
            test_per_client: scale.test_per_client(),
            unlabeled_per_client: scale.unlabeled_per_client(dataset),
            non_iid: setting.non_iid(dataset),
            seed,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips() {
        assert_eq!(DatasetId::parse("cifar10"), Some(DatasetId::Cifar10));
        assert_eq!(DatasetId::parse("STL-10"), Some(DatasetId::Stl10));
        assert_eq!(Setting::parse("q"), Some(Setting::QuantityNonIid));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn stl10_gets_unlabeled_pool() {
        let fed = build_dataset(
            DatasetId::Stl10,
            Setting::QuantityNonIid,
            Scale::Smoke,
            0,
            1,
        );
        assert!(!fed.client(0).unlabeled.is_empty());
        let cifar = build_dataset(
            DatasetId::Cifar10,
            Setting::QuantityNonIid,
            Scale::Smoke,
            0,
            1,
        );
        assert_eq!(cifar.client(0).unlabeled.len(), 0);
    }

    #[test]
    fn paper_scale_matches_publication() {
        let s = Scale::Paper;
        assert_eq!(s.clients(), 100);
        assert_eq!(s.novel_clients(), 50);
        let cfg = s.fl_config(0);
        assert_eq!(cfg.rounds, 200);
        assert_eq!(cfg.clients_per_round, 10);
        assert_eq!(cfg.local_epochs, 3);
    }

    #[test]
    fn quantity_setting_respects_dataset_classes() {
        assert_eq!(
            Setting::QuantityNonIid.non_iid(DatasetId::Cifar100),
            calibre_data::NonIid::Quantity {
                classes_per_client: 10
            }
        );
        assert_eq!(
            Setting::QuantityNonIid.non_iid(DatasetId::Cifar10),
            calibre_data::NonIid::Quantity {
                classes_per_client: 2
            }
        );
    }
}
