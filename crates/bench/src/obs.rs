//! Shared observability plumbing for the bench binaries.
//!
//! Every binary accepts the same three flags, all optional and freely
//! combinable:
//!
//! - `--telemetry <path>` — stream round-level JSONL events to `<path>` and
//!   print a round/fairness summary at the end of the run;
//! - `--trace <path>` — record every span as a Chrome trace-event and write
//!   the JSON to `<path>` (open it in `ui.perfetto.dev` or
//!   `chrome://tracing`);
//! - `--profile <path>` — aggregate spans into a hot-path profile, print the
//!   top-self-time table, and write the profile JSON to `<path>` (`-` prints
//!   the table without writing a file). The JSON is what
//!   `calibre-bench regression` compares against the committed baseline.
//!
//! The hook also consumes one shared *execution* flag:
//!
//! - `--backend scalar|blocked` — select the process-wide tensor execution
//!   backend (see `calibre_tensor::backend`). `scalar` is the bit-exact
//!   reference; `blocked` is the cache-tiled, row-parallel implementation.
//!   The default is `scalar`.
//!
//! And three shared *resilience* flags, applied to the run's `FlConfig` via
//! [`ObsArgs::apply_fl`]:
//!
//! - `--chaos <spec>` — deterministic fault injection, e.g.
//!   `--chaos drop=0.3,corrupt=0.1,panic=0.05,straggle=0.1,seed=42` (see
//!   `calibre_fl::chaos::FaultPlan::parse` for the full grammar);
//! - `--min-quorum <n>` — minimum surviving clients required to aggregate a
//!   round; rounds below quorum are skipped, never fatal;
//! - `--aggregator weighted|median|trimmed[:ratio]` — the server-side
//!   aggregation statistic.
//!
//! When a run emitted any resilience telemetry, [`Obs::finish`] prints a
//! fault/retry/quorum summary next to the round table.
//!
//! Usage pattern inside a binary's `main`:
//!
//! ```no_run
//! use calibre_bench::obs::ObsArgs;
//!
//! let mut obs_args = ObsArgs::default();
//! // inside the flag loop: `if obs_args.accept(&key, &value) { continue; }`
//! let obs = obs_args.build();
//! // ... run experiments, passing `obs.recorder()` to *_observed entry
//! // points ...
//! obs.finish(); // flushes, uninstalls the span collector, writes outputs
//! ```

use calibre_telemetry::{
    install_collector, uninstall_collector, Fanout, JsonlSink, MetricsHub, NullRecorder,
    ProfileCollector, Recorder, SpanFanout, TraceCollector,
};
use std::sync::Arc;

/// How many rows of the self-time table `--profile` prints.
const TOP_N: usize = 15;

/// Parsed observability flags, before the sinks exist.
#[derive(Default, Debug, Clone)]
pub struct ObsArgs {
    /// Destination for round-level JSONL events (`--telemetry`).
    pub telemetry: Option<String>,
    /// Destination for the Chrome trace-event JSON (`--trace`).
    pub trace: Option<String>,
    /// Destination for the profile JSON, `-` for table-only (`--profile`).
    pub profile: Option<String>,
    /// Parsed fault-injection plan (`--chaos`).
    pub chaos: Option<calibre_fl::FaultPlan>,
    /// Minimum aggregation quorum (`--min-quorum`).
    pub min_quorum: Option<usize>,
    /// Server aggregation statistic (`--aggregator`).
    pub aggregator: Option<calibre_fl::aggregate::Aggregator>,
}

impl ObsArgs {
    /// Consumes one parsed `--key value` pair if it is an observability
    /// flag or the shared `--backend` execution flag; returns `false`
    /// (leaving `self` untouched) otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `--backend` names an unknown backend, `--chaos` carries an
    /// unparsable spec, `--min-quorum` is not an integer, or `--aggregator`
    /// names an unknown statistic.
    pub fn accept(&mut self, key: &str, value: &str) -> bool {
        match key {
            "telemetry" => self.telemetry = Some(value.to_string()),
            "trace" => self.trace = Some(value.to_string()),
            "profile" => self.profile = Some(value.to_string()),
            "backend" => {
                let be = calibre_tensor::backend::backend_by_name(value).unwrap_or_else(|| {
                    panic!("unknown --backend {value:?} (expected \"scalar\" or \"blocked\")")
                });
                calibre_tensor::backend::set_global_backend(be);
            }
            "chaos" => {
                let plan = calibre_fl::FaultPlan::parse(value)
                    .unwrap_or_else(|e| panic!("bad --chaos spec {value:?}: {e}"));
                self.chaos = Some(plan);
            }
            "min-quorum" => {
                self.min_quorum = Some(value.parse().expect("--min-quorum must be an integer"));
            }
            "aggregator" => {
                let agg = calibre_fl::aggregate::Aggregator::parse(value).unwrap_or_else(|| {
                    panic!(
                        "unknown --aggregator {value:?} (expected \"weighted\", \"median\" or \"trimmed[:ratio]\")"
                    )
                });
                self.aggregator = Some(agg);
            }
            _ => return false,
        }
        true
    }

    /// Applies the resilience flags to a run's federated configuration:
    /// `--chaos` replaces the (inactive by default) fault plan, and
    /// `--min-quorum` / `--aggregator` override the round policy. Flags
    /// that were not given leave `cfg` untouched.
    pub fn apply_fl(&self, cfg: &mut calibre_fl::FlConfig) {
        if let Some(plan) = &self.chaos {
            cfg.chaos = plan.clone();
        }
        if let Some(quorum) = self.min_quorum {
            cfg.policy.min_quorum = quorum;
        }
        if let Some(aggregator) = self.aggregator {
            cfg.policy.aggregator = aggregator;
        }
    }

    /// Whether any observability flag was given.
    pub fn any(&self) -> bool {
        self.telemetry.is_some() || self.trace.is_some() || self.profile.is_some()
    }

    /// Builds the live observability state: opens the JSONL sink, and
    /// installs the process-wide span collector when `--trace` or
    /// `--profile` was given.
    pub fn build(self) -> Obs {
        let hub = Arc::new(MetricsHub::new());
        let recorder: Box<dyn Recorder> = match &self.telemetry {
            Some(path) => {
                let sink = JsonlSink::create(path)
                    .unwrap_or_else(|e| panic!("cannot create telemetry file {path}: {e}"));
                Box::new(
                    Fanout::new()
                        .with(Box::new(sink))
                        .with(Box::new(Arc::clone(&hub))),
                )
            }
            None => Box::new(NullRecorder),
        };

        let trace = self
            .trace
            .map(|path| (Arc::new(TraceCollector::new()), path));
        let profile = self
            .profile
            .map(|path| (Arc::new(ProfileCollector::new()), path));
        if trace.is_some() || profile.is_some() {
            let mut fanout = SpanFanout::new();
            if let Some((collector, _)) = &trace {
                fanout = fanout.with(Arc::clone(collector) as Arc<dyn calibre_telemetry::SpanSink>);
            }
            if let Some((collector, _)) = &profile {
                fanout = fanout.with(Arc::clone(collector) as Arc<dyn calibre_telemetry::SpanSink>);
            }
            install_collector(Arc::new(fanout));
        }

        Obs {
            hub,
            recorder,
            telemetry: self.telemetry,
            trace,
            profile,
        }
    }
}

/// Live observability state for one bench run. Obtain via
/// [`ObsArgs::build`]; call [`Obs::finish`] exactly once at the end of the
/// run.
pub struct Obs {
    hub: Arc<MetricsHub>,
    recorder: Box<dyn Recorder>,
    telemetry: Option<String>,
    trace: Option<(Arc<TraceCollector>, String)>,
    profile: Option<(Arc<ProfileCollector>, String)>,
}

impl Obs {
    /// The recorder to hand to `*_observed` entry points. A `NullRecorder`
    /// unless `--telemetry` was given.
    pub fn recorder(&self) -> &dyn Recorder {
        self.recorder.as_ref()
    }

    /// The in-memory metrics hub fed by [`Obs::recorder`].
    pub fn hub(&self) -> &MetricsHub {
        &self.hub
    }

    /// Ends the run: flushes the recorder, uninstalls the span collector,
    /// writes the trace/profile outputs and prints the telemetry summary.
    pub fn finish(self) {
        // Explicit flush (recorders also flush on drop, but an explicit
        // flush surfaces write failures while the run's output is still on
        // screen).
        self.recorder.flush();
        drop(self.recorder);
        if self.trace.is_some() || self.profile.is_some() {
            uninstall_collector();
        }

        if let Some(path) = &self.telemetry {
            let rounds = self.hub.round_summaries();
            let (planned, observed) = self.hub.total_bytes();
            println!("\n== telemetry summary ({} round events) ==", rounds.len());
            for s in &rounds {
                println!(
                    "round {:>3}: {} clients, mean loss {:.4}, wall mean {:.1} ms / max {:.1} ms",
                    s.round, s.num_clients, s.mean_loss, s.mean_wall_ms, s.max_wall_ms
                );
            }
            println!(
                "comm: planned {:.2} MiB, observed {:.2} MiB",
                planned as f64 / (1024.0 * 1024.0),
                observed as f64 / (1024.0 * 1024.0)
            );
            if let Some(fairness) = self.hub.fairness_summary() {
                println!(
                    "fairness over {} personalizations: mean {:.3}, std {:.3}, worst-10% {:.3}",
                    fairness.num_clients, fairness.mean, fairness.std, fairness.worst_10pct
                );
            }
            let cohorts = self.hub.cohort_summaries();
            if !cohorts.is_empty() {
                println!("cohort sweep ({} points):", cohorts.len());
                for c in &cohorts {
                    println!(
                        "  cohort {:>7} (dim {}, groups {}): {:.2} rounds/sec, peak agg {} B, peak rss {:.1} MiB",
                        c.cohort,
                        c.dim,
                        c.groups,
                        c.rounds_per_sec,
                        c.peak_state_bytes,
                        c.peak_rss_bytes as f64 / (1024.0 * 1024.0)
                    );
                }
            }
            let resilience = self.hub.resilience_summary();
            if resilience != calibre_telemetry::ResilienceSummary::default() {
                println!(
                    "resilience: {} faults injected ({} detected), {} retries, {} rounds skipped, min quorum {}",
                    resilience.faults_injected,
                    resilience.faults_detected,
                    resilience.retries,
                    resilience.rounds_skipped,
                    resilience
                        .min_quorum_seen
                        .map_or_else(|| "-".to_string(), |q| q.to_string()),
                );
            }
            println!("wrote {path}");
        }

        if let Some((collector, path)) = &self.trace {
            match collector.write_chrome_trace(path) {
                Ok(()) => println!("wrote {path} ({} trace events)", collector.len()),
                Err(e) => eprintln!("trace write failed for {path}: {e}"),
            }
        }

        if let Some((collector, path)) = &self.profile {
            let report = collector.report();
            println!("\n== hot-path profile (top {TOP_N} by self time) ==");
            print!("{}", report.top_self_table(TOP_N));
            if path != "-" {
                match std::fs::write(path, report.to_json()) {
                    Ok(()) => println!("wrote {path}"),
                    Err(e) => eprintln!("profile write failed for {path}: {e}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_consumes_only_observability_flags() {
        let mut args = ObsArgs::default();
        assert!(args.accept("telemetry", "t.jsonl"));
        assert!(args.accept("trace", "t.json"));
        assert!(args.accept("profile", "-"));
        // "scalar" is the process default, so accepting it here is a no-op.
        assert!(args.accept("backend", "scalar"));
        assert!(!args.accept("scale", "smoke"));
        assert!(args.any());
        assert_eq!(args.telemetry.as_deref(), Some("t.jsonl"));
        assert_eq!(args.trace.as_deref(), Some("t.json"));
        assert_eq!(args.profile.as_deref(), Some("-"));
    }

    #[test]
    fn resilience_flags_are_parsed_and_applied() {
        let mut args = ObsArgs::default();
        assert!(args.accept("chaos", "drop=0.3,corrupt=0.1,seed=42"));
        assert!(args.accept("min-quorum", "2"));
        assert!(args.accept("aggregator", "trimmed:0.1"));

        let mut cfg = calibre_fl::FlConfig::for_input(64);
        assert!(!cfg.chaos.is_active());
        args.apply_fl(&mut cfg);
        assert!(cfg.chaos.is_active());
        assert_eq!(cfg.chaos.drop_prob, 0.3);
        assert_eq!(cfg.chaos.seed, 42);
        assert_eq!(cfg.policy.min_quorum, 2);
        assert_eq!(
            cfg.policy.aggregator,
            calibre_fl::aggregate::Aggregator::TrimmedMean(0.1)
        );

        // Absent flags leave the config alone.
        let mut untouched = calibre_fl::FlConfig::for_input(64);
        let before = untouched.clone();
        ObsArgs::default().apply_fl(&mut untouched);
        assert_eq!(untouched, before);
    }

    #[test]
    fn default_args_build_an_inert_obs() {
        let obs = ObsArgs::default().build();
        // No collector must be installed when no flag asked for one.
        assert!(!calibre_telemetry::collector_installed());
        obs.recorder().personalize(0, 0.5);
        assert!(obs.hub().fairness_summary().is_none(), "NullRecorder path");
        obs.finish();
    }
}
