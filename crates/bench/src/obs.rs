//! Shared observability plumbing for the bench binaries.
//!
//! Every binary accepts the same three flags, all optional and freely
//! combinable:
//!
//! - `--telemetry <path>` — stream round-level JSONL events to `<path>` and
//!   print a round/fairness summary at the end of the run;
//! - `--trace <path>` — record every span as a Chrome trace-event and write
//!   the JSON to `<path>` (open it in `ui.perfetto.dev` or
//!   `chrome://tracing`);
//! - `--profile <path>` — aggregate spans into a hot-path profile, print the
//!   top-self-time table, and write the profile JSON to `<path>` (`-` prints
//!   the table without writing a file). The JSON is what
//!   `calibre-bench regression` compares against the committed baseline;
//! - `--metrics-addr <addr>` — enable the process-wide metrics registry and
//!   serve live `/metrics` (Prometheus text) and `/status` (JSON snapshot)
//!   on `<addr>` while the run executes (`127.0.0.1:0` picks a free port,
//!   printed at startup);
//! - `--metrics-snapshot <path>` — at the end of the run, self-scrape
//!   `/metrics` over HTTP once and write the body to `<path>` (requires
//!   `--metrics-addr`).
//!
//! The hook also consumes one shared *execution* flag:
//!
//! - `--backend scalar|blocked` — select the process-wide tensor execution
//!   backend (see `calibre_tensor::backend`). `scalar` is the bit-exact
//!   reference; `blocked` is the cache-tiled, row-parallel implementation.
//!   The default is `scalar`.
//!
//! And three shared *resilience* flags, applied to the run's `FlConfig` via
//! [`ObsArgs::apply_fl`]:
//!
//! - `--chaos <spec>` — deterministic fault injection, e.g.
//!   `--chaos drop=0.3,corrupt=0.1,panic=0.05,straggle=0.1,seed=42` (see
//!   `calibre_fl::chaos::FaultPlan::parse` for the full grammar);
//! - `--attack <spec>` — deterministic Byzantine-client simulation, e.g.
//!   `--attack flip=0.1,scale=10:0.05,noise=0.1,seed=7` (see
//!   `calibre_fl::adversary::AttackPlan::parse` for the full grammar);
//! - `--detect true|false` — server-side anomaly detection and quarantine;
//! - `--min-quorum <n>` — minimum surviving clients required to aggregate a
//!   round; rounds below quorum are skipped, never fatal;
//! - `--aggregator weighted|median|trimmed[:ratio]|krum[:f]|multi-krum:f:m|geomedian|normbound:max|clip:tau`
//!   — the server-side aggregation statistic.
//!
//! When a run emitted any resilience telemetry, [`Obs::finish`] prints a
//! fault/retry/quorum summary next to the round table.
//!
//! Usage pattern inside a binary's `main`:
//!
//! ```no_run
//! use calibre_bench::obs::ObsArgs;
//!
//! let mut obs_args = ObsArgs::default();
//! // inside the flag loop: `if obs_args.accept(&key, &value) { continue; }`
//! let obs = obs_args.build();
//! // ... run experiments, passing `obs.recorder()` to *_observed entry
//! // points ...
//! obs.finish(); // flushes, uninstalls the span collector, writes outputs
//! ```

use calibre_telemetry::export::{http_get, MetricsServer};
use calibre_telemetry::{
    install_collector, uninstall_collector, Fanout, JsonlSink, MetricsHub, NullRecorder,
    ProfileCollector, Recorder, SpanFanout, TraceCollector,
};
use std::sync::Arc;

/// How many rows of the self-time table `--profile` prints.
const TOP_N: usize = 15;

/// Parsed observability flags, before the sinks exist.
#[derive(Default, Debug, Clone)]
pub struct ObsArgs {
    /// Destination for round-level JSONL events (`--telemetry`).
    pub telemetry: Option<String>,
    /// Destination for the Chrome trace-event JSON (`--trace`).
    pub trace: Option<String>,
    /// Destination for the profile JSON, `-` for table-only (`--profile`).
    pub profile: Option<String>,
    /// Parsed fault-injection plan (`--chaos`).
    pub chaos: Option<calibre_fl::FaultPlan>,
    /// Parsed Byzantine-attack plan (`--attack`).
    pub attack: Option<calibre_fl::AttackPlan>,
    /// Anomaly detection and quarantine toggle (`--detect`).
    pub detect: Option<bool>,
    /// Minimum aggregation quorum (`--min-quorum`).
    pub min_quorum: Option<usize>,
    /// Forced round execution path (`--round-path auto|collect|streaming`).
    pub round_path: Option<calibre_fl::RoundPath>,
    /// Cohort size at which `auto` switches to streaming
    /// (`--streaming-threshold`).
    pub streaming_threshold: Option<usize>,
    /// Server aggregation statistic (`--aggregator`).
    pub aggregator: Option<calibre_fl::aggregate::Aggregator>,
    /// Address for the live metrics HTTP server (`--metrics-addr`), e.g.
    /// `127.0.0.1:9185` or `127.0.0.1:0` for an ephemeral port. Enables the
    /// process-wide metrics registry.
    pub metrics_addr: Option<String>,
    /// File to write one final `/metrics` self-scrape to at the end of the
    /// run (`--metrics-snapshot`). Requires `--metrics-addr`.
    pub metrics_snapshot: Option<String>,
}

impl ObsArgs {
    /// Consumes one parsed `--key value` pair if it is an observability
    /// flag or the shared `--backend` execution flag; returns `false`
    /// (leaving `self` untouched) otherwise.
    ///
    /// # Panics
    ///
    /// Panics if `--backend` names an unknown backend, `--chaos` carries an
    /// unparsable spec, `--min-quorum` is not an integer, or `--aggregator`
    /// names an unknown statistic.
    pub fn accept(&mut self, key: &str, value: &str) -> bool {
        match key {
            "telemetry" => self.telemetry = Some(value.to_string()),
            "trace" => self.trace = Some(value.to_string()),
            "profile" => self.profile = Some(value.to_string()),
            "metrics-addr" => self.metrics_addr = Some(value.to_string()),
            "metrics-snapshot" => self.metrics_snapshot = Some(value.to_string()),
            "backend" => {
                let be = calibre_tensor::backend::backend_by_name(value).unwrap_or_else(|| {
                    panic!("unknown --backend {value:?} (expected \"scalar\" or \"blocked\")")
                });
                calibre_tensor::backend::set_global_backend(be);
            }
            "chaos" => {
                let plan = calibre_fl::FaultPlan::parse(value)
                    .unwrap_or_else(|e| panic!("bad --chaos spec {value:?}: {e}"));
                self.chaos = Some(plan);
            }
            "attack" => {
                let plan = calibre_fl::AttackPlan::parse(value)
                    .unwrap_or_else(|e| panic!("bad --attack spec {value:?}: {e}"));
                self.attack = Some(plan);
            }
            "detect" => {
                self.detect = Some(
                    value
                        .parse()
                        .expect("--detect must be \"true\" or \"false\""),
                );
            }
            "min-quorum" => {
                self.min_quorum = Some(value.parse().expect("--min-quorum must be an integer"));
            }
            "round-path" => {
                let path = calibre_fl::RoundPath::parse(value)
                    .unwrap_or_else(|e| panic!("bad --round-path: {e}"));
                self.round_path = Some(path);
            }
            "streaming-threshold" => {
                self.streaming_threshold = Some(
                    value
                        .parse()
                        .expect("--streaming-threshold must be an integer"),
                );
            }
            "aggregator" => {
                let agg = calibre_fl::aggregate::Aggregator::parse_spec(value)
                    .unwrap_or_else(|e| panic!("bad --aggregator spec {value:?}: {e}"));
                self.aggregator = Some(agg);
            }
            _ => return false,
        }
        true
    }

    /// Applies the resilience flags to a run's federated configuration:
    /// `--chaos` replaces the (inactive by default) fault plan, and
    /// `--min-quorum` / `--aggregator` override the round policy. Flags
    /// that were not given leave `cfg` untouched.
    pub fn apply_fl(&self, cfg: &mut calibre_fl::FlConfig) {
        if let Some(plan) = &self.chaos {
            cfg.chaos = plan.clone();
        }
        if let Some(plan) = &self.attack {
            cfg.attack = plan.clone();
        }
        if let Some(detect) = self.detect {
            cfg.detect = detect;
        }
        if let Some(quorum) = self.min_quorum {
            cfg.policy.min_quorum = quorum;
        }
        if let Some(aggregator) = self.aggregator {
            cfg.policy.aggregator = aggregator;
        }
        if let Some(path) = self.round_path {
            cfg.streaming.path = path;
        }
        if let Some(threshold) = self.streaming_threshold {
            cfg.streaming.threshold = threshold;
        }
    }

    /// Whether any observability flag was given.
    pub fn any(&self) -> bool {
        self.telemetry.is_some()
            || self.trace.is_some()
            || self.profile.is_some()
            || self.metrics_addr.is_some()
    }

    /// Builds the live observability state: opens the JSONL sink, starts
    /// the metrics HTTP server when `--metrics-addr` was given, and
    /// installs the process-wide span collector when `--trace` or
    /// `--profile` was given.
    pub fn build(self) -> Obs {
        let hub = Arc::new(MetricsHub::new());
        // The hub must see events whenever anything renders from it — the
        // end-of-run summary (telemetry) or the live endpoints (metrics).
        let feed_hub = self.telemetry.is_some() || self.metrics_addr.is_some();
        let recorder: Box<dyn Recorder> = match (&self.telemetry, feed_hub) {
            (Some(path), _) => {
                let sink = JsonlSink::create(path)
                    .unwrap_or_else(|e| panic!("cannot create telemetry file {path}: {e}"));
                Box::new(
                    Fanout::new()
                        .with(Box::new(sink))
                        .with(Box::new(Arc::clone(&hub))),
                )
            }
            (None, true) => Box::new(Arc::clone(&hub)),
            (None, false) => Box::new(NullRecorder),
        };

        let server = self.metrics_addr.as_ref().map(|addr| {
            // Opt-in flips the process-wide registry on; without the flag
            // no instrumentation site records anything and training stays
            // bit-identical.
            calibre_telemetry::metrics::set_enabled(true);
            let server = MetricsServer::bind(addr, Arc::clone(&hub))
                .unwrap_or_else(|e| panic!("cannot start metrics server: {e}"));
            println!(
                "metrics: serving http://{0}/metrics and http://{0}/status",
                server.local_addr()
            );
            server
        });

        let trace = self
            .trace
            .map(|path| (Arc::new(TraceCollector::new()), path));
        let profile = self
            .profile
            .map(|path| (Arc::new(ProfileCollector::new()), path));
        if trace.is_some() || profile.is_some() {
            let mut fanout = SpanFanout::new();
            if let Some((collector, _)) = &trace {
                fanout = fanout.with(Arc::clone(collector) as Arc<dyn calibre_telemetry::SpanSink>);
            }
            if let Some((collector, _)) = &profile {
                fanout = fanout.with(Arc::clone(collector) as Arc<dyn calibre_telemetry::SpanSink>);
            }
            install_collector(Arc::new(fanout));
        }

        Obs {
            hub,
            recorder,
            telemetry: self.telemetry,
            trace,
            profile,
            server,
            metrics_snapshot: self.metrics_snapshot,
        }
    }
}

/// Live observability state for one bench run. Obtain via
/// [`ObsArgs::build`]; call [`Obs::finish`] exactly once at the end of the
/// run.
pub struct Obs {
    hub: Arc<MetricsHub>,
    recorder: Box<dyn Recorder>,
    telemetry: Option<String>,
    trace: Option<(Arc<TraceCollector>, String)>,
    profile: Option<(Arc<ProfileCollector>, String)>,
    server: Option<MetricsServer>,
    metrics_snapshot: Option<String>,
}

impl Obs {
    /// The recorder to hand to `*_observed` entry points. A `NullRecorder`
    /// unless `--telemetry` was given.
    pub fn recorder(&self) -> &dyn Recorder {
        self.recorder.as_ref()
    }

    /// The in-memory metrics hub fed by [`Obs::recorder`].
    pub fn hub(&self) -> &MetricsHub {
        &self.hub
    }

    /// The live metrics server's bound address (port 0 resolved), when
    /// `--metrics-addr` was given.
    pub fn metrics_addr(&self) -> Option<std::net::SocketAddr> {
        self.server.as_ref().map(MetricsServer::local_addr)
    }

    /// Ends the run: flushes the recorder, writes the final `/metrics`
    /// self-scrape if `--metrics-snapshot` asked for one, stops the metrics
    /// server, uninstalls the span collector, writes the trace/profile
    /// outputs and prints the telemetry summary.
    pub fn finish(mut self) {
        // Explicit flush (recorders also flush on drop, but an explicit
        // flush surfaces write failures while the run's output is still on
        // screen).
        self.recorder.flush();
        drop(self.recorder);

        // Self-scrape over real HTTP before the server goes down — the file
        // is exactly what an external scraper would have seen.
        if let (Some(path), Some(server)) = (&self.metrics_snapshot, &self.server) {
            match http_get(server.local_addr(), "/metrics") {
                Ok(body) => match std::fs::write(path, &body) {
                    Ok(()) => println!("wrote {path}"),
                    Err(e) => eprintln!("metrics snapshot write failed for {path}: {e}"),
                },
                Err(e) => eprintln!("metrics self-scrape failed: {e}"),
            }
        }
        if let Some(server) = &mut self.server {
            server.shutdown();
        }

        if self.trace.is_some() || self.profile.is_some() {
            uninstall_collector();
        }

        // One snapshot struct drives the console summary, the `/status`
        // endpoint, and the `calibre-obs` CLI — they cannot drift apart.
        if self.telemetry.is_some() || self.server.is_some() {
            println!();
            print!("{}", self.hub.snapshot().render_text());
        }
        if let Some(path) = &self.telemetry {
            println!("wrote {path}");
        }

        if let Some((collector, path)) = &self.trace {
            match collector.write_chrome_trace(path) {
                Ok(()) => println!("wrote {path} ({} trace events)", collector.len()),
                Err(e) => eprintln!("trace write failed for {path}: {e}"),
            }
        }

        if let Some((collector, path)) = &self.profile {
            let report = collector.report();
            println!("\n== hot-path profile (top {TOP_N} by self time) ==");
            print!("{}", report.top_self_table(TOP_N));
            if path != "-" {
                match std::fs::write(path, report.to_json()) {
                    Ok(()) => println!("wrote {path}"),
                    Err(e) => eprintln!("profile write failed for {path}: {e}"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_consumes_only_observability_flags() {
        let mut args = ObsArgs::default();
        assert!(args.accept("telemetry", "t.jsonl"));
        assert!(args.accept("trace", "t.json"));
        assert!(args.accept("profile", "-"));
        // "scalar" is the process default, so accepting it here is a no-op.
        assert!(args.accept("backend", "scalar"));
        assert!(!args.accept("scale", "smoke"));
        assert!(args.any());
        assert_eq!(args.telemetry.as_deref(), Some("t.jsonl"));
        assert_eq!(args.trace.as_deref(), Some("t.json"));
        assert_eq!(args.profile.as_deref(), Some("-"));
    }

    #[test]
    fn resilience_flags_are_parsed_and_applied() {
        let mut args = ObsArgs::default();
        assert!(args.accept("chaos", "drop=0.3,corrupt=0.1,seed=42"));
        assert!(args.accept("attack", "flip=0.1,scale=10:0.05,seed=7"));
        assert!(args.accept("detect", "true"));
        assert!(args.accept("min-quorum", "2"));
        assert!(args.accept("aggregator", "trimmed:0.1"));

        let mut cfg = calibre_fl::FlConfig::for_input(64);
        assert!(!cfg.chaos.is_active());
        assert!(!cfg.attack.is_active());
        args.apply_fl(&mut cfg);
        assert!(cfg.chaos.is_active());
        assert_eq!(cfg.chaos.drop_prob, 0.3);
        assert_eq!(cfg.chaos.seed, 42);
        assert!(cfg.attack.is_active());
        assert_eq!(cfg.attack.flip_prob, 0.1);
        assert_eq!(cfg.attack.scale_factor, 10.0);
        assert_eq!(cfg.attack.seed, 7);
        assert!(cfg.detect);
        assert_eq!(cfg.policy.min_quorum, 2);
        assert_eq!(
            cfg.policy.aggregator,
            calibre_fl::aggregate::Aggregator::TrimmedMean(0.1)
        );

        let mut args = ObsArgs::default();
        assert!(args.accept("round-path", "streaming"));
        assert!(args.accept("streaming-threshold", "8"));
        let mut cfg = calibre_fl::FlConfig::for_input(64);
        args.apply_fl(&mut cfg);
        assert_eq!(cfg.streaming.path, calibre_fl::RoundPath::Streaming);
        assert_eq!(cfg.streaming.threshold, 8);

        // Absent flags leave the config alone.
        let mut untouched = calibre_fl::FlConfig::for_input(64);
        let before = untouched.clone();
        ObsArgs::default().apply_fl(&mut untouched);
        assert_eq!(untouched, before);
    }

    #[test]
    fn default_args_build_an_inert_obs() {
        let obs = ObsArgs::default().build();
        // No collector must be installed when no flag asked for one.
        assert!(!calibre_telemetry::collector_installed());
        obs.recorder().personalize(0, 0.5);
        assert!(obs.hub().fairness_summary().is_none(), "NullRecorder path");
        assert!(obs.metrics_addr().is_none());
        obs.finish();
    }

    #[test]
    fn metrics_server_serves_live_and_writes_the_snapshot() {
        let mut args = ObsArgs::default();
        assert!(args.accept("metrics-addr", "127.0.0.1:0"));
        let snap_path = std::env::temp_dir().join("calibre_obs_test_metrics.prom");
        assert!(args.accept("metrics-snapshot", snap_path.to_str().unwrap()));
        assert!(args.any());

        let obs = args.build();
        // Without --telemetry the hub must still be fed — /status and
        // /metrics render from it.
        obs.recorder().personalize(0, 0.5);
        obs.recorder().personalize(1, 0.7);
        assert!(obs.hub().fairness_summary().is_some());

        let addr = obs.metrics_addr().expect("server must be running");
        let body = calibre_telemetry::export::http_get(addr, "/metrics").expect("live scrape");
        assert!(body.contains("calibre_fairness_accuracy_mean 0.6"));
        assert!(body.contains("calibre_fairness_clients 2"));
        let status = calibre_telemetry::export::http_get(addr, "/status").expect("status scrape");
        assert!(status.contains("\"fairness\":{\"num_clients\":2"));

        obs.finish();
        let written = std::fs::read_to_string(&snap_path).expect("snapshot file written");
        assert!(written.contains("calibre_fairness_worst_decile"));
        let _ = std::fs::remove_file(&snap_path);
    }
}
