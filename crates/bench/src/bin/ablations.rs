//! Ablation benches for the design choices DESIGN.md §6/§7 calls out:
//!
//! - `α` sweep around the paper's 0.3;
//! - prototype count `K_r` sweep;
//! - divergence-aware aggregation vs plain FedAvg aggregation;
//! - α warmup on/off;
//! - `L_n` form: pull-only (our default) vs the InfoNCE/contrastive form
//!   (Algorithm 1's literal reading);
//! - extended fairness metrics (Jain index, worst-decile mean) alongside the
//!   paper's variance.
//!
//! ```text
//! cargo run -p calibre-bench --release --bin ablations -- \
//!     [--scale smoke|default] [--dataset cifar10|stl10] [--seed 7] \
//!     [--telemetry out.jsonl] [--trace out.json] [--profile prof.json]
//! ```
//!
//! The shared observability flags stream round-level JSONL events (all
//! variants concatenated) and capture the span layer; a fairness summary
//! over every variant's personalizations is printed at the end (see
//! `calibre_bench::obs`).

use calibre::{run_calibre_observed, CalibreConfig};
use calibre_bench::obs::ObsArgs;
use calibre_bench::{build_dataset, parse_args, DatasetId, Scale, Setting};
use calibre_data::AugmentConfig;
use calibre_fl::{jain_index, worst_fraction_mean};
use calibre_ssl::SslKind;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("argument error: {e}");
            std::process::exit(2);
        }
    };
    let mut scale = Scale::Default;
    let mut dataset = DatasetId::Stl10;
    let mut seed = 7u64;
    let mut obs_args = ObsArgs::default();
    for (key, value) in parsed {
        if obs_args.accept(&key, &value) {
            continue;
        }
        match key.as_str() {
            "scale" => scale = Scale::parse(&value).unwrap_or_else(|| panic!("bad scale {value}")),
            "dataset" => {
                dataset = DatasetId::parse(&value).unwrap_or_else(|| panic!("bad dataset {value}"))
            }
            "seed" => seed = value.parse().expect("seed must be an integer"),
            other => {
                eprintln!("unknown flag --{other}");
                std::process::exit(2);
            }
        }
    }
    let fed = build_dataset(dataset, Setting::DirichletNonIid, scale, 0, seed);
    let mut cfg = scale.fl_config(seed);
    obs_args.apply_fl(&mut cfg);
    let cfg = cfg;
    let obs = obs_args.build();
    let aug = AugmentConfig::default();
    let base = CalibreConfig {
        warmup_rounds: cfg.rounds / 2,
        ..CalibreConfig::default()
    };

    let variants: Vec<(String, CalibreConfig)> = vec![
        ("baseline (paper defaults)".into(), base),
        // α sweep
        ("alpha=0.1".into(), CalibreConfig { alpha: 0.1, ..base }),
        ("alpha=0.6".into(), CalibreConfig { alpha: 0.6, ..base }),
        ("alpha=1.0".into(), CalibreConfig { alpha: 1.0, ..base }),
        // K_r sweep
        (
            "K_r=4".into(),
            CalibreConfig {
                num_prototypes: 4,
                ..base
            },
        ),
        (
            "K_r=16".into(),
            CalibreConfig {
                num_prototypes: 16,
                ..base
            },
        ),
        (
            "K_r adaptive".into(),
            CalibreConfig {
                adaptive_k: true,
                ..base
            },
        ),
        // aggregation
        (
            "no divergence-aware agg".into(),
            CalibreConfig {
                divergence_aware_aggregation: false,
                ..base
            },
        ),
        // warmup
        (
            "no warmup".into(),
            CalibreConfig {
                warmup_rounds: 0,
                ..base
            },
        ),
        // L_n form
        (
            "L_n contrastive (Alg.1 literal)".into(),
            CalibreConfig {
                ln_contrastive: true,
                ..base
            },
        ),
    ];

    println!(
        "== Calibre (SimCLR) design ablations on {} / {} ==",
        dataset.name(),
        Setting::DirichletNonIid.name()
    );
    println!(
        "{:<34} {:>9} {:>10} {:>8} {:>12}",
        "variant", "mean(%)", "variance", "Jain", "worst-10%(%)"
    );
    let mut csv_rows = Vec::new();
    for (name, ccfg) in variants {
        let start = std::time::Instant::now();
        let result = run_calibre_observed(&fed, &cfg, SslKind::SimClr, &ccfg, &aug, obs.recorder());
        let jain = jain_index(&result.seen.accuracies);
        let worst = worst_fraction_mean(&result.seen.accuracies, 0.1);
        println!(
            "{:<34} {:>9.2} {:>10.5} {:>8.4} {:>12.2}   ({:.1?})",
            name,
            result.stats().mean_percent(),
            result.stats().variance,
            jain,
            worst * 100.0,
            start.elapsed()
        );
        csv_rows.push(format!(
            "{},{},{},{},{}",
            name.replace(',', ";"),
            result.stats().mean,
            result.stats().variance,
            jain,
            worst
        ));
    }
    std::fs::create_dir_all("results").expect("create results dir");
    let mut f = std::io::BufWriter::new(
        std::fs::File::create("results/ablations.csv").expect("create csv"),
    );
    writeln!(f, "variant,mean,variance,jain,worst_decile").unwrap();
    for row in csv_rows {
        writeln!(f, "{row}").unwrap();
    }
    println!("\nwrote results/ablations.csv");
    obs.finish();
}
