//! Massive-cohort scaling sweep: streaming rounds over 1k → 100k simulated
//! clients on a small real worker pool.
//!
//! Each sweep point samples a cohort from a twice-as-large population with a
//! seeded [`Sampler`], runs `--rounds` streaming rounds through
//! [`RoundScheduler::run_round_streaming`] (updates are synthesized per
//! client — no real SSL training, this measures the *aggregation path*),
//! and reports rounds/sec plus the peak bytes the aggregation path held.
//! The point of the sweep: peak aggregation memory stays O(model) — flat
//! across cohort sizes — instead of the O(cohort × model) a
//! collect-then-aggregate round pays. See `DESIGN.md` §11 and the
//! "Massive cohorts" section of `EXPERIMENTS.md`.
//!
//! ```text
//! cohort [--smoke] [--cohorts 1000,10000,100000] [--rounds 5] [--dim 1024]
//!        [--wave 64] [--groups 0] [--sampler uniform|importance|divergence]
//!        [--chaos <spec>] [--min-quorum n] [--aggregator weighted|median|trimmed[:r]]
//!        [--telemetry out.jsonl] [--trace t.json] [--profile p.json]
//!        [--metrics-addr host:port] [--metrics-snapshot out.prom]
//! ```
//!
//! `--smoke` runs a reduced sweep and asserts the committed peak-memory
//! bound — the CI step that keeps the streaming path honest — plus a
//! reservoir-sink gate that holds the *corrected* accounting (sample
//! buffer included) to a shape-derived bound. `--mega` runs a single
//! non-gating 1M-client round (one point, no committed bound — it exists
//! to record the million-client peak-memory row in `EXPERIMENTS.md`).
//! `--metrics-addr` serves `/metrics` and `/status` live while the sweep
//! runs; `--metrics-snapshot` writes a final self-scrape of `/metrics` to
//! a file.

use calibre_bench::obs::ObsArgs;
use calibre_bench::parse_args;
use calibre_fl::aggregate::{HierarchicalSink, ReservoirSink, UpdateSink};
use calibre_fl::sampler::{Sampler, SamplerKind};
use calibre_fl::scheduler::RoundScheduler;
use calibre_telemetry::metrics;
use std::time::Instant;

/// Committed peak-memory bound for the smoke sweep (`--smoke`), in bytes:
/// sink state + quorum buffer + one in-flight wave for the smoke shape
/// (dim 256, wave 64), with headroom for struct overhead. CI fails if the
/// streaming path regresses past this.
const SMOKE_PEAK_BOUND_BYTES: usize = 256 * 1024;

/// Peak resident set size of this process in bytes (Linux `VmHWM`), 0 when
/// the platform does not expose it.
fn peak_rss_bytes() -> u64 {
    std::fs::read_to_string("/proc/self/status")
        .ok()
        .and_then(|s| {
            s.lines().find_map(|l| {
                let rest = l.strip_prefix("VmHWM:")?;
                let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
                Some(kb * 1024)
            })
        })
        .unwrap_or(0)
}

/// Deterministic simulated update: a cheap splitmix64-seeded fill, so the
/// sweep measures the aggregation path, not an RNG.
fn simulated_update(round: usize, client: usize, dim: usize) -> (Vec<f32>, f32) {
    let mut x = (round as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(client as u64)
        .wrapping_mul(0xBF58_476D_1CE4_E5B9)
        | 1;
    let mut update = Vec::with_capacity(dim);
    for _ in 0..dim {
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        // Map the top 24 bits into [-1, 1).
        update.push((x >> 40) as f32 / (1u64 << 23) as f32 - 1.0);
    }
    let weight = 1.0 + (client % 16) as f32;
    (update, weight)
}

/// Smoke-only gate for the *corrected* reservoir accounting: the sink's
/// retained sample buffer is real aggregation state, so `state_bytes` now
/// counts its capacity. The peak must stay flat across cohort sizes and
/// under a bound derived purely from the sink shape — `capacity` retained
/// samples plus their spine, the weight buffer, one in-flight wave, and
/// fixed headroom for struct overhead. A cohort-sized term appearing here
/// means the reservoir started scaling with the cohort again.
fn reservoir_gate(sweep: &SweepConfig) {
    let capacity = sweep.wave * 4;
    let sample_bytes = capacity * sweep.dim * std::mem::size_of::<f32>();
    let spine_bytes = capacity * std::mem::size_of::<Vec<f32>>();
    let weight_bytes = (capacity + 1) * std::mem::size_of::<f32>();
    let wave_bytes = sweep.wave * sweep.dim * std::mem::size_of::<f32>();
    let bound = sample_bytes + spine_bytes + weight_bytes + wave_bytes + 64 * 1024;

    let mut peaks: Vec<usize> = Vec::new();
    for &cohort in &[1_000usize, 5_000] {
        let scheduler = RoundScheduler::sampled(
            Sampler::new(sweep.sampler, sweep.seed),
            cohort * 2,
            cohort,
            1,
        );
        let selected = scheduler.select(0, None);
        let mut sink = ReservoirSink::trimmed(0.1, capacity, sweep.seed);
        let out = scheduler.run_round_streaming(
            0,
            &selected,
            sweep.wave,
            &mut sink,
            |client| simulated_update(0, client, sweep.dim),
            &calibre_telemetry::NullRecorder,
        );
        peaks.push(out.peak_state_bytes);
    }
    let (min_peak, max_peak) = match (peaks.iter().min(), peaks.iter().max()) {
        (Some(&lo), Some(&hi)) => (lo, hi),
        _ => unreachable!("gate always runs at least one cohort"),
    };
    assert_eq!(
        min_peak, max_peak,
        "reservoir peak must be flat across cohort sizes, got {peaks:?}"
    );
    assert!(
        max_peak <= bound,
        "reservoir peak {max_peak} B exceeds the shape-derived bound {bound} B \
         (capacity {capacity}, dim {})",
        sweep.dim
    );
    println!("reservoir gate: corrected peak {max_peak} B <= shape bound {bound} B, flat");
}

struct SweepConfig {
    cohorts: Vec<usize>,
    rounds: usize,
    dim: usize,
    wave: usize,
    groups: usize,
    sampler: SamplerKind,
    seed: u64,
    smoke: bool,
}

fn main() {
    let mut argv: Vec<String> = std::env::args().skip(1).collect();
    let smoke = argv.iter().any(|a| a == "--smoke");
    argv.retain(|a| a != "--smoke");
    let mega = argv.iter().any(|a| a == "--mega");
    argv.retain(|a| a != "--mega");

    let mut sweep = SweepConfig {
        cohorts: if mega {
            // Non-gating million-client point: one round, no committed
            // bound — the flatness claim is carried by the regular sweep.
            vec![1_000_000]
        } else if smoke {
            vec![1_000, 5_000, 10_000]
        } else {
            vec![1_000, 10_000, 100_000]
        },
        rounds: if mega {
            1
        } else if smoke {
            2
        } else {
            5
        },
        dim: if smoke { 256 } else { 1_024 },
        wave: 64,
        groups: 0,
        sampler: SamplerKind::Uniform,
        seed: 7,
        smoke,
    };
    let mut obs_args = ObsArgs::default();
    for (key, value) in parse_args(&argv).unwrap_or_else(|e| panic!("argument error: {e}")) {
        if obs_args.accept(&key, &value) {
            continue;
        }
        match key.as_str() {
            "cohorts" => {
                sweep.cohorts = value
                    .split(',')
                    .map(|c| c.trim().parse().expect("--cohorts must be integers"))
                    .collect();
            }
            "rounds" => sweep.rounds = value.parse().expect("--rounds must be an integer"),
            "dim" => sweep.dim = value.parse().expect("--dim must be an integer"),
            "wave" => sweep.wave = value.parse().expect("--wave must be an integer"),
            "groups" => sweep.groups = value.parse().expect("--groups must be an integer"),
            "sampler" => {
                sweep.sampler = SamplerKind::parse(&value).unwrap_or_else(|| {
                    panic!("unknown --sampler {value:?} (uniform|importance|divergence)")
                });
            }
            "seed" => sweep.seed = value.parse().expect("--seed must be an integer"),
            other => {
                eprintln!("unknown flag --{other}");
                std::process::exit(2);
            }
        }
    }

    let obs = obs_args.clone().build();
    println!(
        "== cohort scaling sweep: dim {}, wave {}, {} rounds/point, sampler {}, groups {} ==",
        sweep.dim,
        sweep.wave,
        sweep.rounds,
        sweep.sampler.name(),
        sweep.groups
    );
    println!(
        "{:>10} {:>9} {:>9} {:>12} {:>16} {:>12}",
        "cohort", "accepted", "dropped", "rounds/sec", "peak-agg-bytes", "peak-rss-MiB"
    );

    let mut peaks: Vec<usize> = Vec::with_capacity(sweep.cohorts.len());
    for &cohort in &sweep.cohorts {
        // Sampling composes with streaming: each round draws `cohort`
        // clients from a population twice that size.
        let population = cohort * 2;
        let mut scheduler = RoundScheduler::sampled(
            Sampler::new(sweep.sampler, sweep.seed),
            population,
            cohort,
            sweep.rounds,
        );
        if let Some(plan) = &obs_args.chaos {
            scheduler = scheduler.with_chaos(plan.clone(), sweep.seed);
        }
        let mut policy = *scheduler.policy();
        if let Some(q) = obs_args.min_quorum {
            policy.min_quorum = q;
        }
        if let Some(agg) = obs_args.aggregator {
            policy.aggregator = agg;
        }
        let scheduler = scheduler.with_policy(policy);

        let mut peak_state = 0usize;
        let mut accepted = 0usize;
        let mut dropped = 0usize;
        let dim = sweep.dim;
        let started = Instant::now();
        for round in 0..scheduler.rounds() {
            let selected = scheduler.select(round, None);
            let mut sink: Box<dyn UpdateSink + Send> = if sweep.groups > 0 {
                Box::new(HierarchicalSink::new(sweep.groups, sweep.seed))
            } else {
                // Reservoir capacity for the robust variants: bounded, far
                // below the cohort.
                policy.aggregator.sink(sweep.wave * 4, sweep.seed)
            };
            let out = scheduler.run_round_streaming(
                round,
                &selected,
                sweep.wave,
                sink.as_mut(),
                |client| simulated_update(round, client, dim),
                obs.recorder(),
            );
            peak_state = peak_state.max(out.peak_state_bytes);
            accepted += out.accepted;
            dropped += out.dropped + out.rejected;
            assert_eq!(
                out.accepted + out.dropped + out.rejected,
                out.cohort,
                "every selected client must be accounted for"
            );
        }
        let elapsed = started.elapsed().as_secs_f64();
        let rounds_per_sec = sweep.rounds as f64 / elapsed.max(1e-9);
        let rss = peak_rss_bytes();
        obs.recorder().cohort_point(
            cohort,
            sweep.dim,
            sweep.groups,
            sweep.rounds,
            rounds_per_sec,
            peak_state as u64,
            rss,
        );
        println!(
            "{:>10} {:>9} {:>9} {:>12.2} {:>16} {:>12.1}",
            cohort,
            accepted,
            dropped,
            rounds_per_sec,
            peak_state,
            rss as f64 / (1024.0 * 1024.0)
        );
        // Live-export view of the sweep (inert without --metrics-addr).
        let cohort_label = cohort.to_string();
        metrics::gauge_set(
            "calibre_cohort_rounds_per_sec",
            &[("cohort", &cohort_label)],
            rounds_per_sec,
        );
        metrics::gauge_max("calibre_cohort_peak_state_bytes", &[], peak_state as f64);
        peaks.push(peak_state);
    }

    // The scaling claim itself: peak aggregation memory does not grow with
    // the cohort. Every sweep shape (same dim/wave/groups per run) must
    // hold it, smoke or full.
    if let (Some(&min_peak), Some(&max_peak)) = (peaks.iter().min(), peaks.iter().max()) {
        assert!(
            max_peak == min_peak,
            "peak aggregation memory must be flat across cohort sizes, got {peaks:?}"
        );
        if sweep.smoke {
            assert!(
                max_peak <= SMOKE_PEAK_BOUND_BYTES,
                "smoke peak {max_peak} B exceeds the committed bound {SMOKE_PEAK_BOUND_BYTES} B"
            );
            println!(
                "smoke gate: peak {max_peak} B <= committed bound {SMOKE_PEAK_BOUND_BYTES} B, \
                 flat across {:?}",
                sweep.cohorts
            );
        }
    }

    if sweep.smoke {
        reservoir_gate(&sweep);
    }

    obs.finish();
}
