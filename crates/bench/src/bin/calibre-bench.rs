//! The perf-regression gate: records and checks hot-path profiles.
//!
//! ```text
//! # (re)record the committed baseline from the built-in smoke workload
//! cargo run -p calibre-bench --release --bin calibre-bench -- baseline \
//!     [--out results/bench_baseline.json] [--seed 7]
//!
//! # profile the same workload and compare against the baseline
//! cargo run -p calibre-bench --release --bin calibre-bench -- regression \
//!     [--baseline results/bench_baseline.json] [--current prof.json] \
//!     [--threshold-pct 50] [--min-share-pts 2] [--runs 3] [--seed 7]
//! ```
//!
//! Both subcommands profile a smoke-scale Calibre (SimCLR) run — the same
//! code path as `fig3`/`convergence`, small enough for CI — `--runs` times,
//! keeping the quietest run to damp scheduler noise. `regression` instead
//! reads a profile JSON (as written by `--profile <path>` or the `baseline`
//! subcommand) when `--current` is given.
//!
//! Raw self-times are useless across machines, so the gate compares each
//! span's **share** of total self time. A span regresses when its share
//! grows by more than `--threshold-pct` percent relative *and* by more than
//! `--min-share-pts` percentage points absolute (the floor keeps micro-spans
//! from tripping the gate on noise). Any regression exits 1; a missing
//! baseline warns and exits 0 so fresh checkouts do not fail.

use calibre_bench::obs::ObsArgs;
use calibre_bench::{build_dataset, parse_args, run_method_observed, DatasetId, MethodId};
use calibre_bench::{Scale, Setting};
use calibre_ssl::SslKind;
use calibre_telemetry::{
    install_collector, uninstall_collector, JsonValue, NullRecorder, ProfileCollector,
    ProfileReport,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Per-span numbers the gate actually compares.
struct SpanRow {
    calls: u64,
    self_us: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: calibre-bench <baseline|regression> [--out p] [--baseline p] \
         [--current p] [--threshold-pct n] [--min-share-pts n] [--runs n] [--seed n] \
         [--backend scalar|blocked] [--chaos spec] [--min-quorum n] [--aggregator name]"
    );
    std::process::exit(2);
}

/// Runs the built-in smoke workload under the profiler `runs` times and
/// keeps the quietest run (smallest total self time) — scheduler noise only
/// ever inflates timings, so the minimum is the most repeatable estimate.
fn profiled_smoke_run(seed: u64, runs: usize, fl_overrides: &ObsArgs) -> ProfileReport {
    let fed = build_dataset(
        DatasetId::Cifar10,
        Setting::DirichletNonIid,
        Scale::Smoke,
        0,
        seed,
    );
    let mut cfg = Scale::Smoke.fl_config(seed);
    fl_overrides.apply_fl(&mut cfg);
    let cfg = cfg;
    let mut best: Option<ProfileReport> = None;
    for run in 0..runs.max(1) {
        let collector = Arc::new(ProfileCollector::new());
        install_collector(Arc::clone(&collector) as Arc<dyn calibre_telemetry::SpanSink>);
        let result = run_method_observed(
            MethodId::Calibre(SslKind::SimClr),
            &fed,
            &cfg,
            &NullRecorder,
        );
        uninstall_collector();
        let report = collector.report();
        eprintln!(
            "[calibre-bench] smoke run {}/{}: {} mean accuracy {:.2}%, {:.1} ms instrumented self time",
            run + 1,
            runs.max(1),
            result.name,
            result.stats().mean_percent(),
            report.total_self_us() / 1e3
        );
        if best
            .as_ref()
            .is_none_or(|b| report.total_self_us() < b.total_self_us())
        {
            best = Some(report);
        }
    }
    best.expect("at least one profiled run")
}

/// Loads a profile JSON (`{"spans":[{"name":...,"self_us":...},...]}`) into
/// name → row form.
fn load_profile(text: &str, what: &str) -> BTreeMap<String, SpanRow> {
    let value = JsonValue::parse(text).unwrap_or_else(|e| panic!("invalid {what} JSON: {e}"));
    let spans = value
        .get("spans")
        .and_then(JsonValue::as_array)
        .unwrap_or_else(|| panic!("{what}: missing \"spans\" array"));
    let mut out = BTreeMap::new();
    for span in spans {
        let name = span
            .get("name")
            .and_then(JsonValue::as_str)
            .unwrap_or_else(|| panic!("{what}: span without a name"));
        let self_us = span
            .get("self_us")
            .and_then(JsonValue::as_f64)
            .unwrap_or(0.0);
        let calls = span.get("calls").and_then(JsonValue::as_i64).unwrap_or(0) as u64;
        out.insert(name.to_string(), SpanRow { calls, self_us });
    }
    out
}

fn total_self(profile: &BTreeMap<String, SpanRow>) -> f64 {
    profile.values().map(|r| r.self_us).sum::<f64>().max(1e-9)
}

fn main() {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args[0].starts_with("--") {
        usage();
    }
    let subcommand = args.remove(0);
    let parsed = match parse_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("argument error: {e}");
            usage();
        }
    };
    let mut baseline_path = "results/bench_baseline.json".to_string();
    let mut out_path = "results/bench_baseline.json".to_string();
    let mut current_path: Option<String> = None;
    let mut threshold_pct = 50.0f64;
    let mut min_share_pts = 2.0f64;
    let mut runs = 3usize;
    let mut seed = 7u64;
    let mut fl_overrides = ObsArgs::default();
    for (key, value) in parsed {
        match key.as_str() {
            "chaos" | "min-quorum" | "aggregator" => {
                fl_overrides.accept(&key, &value);
            }
            "baseline" => baseline_path = value,
            "out" => out_path = value,
            "current" => current_path = Some(value),
            "threshold-pct" => threshold_pct = value.parse().expect("--threshold-pct: a number"),
            "min-share-pts" => min_share_pts = value.parse().expect("--min-share-pts: a number"),
            "runs" => runs = value.parse().expect("--runs must be an integer"),
            "seed" => seed = value.parse().expect("seed must be an integer"),
            "backend" => {
                let be = calibre_tensor::backend::backend_by_name(&value).unwrap_or_else(|| {
                    panic!("unknown --backend {value:?} (expected \"scalar\" or \"blocked\")")
                });
                calibre_tensor::backend::set_global_backend(be);
            }
            other => {
                eprintln!("unknown flag --{other}");
                usage();
            }
        }
    }

    match subcommand.as_str() {
        "baseline" => {
            let report = profiled_smoke_run(seed, runs, &fl_overrides);
            if let Some(parent) = std::path::Path::new(&out_path).parent() {
                std::fs::create_dir_all(parent).expect("create output dir");
            }
            std::fs::write(&out_path, report.to_json()).expect("write baseline");
            print!("{}", report.top_self_table(15));
            println!("wrote {out_path}");
        }
        "regression" => {
            let baseline_text = match std::fs::read_to_string(&baseline_path) {
                Ok(t) => t,
                Err(e) => {
                    eprintln!(
                        "[calibre-bench] no baseline at {baseline_path} ({e}); \
                         run `calibre-bench baseline` to record one. Passing."
                    );
                    return;
                }
            };
            let baseline = load_profile(&baseline_text, "baseline");
            let current = match &current_path {
                Some(path) => {
                    let text = std::fs::read_to_string(path)
                        .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                    load_profile(&text, "current")
                }
                None => load_profile(
                    &profiled_smoke_run(seed, runs, &fl_overrides).to_json(),
                    "current",
                ),
            };

            let base_total = total_self(&baseline);
            let cur_total = total_self(&current);
            let mut regressions = Vec::new();
            println!(
                "{:<24} {:>8} {:>8} {:>9} {:>9} {:>8}  verdict",
                "span", "base ms", "cur ms", "base %", "cur %", "Δ pts"
            );
            for (name, base) in &baseline {
                let cur = match current.get(name) {
                    Some(c) => c,
                    None => {
                        println!(
                            "{:<24} {:>8.1} {:>8} {:>8.1}% {:>9} {:>8}  gone (ok)",
                            name,
                            base.self_us / 1e3,
                            "-",
                            100.0 * base.self_us / base_total,
                            "-",
                            "-"
                        );
                        continue;
                    }
                };
                let base_share = 100.0 * base.self_us / base_total;
                let cur_share = 100.0 * cur.self_us / cur_total;
                let delta = cur_share - base_share;
                let regressed =
                    cur_share > base_share * (1.0 + threshold_pct / 100.0) && delta > min_share_pts;
                println!(
                    "{:<24} {:>8.1} {:>8.1} {:>8.1}% {:>8.1}% {:>+8.1}  {}",
                    name,
                    base.self_us / 1e3,
                    cur.self_us / 1e3,
                    base_share,
                    cur_share,
                    delta,
                    if regressed { "REGRESSED" } else { "ok" }
                );
                if regressed {
                    regressions.push((name.clone(), base_share, cur_share, cur.calls));
                }
            }
            for name in current.keys().filter(|n| !baseline.contains_key(*n)) {
                println!("{name:<24} (new span, not in baseline — ok)");
            }
            if regressions.is_empty() {
                println!(
                    "\nno self-time-share regression beyond {threshold_pct}% \
                     (floor {min_share_pts} pts) against {baseline_path}"
                );
            } else {
                eprintln!("\n{} span(s) regressed:", regressions.len());
                for (name, base_share, cur_share, calls) in &regressions {
                    eprintln!(
                        "  {name}: self-time share {base_share:.1}% -> {cur_share:.1}% \
                         over {calls} calls"
                    );
                }
                std::process::exit(1);
            }
        }
        _ => usage(),
    }
}
