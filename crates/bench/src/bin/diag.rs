//! Representation-quality diagnostic: probe accuracy + cluster metrics for
//! a random encoder vs pFL-SimCLR vs Calibre (SimCLR). Not a paper figure —
//! a tuning tool for the reproduction itself.

use calibre_bench::obs::ObsArgs;
use calibre_bench::{build_dataset, parse_args, run_method, DatasetId, MethodId, Scale, Setting};
use calibre_cluster::silhouette_score;
use calibre_fl::personalize_cohort;
use calibre_ssl::SslKind;
use calibre_tensor::nn::{Activation, Mlp};
use calibre_tensor::{rng, Matrix};

fn main() {
    // First positional argument (if any) is the scale; the rest are the
    // shared `--key value` flags (`--chaos`, `--min-quorum`, `--backend`, …).
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let (scale_arg, flags) = match argv.first() {
        Some(first) if !first.starts_with("--") => (Some(first.clone()), &argv[1..]),
        _ => (None, &argv[..]),
    };
    let scale = match scale_arg.as_deref() {
        Some("default") | None => Scale::Default,
        Some("smoke") => Scale::Smoke,
        Some(other) => panic!("bad scale {other}"),
    };
    let mut fl_overrides = ObsArgs::default();
    for (key, value) in parse_args(flags).unwrap_or_else(|e| panic!("argument error: {e}")) {
        if !fl_overrides.accept(&key, &value) {
            eprintln!("unknown flag --{key}");
            std::process::exit(2);
        }
    }
    for setting in [Setting::QuantityNonIid, Setting::DirichletNonIid] {
        let fed = build_dataset(DatasetId::Cifar10, setting, scale, 0, 7);
        let mut cfg = scale.fl_config(7);
        fl_overrides.apply_fl(&mut cfg);
        let cfg = cfg;

        // Pool of samples for feature metrics.
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for id in 0..fed.num_clients().min(6) {
            for s in fed.client(id).train.iter().take(30) {
                rows.push(fed.generator().render(s));
                labels.push(s.expect_label());
            }
        }
        let obs = Matrix::from_rows(&rows);

        let report = |name: &str, encoder: &Mlp| {
            let outcome = personalize_cohort(encoder, &fed, 10, &cfg.probe);
            let feats = encoder.infer(&obs);
            let sil = silhouette_score(&feats, &labels);
            let sil_raw = silhouette_score(&obs, &labels);
            println!(
                "{:<14} {:<18} probe mean {:>6.2}% var {:.5}  feat-silhouette {:>6.3} (raw obs {:>6.3})",
                setting.name(),
                name,
                outcome.stats.mean_percent(),
                outcome.stats.variance,
                sil,
                sil_raw,
            );
        };

        let mut r = rng::seeded(0);
        let random_encoder = Mlp::new(&cfg.ssl.encoder_layer_dims(), Activation::Relu, &mut r);
        report("random", &random_encoder);
        let pfl = run_method(MethodId::PflSsl(SslKind::SimClr), &fed, &cfg);
        report("pFL-SimCLR", &pfl.encoder);
        let cal = run_method(MethodId::Calibre(SslKind::SimClr), &fed, &cfg);
        report("Calibre-SimCLR", &cal.encoder);

        // Hyperparameter sweep of the calibration terms.
        for &k in &[3usize, 5, 10] {
            for &alpha in &[0.3f32, 1.0, 3.0] {
                let ccfg = calibre::CalibreConfig {
                    alpha,
                    num_prototypes: k,
                    ..Default::default()
                };
                let result = calibre::run_calibre(
                    &fed,
                    &cfg,
                    SslKind::SimClr,
                    &ccfg,
                    &calibre_data::AugmentConfig::default(),
                );
                report(&format!("Cal k={k} a={alpha}"), &result.encoder);
            }
        }
    }
}
