//! `calibre-serve` — round orchestration over the wire protocol.
//!
//! Binds a listener, registers the full client population, drives the
//! federated rounds through `calibre_fl::serve::run_server`, and prints
//! the final model fingerprint:
//!
//! ```text
//! calibre-serve --smoke true --addr 127.0.0.1:7461 \
//!     --chaos net-drop=0.25,net-delay=0.2,net-truncate=0.1,net-churn=0.2 \
//!     --check-golden true
//! ```
//!
//! Flags:
//!
//! - `--smoke true` — the CI loopback configuration (4 clients, cohort 3,
//!   3 rounds); individual `--population/--cohort/--rounds/--dim/--wave/`
//!   `--seed/--min-quorum` flags override it or build a config from the
//!   defaults;
//! - `--addr <host:port>` — TCP listen address (default `127.0.0.1:0`,
//!   printed once bound); `--uds <path>` serves a Unix socket instead;
//! - `--chaos <spec>` — combined fault spec: classic client keys
//!   (`drop=`, `corrupt=`, …) go to the scheduler, `net-*` keys
//!   (`net-drop=`, `net-delay=`, `net-delay-ms=`, `net-truncate=`,
//!   `net-partition=`, `net-churn=`) to the wire injector;
//! - `--attack <spec>` — seeded Byzantine-client simulation, e.g.
//!   `flip=0.1,scale=10:0.05,replace=0.05,noise=0.1,collude=0.1,seed=7`
//!   (applied identically on every transport);
//! - `--detect true` — anomaly detection + quarantine (quarantined clients
//!   stop being sampled; reputation persists through `--checkpoint`);
//! - `--aggregator <name>` — defense-grade aggregation:
//!   `weighted|median|trimmed[:r]|krum[:f]|multi-krum:f:m|geomedian|normbound:max|clip:tau`;
//! - `--check-golden true` — also run the identical config in-process and
//!   exit non-zero unless the socket run's final model is bit-identical;
//! - `--checkpoint <path>` — crash-safe server checkpoint;
//! - the shared observability flags (`--metrics-addr`,
//!   `--metrics-snapshot`, `--telemetry`, …).

use calibre_bench::obs::ObsArgs;
use calibre_bench::parse_args;
use calibre_fl::chaos::parse_combined_spec;
use calibre_fl::serve::{run_in_process, run_server, ServeConfig};
use calibre_fl::Listener;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_args(&args).unwrap_or_else(|e| panic!("bad arguments: {e}"));

    let mut cfg = ServeConfig::smoke();
    let mut smoke = false;
    let mut addr = "127.0.0.1:0".to_string();
    let mut uds: Option<String> = None;
    let mut check_golden = false;
    let mut obs_args = ObsArgs::default();
    for (key, value) in &parsed {
        match key.as_str() {
            "smoke" => smoke = value == "true",
            "addr" => addr = value.clone(),
            "uds" => uds = Some(value.clone()),
            "population" => cfg.population = value.parse().expect("--population"),
            "cohort" => cfg.cohort = value.parse().expect("--cohort"),
            "rounds" => cfg.rounds = value.parse().expect("--rounds"),
            "dim" => cfg.dim = value.parse().expect("--dim"),
            "wave" => cfg.wave = value.parse().expect("--wave"),
            "seed" => cfg.seed = value.parse().expect("--seed"),
            "min-quorum" => cfg.policy.min_quorum = value.parse().expect("--min-quorum"),
            "check-golden" => check_golden = value == "true",
            "checkpoint" => cfg.checkpoint = Some(value.into()),
            "register-patience-ms" => {
                cfg.net.register_patience = value.parse().expect("--register-patience-ms");
            }
            "chaos" => {
                let (client, wire) = parse_combined_spec(value)
                    .unwrap_or_else(|e| panic!("bad --chaos spec {value:?}: {e}"));
                cfg.chaos = client;
                cfg.wire = wire;
            }
            "attack" => {
                cfg.attack = calibre_fl::AttackPlan::parse(value)
                    .unwrap_or_else(|e| panic!("bad --attack spec {value:?}: {e}"));
            }
            "detect" => cfg.detect = value == "true",
            "aggregator" => {
                cfg.policy.aggregator = calibre_fl::aggregate::Aggregator::parse_spec(value)
                    .unwrap_or_else(|e| panic!("bad --aggregator spec {value:?}: {e}"));
            }
            _ => {
                if !obs_args.accept(key, value) {
                    panic!("unknown flag --{key}");
                }
            }
        }
    }
    let _ = smoke; // --smoke selects the defaults, which already are smoke()

    // Real processes start at different times; be generous about assembly.
    cfg.net.register_patience = cfg.net.register_patience.max(30_000);

    let obs = obs_args.build();
    println!(
        "serve: population={} cohort={} rounds={} dim={} wave={} seed={:#x} quorum={}",
        cfg.population, cfg.cohort, cfg.rounds, cfg.dim, cfg.wave, cfg.seed, cfg.policy.min_quorum
    );
    if cfg.chaos.is_active() || cfg.wire.is_active() {
        println!(
            "serve: chaos active (client={}, wire={})",
            cfg.chaos.is_active(),
            cfg.wire.is_active()
        );
    }
    if cfg.attack.is_active() || cfg.detect {
        println!(
            "serve: adversary simulation (attack={}, detect={}, aggregator={})",
            cfg.attack.is_active(),
            cfg.detect,
            cfg.policy.aggregator.name()
        );
    }

    let listener = match &uds {
        Some(path) => {
            let _ = std::fs::remove_file(path);
            Listener::bind_uds(std::path::Path::new(path))
        }
        None => Listener::bind_tcp(&addr),
    }
    .unwrap_or_else(|e| panic!("cannot bind: {e}"));
    println!("serving on {}", listener.local_addr());

    let outcome =
        run_server(&cfg, listener, obs.recorder()).unwrap_or_else(|e| panic!("serve failed: {e}"));
    println!(
        "rounds={} accepted={} dropped={} skipped={}",
        outcome.rounds_run, outcome.accepted_total, outcome.dropped_total, outcome.skipped_rounds
    );
    println!("final model checksum {:016x}", outcome.checksum);

    let mut ok = true;
    if check_golden {
        let mut golden_cfg = cfg;
        golden_cfg.checkpoint = None;
        let golden = run_in_process(&golden_cfg, &calibre_telemetry::NullRecorder)
            .unwrap_or_else(|e| panic!("in-process golden failed: {e}"));
        if golden.model == outcome.model {
            println!(
                "golden check: ok (in-process checksum {:016x})",
                golden.checksum
            );
        } else {
            eprintln!(
                "golden check FAILED: socket {:016x} != in-process {:016x}",
                outcome.checksum, golden.checksum
            );
            ok = false;
        }
    }

    obs.finish();
    if !ok {
        std::process::exit(1);
    }
}
