//! Reproduces **Fig. 3** of the Calibre paper: mean and variance of test
//! accuracy among training clients across Q-non-i.i.d. and D-non-i.i.d.
//! settings on the CIFAR-10, CIFAR-100 and STL-10 analogs, for the full
//! method roster.
//!
//! ```text
//! cargo run -p calibre-bench --release --bin fig3 -- \
//!     [--scale smoke|default|paper] [--datasets cifar10,stl10] \
//!     [--settings q,d] [--methods fedavg-ft,calibre-simclr] [--seed 7] \
//!     [--repeats 3] [--telemetry out.jsonl] [--trace out.json] \
//!     [--profile prof.json]
//! ```
//!
//! With `--repeats N > 1` every cell is run on N independent dataset/run
//! seeds and the reported mean/variance are averaged across repeats
//! (single-seed runs at this scale move by ±1-1.5 pp). The shared
//! observability flags stream round-level JSONL events (all cells
//! concatenated), capture the span layer, and print a fairness summary over
//! every cell's personalizations at the end (see `calibre_bench::obs`).

use calibre_bench::obs::ObsArgs;
use calibre_bench::report::{print_table, write_csv, Row};
use calibre_bench::{
    build_dataset, parse_args, run_method_observed, DatasetId, MethodId, Scale, Setting,
};
use calibre_fl::Stats;

/// Averages cell statistics across independent repeats (mean of means,
/// mean of variances; min/max over all repeats; count from the first).
fn average_stats(per_repeat: &[Stats]) -> Stats {
    let n = per_repeat.len() as f32;
    let mean = per_repeat.iter().map(|s| s.mean).sum::<f32>() / n;
    let variance = per_repeat.iter().map(|s| s.variance).sum::<f32>() / n;
    Stats {
        count: per_repeat[0].count,
        mean,
        variance,
        std: variance.sqrt(),
        min: per_repeat
            .iter()
            .map(|s| s.min)
            .fold(f32::INFINITY, f32::min),
        max: per_repeat
            .iter()
            .map(|s| s.max)
            .fold(f32::NEG_INFINITY, f32::max),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("argument error: {e}");
            std::process::exit(2);
        }
    };
    let mut scale = Scale::Default;
    let mut datasets: Vec<DatasetId> = DatasetId::ALL.to_vec();
    let mut settings: Vec<Setting> = Setting::ALL.to_vec();
    let mut methods: Vec<MethodId> = MethodId::roster();
    let mut seed = 7u64;
    let mut repeats = 1usize;
    let mut obs_args = ObsArgs::default();
    for (key, value) in parsed {
        if obs_args.accept(&key, &value) {
            continue;
        }
        match key.as_str() {
            "scale" => scale = Scale::parse(&value).unwrap_or_else(|| panic!("bad scale {value}")),
            "seed" => seed = value.parse().expect("seed must be an integer"),
            "repeats" => {
                repeats = value.parse().expect("--repeats must be an integer");
                assert!(repeats >= 1, "--repeats must be at least 1");
            }
            "datasets" => {
                datasets = value
                    .split(',')
                    .map(|d| DatasetId::parse(d).unwrap_or_else(|| panic!("bad dataset {d}")))
                    .collect();
            }
            "settings" => {
                settings = value
                    .split(',')
                    .map(|s| Setting::parse(s).unwrap_or_else(|| panic!("bad setting {s}")))
                    .collect();
            }
            "methods" => {
                methods = value
                    .split(',')
                    .map(|m| MethodId::parse(m).unwrap_or_else(|| panic!("bad method {m}")))
                    .collect();
            }
            other => {
                eprintln!("unknown flag --{other}");
                std::process::exit(2);
            }
        }
    }

    let fl_overrides = obs_args.clone();
    let obs = obs_args.build();
    let mut rows = Vec::new();
    for &dataset in &datasets {
        for &setting in &settings {
            eprintln!(
                "[fig3] {} / {} ({} repeat{})",
                dataset.name(),
                setting.name(),
                repeats,
                if repeats == 1 { "" } else { "s" },
            );
            for &method in &methods {
                let start = std::time::Instant::now();
                let mut name = String::new();
                let mut per_repeat: Vec<calibre_fl::Stats> = Vec::with_capacity(repeats);
                for r in 0..repeats as u64 {
                    let run_seed = seed.wrapping_add(1000 * r);
                    let fed = build_dataset(dataset, setting, scale, 0, run_seed);
                    let mut cfg = scale.fl_config(run_seed);
                    fl_overrides.apply_fl(&mut cfg);
                    let result = run_method_observed(method, &fed, &cfg, obs.recorder());
                    name = result.name.clone();
                    per_repeat.push(result.stats());
                }
                let stats = average_stats(&per_repeat);
                eprintln!(
                    "[fig3]   {:<22} mean {:>6.2}% var {:.5}  ({:.1?})",
                    name,
                    stats.mean_percent(),
                    stats.variance,
                    start.elapsed()
                );
                rows.push(Row {
                    dataset: dataset.name().to_string(),
                    setting: setting.name().to_string(),
                    method: name,
                    cohort: "seen".to_string(),
                    stats,
                });
            }
        }
    }
    print_table(
        "Fig. 3 — mean & variance of personalized test accuracy (training clients)",
        &rows,
    );
    match write_csv("fig3", &rows) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    obs.finish();
}
