//! Reproduces the qualitative representation figures of the Calibre paper —
//! **Figs. 1, 2, 5, 6, 7 and 8** — as 2-D t-SNE embeddings written to CSV,
//! with silhouette / NMI / purity printed so the figures' visual claim
//! ("Calibre's clusters are crisper") is machine-checkable.
//!
//! ```text
//! cargo run -p calibre-bench --release --bin tsne -- \
//!     [--experiment fig1_2|fig5_6|fig7_8|all] [--scale smoke|default|paper] \
//!     [--seed 7] [--telemetry out.jsonl] [--trace out.json] [--profile prof.json]
//! ```
//!
//! Output CSVs land in `results/tsne/<figure>_<method>.csv` with columns
//! `x,y,label,client` — plot them with any tool to get the paper's panels.
//! The shared observability flags stream the training rounds behind each
//! panel as JSONL, capture the span layer, and print a fairness summary at
//! the end (see `calibre_bench::obs`).

use calibre_bench::obs::ObsArgs;
use calibre_bench::{
    build_dataset, parse_args, run_method_observed, DatasetId, MethodId, Scale, Setting,
};
use calibre_cluster::{nmi, purity, silhouette_score};
use calibre_data::FederatedDataset;
use calibre_embed::{collect_points, tsne, write_csv_file, TsneConfig};
use calibre_fl::FlConfig;
use calibre_ssl::SslKind;
use calibre_tensor::nn::Mlp;
use calibre_tensor::Matrix;

/// Samples per client included in an embedding panel.
const SAMPLES_PER_CLIENT: usize = 30;
/// Clients per multi-client panel (the paper uses 6 of 100).
const CLIENTS_PER_PANEL: usize = 6;

struct Panel {
    figure: &'static str,
    dataset: DatasetId,
    setting: Setting,
    methods: Vec<MethodId>,
}

fn panels(experiment: &str) -> Vec<Panel> {
    let fig1_2 = Panel {
        figure: "fig1_2",
        dataset: DatasetId::Cifar10,
        setting: Setting::DirichletNonIid,
        methods: vec![
            MethodId::PflSsl(SslKind::SimClr),
            MethodId::PflSsl(SslKind::Byol),
        ],
    };
    let fig5_6 = Panel {
        figure: "fig5_6",
        dataset: DatasetId::Cifar10,
        setting: Setting::DirichletNonIid,
        methods: vec![
            MethodId::PflSsl(SslKind::SimSiam),
            MethodId::PflSsl(SslKind::MoCoV2),
            MethodId::Calibre(SslKind::SimSiam),
            MethodId::Calibre(SslKind::MoCoV2),
            MethodId::Calibre(SslKind::SimClr),
            MethodId::Calibre(SslKind::Byol),
        ],
    };
    let fig7 = Panel {
        figure: "fig7",
        dataset: DatasetId::Cifar10,
        setting: Setting::DirichletNonIid,
        methods: supervised_roster(),
    };
    let fig8 = Panel {
        figure: "fig8",
        dataset: DatasetId::Stl10,
        setting: Setting::QuantityNonIid,
        methods: supervised_roster(),
    };
    match experiment {
        "fig1_2" => vec![fig1_2],
        "fig5_6" => vec![fig5_6],
        "fig7_8" => vec![fig7, fig8],
        "all" => vec![fig1_2, fig5_6, fig7, fig8],
        other => panic!("unknown experiment {other} (use fig1_2 | fig5_6 | fig7_8 | all)"),
    }
}

fn supervised_roster() -> Vec<MethodId> {
    vec![
        MethodId::FedAvgFt,
        MethodId::FedRep,
        MethodId::FedPer,
        MethodId::FedBabu,
        MethodId::LgFedAvg,
        MethodId::Calibre(SslKind::SimClr),
    ]
}

/// Collects a multi-client sample of rendered observations with labels and
/// client ids.
fn collect_samples(fed: &FederatedDataset) -> (Matrix, Vec<usize>, Vec<usize>) {
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    let mut clients = Vec::new();
    for id in 0..fed.num_clients().min(CLIENTS_PER_PANEL) {
        let data = fed.client(id);
        for sample in data.train.iter().take(SAMPLES_PER_CLIENT) {
            rows.push(fed.generator().render(sample));
            labels.push(sample.expect_label());
            clients.push(id);
        }
    }
    (Matrix::from_rows(&rows), labels, clients)
}

fn embed_and_report(
    figure: &str,
    method_name: &str,
    encoder: &Mlp,
    observations: &Matrix,
    labels: &[usize],
    clients: &[usize],
    seed: u64,
) {
    let features = encoder.infer(observations);
    // Cluster quality in *feature* space (what personalization sees).
    let sil = silhouette_score(&features, labels);
    let km = calibre_cluster::kmeans(
        &features,
        &calibre_cluster::KMeansConfig::with_k(labels.iter().max().unwrap() + 1),
    );
    let n = nmi(&km.assignments, labels);
    let p = purity(&km.assignments, labels);
    println!("{figure:<8} {method_name:<22} silhouette {sil:>6.3}  NMI {n:>5.3}  purity {p:>5.3}");
    // 2-D embedding for the figure itself.
    let coords = tsne(
        &features,
        &TsneConfig {
            iterations: 250,
            perplexity: 15.0,
            seed,
            ..Default::default()
        },
    );
    let points = collect_points(&coords, labels, clients);
    let safe_name: String = method_name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
        .collect();
    let path = format!("results/tsne/{figure}_{safe_name}.csv");
    match write_csv_file(&path, &points) {
        Ok(()) => println!("{:<8} wrote {path}", ""),
        Err(e) => eprintln!("csv write failed for {path}: {e}"),
    }
}

/// Per-client panels (Fig. 2 / the right panels of Fig. 6): embed each of
/// the first `count` clients' local samples separately.
fn per_client_panels(
    figure: &str,
    method_name: &str,
    encoder: &Mlp,
    fed: &FederatedDataset,
    count: usize,
    seed: u64,
) {
    for id in 0..fed.num_clients().min(count) {
        let data = fed.client(id);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for s in data.train.iter().take(60) {
            rows.push(fed.generator().render(s));
            labels.push(s.expect_label());
        }
        if rows.len() < 5 {
            continue;
        }
        let obs = Matrix::from_rows(&rows);
        let features = encoder.infer(&obs);
        let sil = silhouette_score(&features, &labels);
        println!(
            "{figure:<8} {method_name:<22} client {id:>2}: {} samples, local silhouette {sil:>6.3}",
            labels.len()
        );
        let coords = tsne(
            &features,
            &TsneConfig {
                iterations: 200,
                perplexity: 10.0,
                seed,
                ..Default::default()
            },
        );
        let clients = vec![id; labels.len()];
        let points = collect_points(&coords, &labels, &clients);
        let safe_name: String = method_name
            .chars()
            .map(|c| if c.is_ascii_alphanumeric() { c } else { '_' })
            .collect();
        let path = format!("results/tsne/{figure}_{safe_name}_client{id}.csv");
        if let Err(e) = write_csv_file(&path, &points) {
            eprintln!("csv write failed for {path}: {e}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("argument error: {e}");
            std::process::exit(2);
        }
    };
    let mut scale = Scale::Default;
    let mut experiment = "all".to_string();
    let mut seed = 7u64;
    let mut obs_args = ObsArgs::default();
    for (key, value) in parsed {
        if obs_args.accept(&key, &value) {
            continue;
        }
        match key.as_str() {
            "scale" => scale = Scale::parse(&value).unwrap_or_else(|| panic!("bad scale {value}")),
            "seed" => seed = value.parse().expect("seed must be an integer"),
            "experiment" => experiment = value,
            other => {
                eprintln!("unknown flag --{other}");
                std::process::exit(2);
            }
        }
    }

    let fl_overrides = obs_args.clone();
    let obs = obs_args.build();
    println!(
        "== t-SNE figure reproduction (cluster metrics quantify the paper's visual claims) =="
    );
    for panel in panels(&experiment) {
        let fed = build_dataset(panel.dataset, panel.setting, scale, 0, seed);
        let mut cfg: FlConfig = scale.fl_config(seed);
        fl_overrides.apply_fl(&mut cfg);
        let cfg = cfg;
        let (observations, labels, clients) = collect_samples(&fed);
        eprintln!(
            "[tsne] {} on {} / {}: {} points from {} clients",
            panel.figure,
            panel.dataset.name(),
            panel.setting.name(),
            labels.len(),
            CLIENTS_PER_PANEL
        );
        for &method in &panel.methods {
            let result = run_method_observed(method, &fed, &cfg, obs.recorder());
            embed_and_report(
                panel.figure,
                &result.name,
                &result.encoder,
                &observations,
                &labels,
                &clients,
                seed,
            );
            // The paper pairs every multi-client panel with per-client
            // panels (Fig. 2 for pFL-SSL, the last sub-figures of Fig. 6
            // for Calibre).
            if panel.figure == "fig1_2" || panel.figure == "fig5_6" {
                per_client_panels(panel.figure, &result.name, &result.encoder, &fed, 3, seed);
            }
        }
    }
    obs.finish();
}
