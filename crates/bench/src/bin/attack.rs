//! `attack` — the fairness-under-attack ablation: adversary fraction ×
//! defense aggregator on a synthetic personalization workload.
//!
//! Each client `i` owns a target vector `t_i` (a shared center plus a
//! per-client offset whose magnitude spreads deterministically across the
//! population, so the worst decile is a real, identifiable cohort). Every
//! round each honest client pulls the global model toward its target
//! (`lr · (t_i − w)`); the seeded [`calibre_fl::AttackPlan`] compromises a
//! fraction of the cohort per round through the *production* scheduler
//! path ([`calibre_fl::RoundScheduler::run_round_streaming`]), so the
//! ablation exercises exactly the injection + defense code a real serve
//! run uses. Client `i`'s accuracy after the last round is
//! `1 / (1 + ‖w − t_i‖)` — a decreasing function of how far the global
//! model landed from that client's personal optimum.
//!
//! The attack is the amplified sign-flip (`scale=-12:<fraction>`): at 10%
//! adversaries the plain weighted average's effective step becomes
//! negative, so the model diverges geometrically — while the attacked
//! updates sit at 12× the honest norm and are trivial for every robust
//! aggregator to screen. That asymmetry is the ablation's point: the
//! defenses must recover ≥ half of the clean worst-decile accuracy where
//! weighted averaging does not.
//!
//! ```text
//! cargo run --release -p calibre-bench --bin attack -- \
//!     [--fractions 0.0,0.1,0.3] [--defenses weighted,median,...] \
//!     [--population 60] [--rounds 30] [--dim 32] [--seed 7] \
//!     [--gate true] [--telemetry out.jsonl]
//! ```
//!
//! Per-client accuracies are emitted as `personalize` telemetry events, so
//! a single-cell invocation (`--fractions 0.1 --defenses median
//! --telemetry run.jsonl`) produces a run `calibre-obs fairness`/`diff`
//! can query — CI diffs a defended attacked run against the clean baseline
//! under the worst-decile-drop threshold.
//!
//! `--gate true` exits non-zero unless, at 10% adversaries, every robust
//! defense recovers ≥ half of the clean worst-decile accuracy *and* the
//! weighted average does not (both sides of the claim). Writes
//! `results/attack.csv`.

use calibre_bench::obs::ObsArgs;
use calibre_bench::parse_args;
use calibre_fl::aggregate::Aggregator;
use calibre_fl::sampler::{Sampler, SamplerKind};
use calibre_fl::{jain_index, worst_fraction_mean, AttackPlan, RoundScheduler};
use std::io::Write;

/// The splitmix64 step — the repo-wide seeded stream primitive.
fn splitmix64(state: &mut u64) {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
}

/// One [0, 1) draw from a splitmix64 state.
fn unit(state: &mut u64) -> f32 {
    splitmix64(state);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 40) as f32 / (1u64 << 24) as f32
}

/// A seeded unit vector (uniform per-coordinate, normalized).
fn unit_vector(dim: usize, seed: u64) -> Vec<f32> {
    let mut state = seed;
    let mut v: Vec<f32> = (0..dim).map(|_| unit(&mut state) - 0.5).collect();
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-9);
    for x in &mut v {
        *x /= norm;
    }
    v
}

/// Per-client personalization targets: shared center (norm 1) plus an
/// offset whose magnitude ramps deterministically from 0.2 to 1.0 across
/// the population — the high-offset clients *are* the worst decile.
fn client_targets(population: usize, dim: usize, seed: u64) -> Vec<Vec<f32>> {
    let center = unit_vector(dim, seed ^ 0xC3A7);
    (0..population)
        .map(|i| {
            let spread = if population > 1 {
                i as f32 / (population - 1) as f32
            } else {
                0.0
            };
            let magnitude = 0.2 + 0.8 * spread;
            let offset = unit_vector(dim, seed ^ 0x0FF5 ^ (i as u64).wrapping_mul(0x9E3B));
            center
                .iter()
                .zip(&offset)
                .map(|(c, o)| c + magnitude * o)
                .collect()
        })
        .collect()
}

fn l2_dist(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y) * (x - y))
        .sum::<f32>()
        .sqrt()
}

/// The defense matrix for one adversary fraction. Robust parameters are
/// sized from the fraction with a 1.5× safety margin, because the per-round
/// adversary count is Bernoulli-sampled and fluctuates around the mean.
fn defenses(fraction: f32, cohort: usize) -> Vec<(&'static str, Aggregator)> {
    let assumed = ((fraction * cohort as f32 * 1.5).ceil() as usize).max(1);
    let m = cohort.saturating_sub(assumed + 2).max(1);
    vec![
        ("weighted", Aggregator::WeightedAverage),
        ("median", Aggregator::CoordinateMedian),
        ("trimmed:0.2", Aggregator::TrimmedMean(0.2)),
        ("krum", Aggregator::Krum { f: assumed }),
        ("multi-krum", Aggregator::MultiKrum { f: assumed, m }),
        ("geomedian", Aggregator::GeometricMedian),
        ("normbound:1.0", Aggregator::NormBound(1.0)),
        ("clip:1.0", Aggregator::CenteredClip(1.0)),
    ]
}

struct RunOutcome {
    mean: f32,
    std: f32,
    worst_decile: f32,
    jain: f32,
    skipped: usize,
}

/// Runs one (fraction, defense) cell: the full population participates
/// every round, attacks are injected by the scheduler, and the final
/// per-client accuracies summarize fairness.
fn run_cell(
    fraction: f32,
    defense: Aggregator,
    targets: &[Vec<f32>],
    rounds: usize,
    dim: usize,
    seed: u64,
    recorder: &dyn calibre_telemetry::Recorder,
) -> RunOutcome {
    let population = targets.len();
    let mut scheduler = RoundScheduler::sampled(
        Sampler::new(SamplerKind::Uniform, seed),
        population,
        population,
        rounds,
    );
    if fraction > 0.0 {
        let plan = AttackPlan::parse(&format!("scale=-12:{fraction},seed=13"))
            .expect("ablation attack spec");
        scheduler = scheduler.with_attack(plan, seed);
    }
    let mut policy = *scheduler.policy();
    policy.aggregator = defense;
    let scheduler = scheduler.with_policy(policy);

    const LR: f32 = 0.5;
    let mut w = vec![0.0f32; dim];
    let mut skipped = 0usize;
    for round in 0..rounds {
        let selected = scheduler.select(round, None);
        let mut sink = defense.sink(
            selected.len().max(1),
            seed ^ (round as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        );
        let model = &w;
        let out = scheduler.run_round_streaming(
            round,
            &selected,
            16,
            sink.as_mut(),
            |client| {
                let pull: Vec<f32> = targets[client]
                    .iter()
                    .zip(model)
                    .map(|(t, m)| LR * (t - m))
                    .collect();
                (pull, 1.0)
            },
            recorder,
        );
        if let Some(agg) = out.aggregated {
            for (wi, gi) in w.iter_mut().zip(agg) {
                *wi += gi;
            }
        } else {
            skipped += 1;
        }
    }

    let accuracies: Vec<f32> = targets
        .iter()
        .map(|t| 1.0 / (1.0 + l2_dist(&w, t)))
        .collect();
    // Per-client accuracies as personalize events, so `calibre-obs
    // fairness`/`diff` can compare runs (one cell per telemetry file for a
    // meaningful diff — see `--defenses`).
    for (client, acc) in accuracies.iter().enumerate() {
        recorder.personalize(client, *acc);
    }
    let n = accuracies.len() as f32;
    let mean = accuracies.iter().sum::<f32>() / n;
    let var = accuracies
        .iter()
        .map(|a| (a - mean) * (a - mean))
        .sum::<f32>()
        / n;
    RunOutcome {
        mean,
        std: var.sqrt(),
        worst_decile: worst_fraction_mean(&accuracies, 0.1),
        jain: jain_index(&accuracies),
        skipped,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_args(&args).unwrap_or_else(|e| panic!("argument error: {e}"));

    let mut fractions = vec![0.0f32, 0.1, 0.3];
    let mut only_defenses: Option<Vec<String>> = None;
    let mut population = 60usize;
    let mut rounds = 30usize;
    let mut dim = 32usize;
    let mut seed = 7u64;
    let mut gate = false;
    let mut obs_args = ObsArgs::default();
    for (key, value) in parsed {
        if obs_args.accept(&key, &value) {
            continue;
        }
        match key.as_str() {
            "fractions" => {
                fractions = value
                    .split(',')
                    .map(|f| f.trim().parse().expect("--fractions must be numbers"))
                    .collect();
            }
            "defenses" => {
                only_defenses = Some(value.split(',').map(|d| d.trim().to_string()).collect());
            }
            "population" => population = value.parse().expect("--population"),
            "rounds" => rounds = value.parse().expect("--rounds"),
            "dim" => dim = value.parse().expect("--dim"),
            "seed" => seed = value.parse().expect("--seed"),
            "gate" => gate = value == "true",
            other => {
                eprintln!("unknown flag --{other}");
                std::process::exit(2);
            }
        }
    }

    let obs = obs_args.build();
    let targets = client_targets(population, dim, seed);
    println!(
        "== fairness under attack: {population} clients, {rounds} rounds, dim {dim}, \
         attack scale=-12 (amplified sign-flip) ==",
    );
    println!(
        "{:>9} {:<14} {:>8} {:>8} {:>12} {:>8} {:>8}",
        "fraction", "defense", "mean", "std", "worst-10%", "Jain", "skipped"
    );

    let mut csv_rows = Vec::new();
    // worst-decile accuracy by (fraction-in-milli, defense name) for the gate.
    let mut worst: Vec<(u32, &'static str, f32)> = Vec::new();
    for &fraction in &fractions {
        for (name, defense) in defenses(fraction, population) {
            if let Some(only) = &only_defenses {
                if !only.iter().any(|d| d == name) {
                    continue;
                }
            }
            let out = run_cell(
                fraction,
                defense,
                &targets,
                rounds,
                dim,
                seed,
                obs.recorder(),
            );
            println!(
                "{:>9.2} {:<14} {:>8.4} {:>8.4} {:>12.4} {:>8.4} {:>8}",
                fraction, name, out.mean, out.std, out.worst_decile, out.jain, out.skipped
            );
            csv_rows.push(format!(
                "{fraction},{name},{},{},{},{},{}",
                out.mean, out.std, out.worst_decile, out.jain, out.skipped
            ));
            worst.push(((fraction * 1000.0) as u32, name, out.worst_decile));
        }
    }

    std::fs::create_dir_all("results").expect("create results dir");
    let mut f =
        std::io::BufWriter::new(std::fs::File::create("results/attack.csv").expect("create csv"));
    writeln!(
        f,
        "fraction,defense,mean,std,worst_decile,jain,skipped_rounds"
    )
    .unwrap();
    for row in &csv_rows {
        writeln!(f, "{row}").unwrap();
    }
    println!("\nwrote results/attack.csv");

    // The ablation's claim, checked both ways: at 10% adversaries each
    // robust defense recovers ≥ half of the clean worst-decile accuracy,
    // and the plain weighted average does not.
    let clean = worst
        .iter()
        .find(|(f, name, _)| *f == 0 && *name == "weighted")
        .map(|(_, _, w)| *w);
    let mut ok = true;
    if let Some(clean) = clean {
        let bar = clean * 0.5;
        println!("recovery gate at 10% adversaries (clean worst-decile {clean:.4}, bar {bar:.4}):");
        for (f, name, wd) in worst.iter().filter(|(f, _, _)| *f == 100) {
            let _ = f;
            let recovered = *wd >= bar;
            let verdict = if *name == "weighted" {
                if recovered {
                    ok = false;
                    "UNEXPECTEDLY SURVIVED (attack too weak to discriminate)"
                } else {
                    "breaks, as the defenses' baseline should"
                }
            } else if recovered {
                "recovers"
            } else {
                ok = false;
                "FAILS to recover"
            };
            println!("  {name:<14} worst-10% {wd:.4}  -> {verdict}");
        }
    } else {
        println!("recovery gate skipped: no clean (fraction 0, weighted) cell in this sweep");
    }

    obs.finish();
    if gate && !ok {
        eprintln!("attack ablation gate FAILED");
        std::process::exit(1);
    }
}
