//! Convergence tracking: personalization quality of the global encoder as a
//! function of training round, pFL-SimCLR vs Calibre (SimCLR).
//!
//! The paper argues (§V-B) that "based on these transferable
//! representations, the personalized model converges faster and can
//! generalize better"; this binary measures that directly by freezing the
//! intermediate encoder every few rounds and running the full
//! personalization protocol on it.
//!
//! ```text
//! cargo run -p calibre-bench --release --bin convergence -- \
//!     [--scale smoke|default|paper] [--every 5] [--seed 7]
//! ```
//!
//! Writes `results/convergence.csv` with columns
//! `method,round,mean,variance`.

use calibre::{train_calibre_encoder_with, CalibreConfig};
use calibre_bench::{build_dataset, parse_args, DatasetId, Scale, Setting};
use calibre_data::AugmentConfig;
use calibre_fl::pfl_ssl::train_pfl_ssl_encoder_with;
use calibre_fl::personalize_cohort;
use calibre_ssl::SslKind;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("argument error: {e}");
            std::process::exit(2);
        }
    };
    let mut scale = Scale::Default;
    let mut every = 5usize;
    let mut seed = 7u64;
    for (key, value) in parsed {
        match key.as_str() {
            "scale" => scale = Scale::parse(&value).unwrap_or_else(|| panic!("bad scale {value}")),
            "every" => every = value.parse().expect("--every must be an integer"),
            "seed" => seed = value.parse().expect("seed must be an integer"),
            other => {
                eprintln!("unknown flag --{other}");
                std::process::exit(2);
            }
        }
    }
    assert!(every > 0, "--every must be positive");

    let fed = build_dataset(DatasetId::Cifar10, Setting::DirichletNonIid, scale, 0, seed);
    let cfg = scale.fl_config(seed);
    let aug = AugmentConfig::default();
    let num_classes = fed.generator().num_classes();

    let mut rows: Vec<(String, usize, f32, f32)> = Vec::new();
    println!(
        "{:<20} {:>6} {:>9} {:>10}",
        "method", "round", "mean(%)", "variance"
    );

    {
        let mut observer = |round: usize, encoder: &calibre_tensor::nn::Mlp| {
            if (round + 1) % every != 0 && round + 1 != cfg.rounds {
                return;
            }
            let outcome = personalize_cohort(encoder, &fed, num_classes, &cfg.probe);
            println!(
                "{:<20} {:>6} {:>9.2} {:>10.5}",
                "pFL-SimCLR",
                round + 1,
                outcome.stats.mean_percent(),
                outcome.stats.variance
            );
            rows.push((
                "pFL-SimCLR".into(),
                round + 1,
                outcome.stats.mean,
                outcome.stats.variance,
            ));
        };
        train_pfl_ssl_encoder_with(&fed, &cfg, SslKind::SimClr, &aug, Some(&mut observer));
    }

    {
        let ccfg = CalibreConfig {
            warmup_rounds: cfg.rounds / 2,
            ..CalibreConfig::default()
        };
        let mut observer = |round: usize, encoder: &calibre_tensor::nn::Mlp| {
            if (round + 1) % every != 0 && round + 1 != cfg.rounds {
                return;
            }
            let outcome = personalize_cohort(encoder, &fed, num_classes, &cfg.probe);
            println!(
                "{:<20} {:>6} {:>9.2} {:>10.5}",
                "Calibre (SimCLR)",
                round + 1,
                outcome.stats.mean_percent(),
                outcome.stats.variance
            );
            rows.push((
                "Calibre (SimCLR)".into(),
                round + 1,
                outcome.stats.mean,
                outcome.stats.variance,
            ));
        };
        train_calibre_encoder_with(
            &fed,
            &cfg,
            SslKind::SimClr,
            &ccfg,
            &aug,
            Some(&mut observer),
        );
    }

    std::fs::create_dir_all("results").expect("create results dir");
    let mut f = std::io::BufWriter::new(
        std::fs::File::create("results/convergence.csv").expect("create csv"),
    );
    writeln!(f, "method,round,mean,variance").unwrap();
    for (method, round, mean, variance) in &rows {
        writeln!(f, "{method},{round},{mean},{variance}").unwrap();
    }
    println!("\nwrote results/convergence.csv");
}
