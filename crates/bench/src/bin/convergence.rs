//! Convergence tracking: personalization quality of the global encoder as a
//! function of training round, pFL-SimCLR vs Calibre (SimCLR).
//!
//! The paper argues (§V-B) that "based on these transferable
//! representations, the personalized model converges faster and can
//! generalize better"; this binary measures that directly by freezing the
//! intermediate encoder every few rounds and running the full
//! personalization protocol on it.
//!
//! ```text
//! cargo run -p calibre-bench --release --bin convergence -- \
//!     [--scale smoke|default|paper] [--every 5] [--seed 7] \
//!     [--telemetry out.jsonl] [--trace out.json] [--profile prof.json] \
//!     [--chaos drop=0.3,corrupt=0.1] [--min-quorum 2] [--aggregator median]
//! ```
//!
//! Writes `results/convergence.csv` with columns
//! `method,round,mean,variance`.
//!
//! With `--telemetry <path>`, every federated round additionally streams
//! JSONL events (round_start / client_update / aggregate / round_end with
//! per-client wall-clock and loss payloads) to `<path>`, and a round/fairness
//! summary is printed at the end. The two training runs are concatenated in
//! the file; the round index restarting at 0 marks the Calibre run's start.
//! `--trace` and `--profile` capture the span layer — a Perfetto-loadable
//! Chrome trace and an aggregated hot-path profile respectively (see
//! `calibre_bench::obs`).

use calibre::{train_calibre_encoder_observed, CalibreConfig};
use calibre_bench::obs::ObsArgs;
use calibre_bench::{build_dataset, parse_args, DatasetId, Scale, Setting};
use calibre_data::AugmentConfig;
use calibre_fl::personalize_cohort;
use calibre_fl::pfl_ssl::train_pfl_ssl_encoder_observed;
use calibre_ssl::SslKind;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("argument error: {e}");
            std::process::exit(2);
        }
    };
    let mut scale = Scale::Default;
    let mut every = 5usize;
    let mut seed = 7u64;
    let mut obs_args = ObsArgs::default();
    for (key, value) in parsed {
        if obs_args.accept(&key, &value) {
            continue;
        }
        match key.as_str() {
            "scale" => scale = Scale::parse(&value).unwrap_or_else(|| panic!("bad scale {value}")),
            "every" => every = value.parse().expect("--every must be an integer"),
            "seed" => seed = value.parse().expect("seed must be an integer"),
            other => {
                eprintln!("unknown flag --{other}");
                std::process::exit(2);
            }
        }
    }
    assert!(every > 0, "--every must be positive");

    let fed = build_dataset(DatasetId::Cifar10, Setting::DirichletNonIid, scale, 0, seed);
    let mut cfg = scale.fl_config(seed);
    obs_args.apply_fl(&mut cfg);
    let cfg = cfg;

    // With --telemetry, events fan out to a JSONL file and an in-memory hub
    // for the end-of-run summary; otherwise they are recorded into the void.
    // --trace/--profile install the span collector for the whole run.
    let obs = obs_args.build();
    let recorder = obs.recorder();
    let aug = AugmentConfig::default();
    let num_classes = fed.generator().num_classes();

    let mut rows: Vec<(String, usize, f32, f32)> = Vec::new();
    println!(
        "{:<20} {:>6} {:>9} {:>10}",
        "method", "round", "mean(%)", "variance"
    );

    {
        let mut observer = |round: usize, encoder: &calibre_tensor::nn::Mlp| {
            if !(round + 1).is_multiple_of(every) && round + 1 != cfg.rounds {
                return;
            }
            let outcome = personalize_cohort(encoder, &fed, num_classes, &cfg.probe);
            println!(
                "{:<20} {:>6} {:>9.2} {:>10.5}",
                "pFL-SimCLR",
                round + 1,
                outcome.stats.mean_percent(),
                outcome.stats.variance
            );
            rows.push((
                "pFL-SimCLR".into(),
                round + 1,
                outcome.stats.mean,
                outcome.stats.variance,
            ));
        };
        train_pfl_ssl_encoder_observed(
            &fed,
            &cfg,
            SslKind::SimClr,
            &aug,
            Some(&mut observer),
            recorder,
        );
    }

    {
        let ccfg = CalibreConfig {
            warmup_rounds: cfg.rounds / 2,
            ..CalibreConfig::default()
        };
        let mut observer = |round: usize, encoder: &calibre_tensor::nn::Mlp| {
            if !(round + 1).is_multiple_of(every) && round + 1 != cfg.rounds {
                return;
            }
            let outcome = personalize_cohort(encoder, &fed, num_classes, &cfg.probe);
            println!(
                "{:<20} {:>6} {:>9.2} {:>10.5}",
                "Calibre (SimCLR)",
                round + 1,
                outcome.stats.mean_percent(),
                outcome.stats.variance
            );
            rows.push((
                "Calibre (SimCLR)".into(),
                round + 1,
                outcome.stats.mean,
                outcome.stats.variance,
            ));
        };
        train_calibre_encoder_observed(
            &fed,
            &cfg,
            SslKind::SimClr,
            &ccfg,
            &aug,
            Some(&mut observer),
            recorder,
        );
    }

    std::fs::create_dir_all("results").expect("create results dir");
    let mut f = std::io::BufWriter::new(
        std::fs::File::create("results/convergence.csv").expect("create csv"),
    );
    writeln!(f, "method,round,mean,variance").unwrap();
    for (method, round, mean, variance) in &rows {
        writeln!(f, "{method},{round},{mean},{variance}").unwrap();
    }
    println!("\nwrote results/convergence.csv");

    obs.finish();
}
