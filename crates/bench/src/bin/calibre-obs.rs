//! `calibre-obs` — query recorded telemetry runs.
//!
//! ```text
//! calibre-obs summary  <run.jsonl>
//! calibre-obs rounds   <run.jsonl> [--round N]
//! calibre-obs fairness <run.jsonl>
//! calibre-obs diff     <a.jsonl> <b.jsonl> [--max-std-increase X]
//!                      [--max-mean-drop X] [--max-worst-decile-drop X]
//!                      [--max-skip-increase N]
//! ```
//!
//! Exit codes: `0` success, `1` diff threshold breach, `2` usage or I/O
//! error. `diff` compares candidate `b` against baseline `a` and fails on
//! fairness regressions (std up, mean down, worst-decile down) or newly
//! skipped rounds — CI-friendly regression triage over run artifacts.

use calibre_bench::obsquery::{self, DiffThresholds, RunRecord};
use std::process::ExitCode;

const USAGE: &str = "usage:
  calibre-obs summary  <run.jsonl>
  calibre-obs rounds   <run.jsonl> [--round N]
  calibre-obs fairness <run.jsonl>
  calibre-obs diff     <a.jsonl> <b.jsonl> [--max-std-increase X] \
[--max-mean-drop X] [--max-worst-decile-drop X] [--max-skip-increase N]";

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("calibre-obs: {msg}\n{USAGE}");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<RunRecord, ExitCode> {
    obsquery::load_run(path).map_err(|e| {
        eprintln!("calibre-obs: {e}");
        ExitCode::from(2)
    })
}

fn parse_flag<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, ExitCode> {
    let raw = match value {
        Some(v) => v,
        None => return Err(usage_error(&format!("missing value for {flag}"))),
    };
    raw.parse()
        .map_err(|_| usage_error(&format!("bad value {raw:?} for {flag}")))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        return usage_error("no subcommand");
    };
    match run(command, &args[1..]) {
        Ok(code) => code,
        Err(code) => code,
    }
}

fn run(command: &str, rest: &[String]) -> Result<ExitCode, ExitCode> {
    match command {
        "summary" => {
            let [path] = rest else {
                return Err(usage_error("summary takes exactly one run file"));
            };
            print!("{}", obsquery::summary(&load(path)?));
            Ok(ExitCode::SUCCESS)
        }
        "rounds" => {
            let Some(path) = rest.first() else {
                return Err(usage_error("rounds needs a run file"));
            };
            let run = load(path)?;
            match rest.get(1).map(String::as_str) {
                None => print!("{}", obsquery::rounds_table(&run)),
                Some("--round") => {
                    let round: usize = parse_flag("--round", rest.get(2))?;
                    print!("{}", obsquery::round_detail(&run, round));
                }
                Some(other) => return Err(usage_error(&format!("unknown flag {other}"))),
            }
            Ok(ExitCode::SUCCESS)
        }
        "fairness" => {
            let [path] = rest else {
                return Err(usage_error("fairness takes exactly one run file"));
            };
            print!("{}", obsquery::fairness_table(&load(path)?));
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let (Some(path_a), Some(path_b)) = (rest.first(), rest.get(1)) else {
                return Err(usage_error("diff needs two run files"));
            };
            let mut thresholds = DiffThresholds::default();
            let mut i = 2;
            while i < rest.len() {
                let flag = rest[i].as_str();
                let value = rest.get(i + 1);
                match flag {
                    "--max-std-increase" => {
                        thresholds.max_std_increase = parse_flag(flag, value)?;
                    }
                    "--max-mean-drop" => thresholds.max_mean_drop = parse_flag(flag, value)?,
                    "--max-worst-decile-drop" => {
                        thresholds.max_worst_decile_drop = parse_flag(flag, value)?;
                    }
                    "--max-skip-increase" => {
                        thresholds.max_skip_increase = parse_flag(flag, value)?;
                    }
                    other => return Err(usage_error(&format!("unknown flag {other}"))),
                }
                i += 2;
            }
            let run_a = load(path_a)?;
            let run_b = load(path_b)?;
            let report = obsquery::diff(&run_a, &run_b, &thresholds);
            for line in &report.lines {
                println!("{line}");
            }
            if report.breaches > 0 {
                eprintln!("calibre-obs: {} threshold breach(es)", report.breaches);
                Ok(ExitCode::FAILURE)
            } else {
                Ok(ExitCode::SUCCESS)
            }
        }
        other => Err(usage_error(&format!("unknown subcommand {other:?}"))),
    }
}
