//! `calibre-client` — the worker half of the wire protocol.
//!
//! Connects to a `calibre-serve` instance, registers, answers `Assign`
//! frames with the deterministic simulated workload, and prints its
//! report once the server's `Finish` arrives:
//!
//! ```text
//! calibre-client --addr 127.0.0.1:7461 --clients 4
//! ```
//!
//! Flags:
//!
//! - `--addr <host:port>` — server TCP address; `--uds <path>` connects
//!   over a Unix socket instead;
//! - `--client <id>` — run exactly one client id;
//! - `--clients <n>` — run ids `0..n`, one thread each (the loopback
//!   smoke job's shape);
//! - `--seed <u64>` — workload seed; must match the server's
//!   (`calibre-serve --seed`), default matches `--smoke`.

use std::thread;

use calibre_bench::parse_args;
use calibre_fl::serve::{sim_client_work, ServeConfig};
use calibre_fl::transport::{run_client, ClientAddr, ClientOptions};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = parse_args(&args).unwrap_or_else(|e| panic!("bad arguments: {e}"));

    let mut addr = "127.0.0.1:7461".to_string();
    let mut uds: Option<String> = None;
    let mut single: Option<usize> = None;
    let mut clients = 1usize;
    let mut seed = ServeConfig::smoke().seed;
    for (key, value) in &parsed {
        match key.as_str() {
            "addr" => addr = value.clone(),
            "uds" => uds = Some(value.clone()),
            "client" => single = Some(value.parse().expect("--client")),
            "clients" => clients = value.parse().expect("--clients"),
            "seed" => seed = value.parse().expect("--seed"),
            _ => panic!("unknown flag --{key}"),
        }
    }

    let make_addr = |uds: &Option<String>, addr: &str| -> ClientAddr {
        match uds {
            #[cfg(unix)]
            Some(path) => ClientAddr::Uds(path.into()),
            #[cfg(not(unix))]
            Some(_) => panic!("--uds requires a unix platform"),
            None => ClientAddr::Tcp(addr.to_string()),
        }
    };

    let ids: Vec<usize> = match single {
        Some(id) => vec![id],
        None => (0..clients).collect(),
    };
    let handles: Vec<_> = ids
        .into_iter()
        .map(|client| {
            let addr = make_addr(&uds, &addr);
            thread::spawn(move || {
                (
                    client,
                    run_client(
                        &addr,
                        client as u64,
                        &ClientOptions::default(),
                        sim_client_work(seed, client),
                    ),
                )
            })
        })
        .collect();

    let mut failed = false;
    for handle in handles {
        let (client, result) = handle.join().expect("client thread");
        match result {
            Ok(report) => println!(
                "client {client}: rounds={} updates={} reconnects={} checksum {:016x}",
                report.rounds, report.updates_sent, report.reconnects, report.final_checksum
            ),
            Err(e) => {
                eprintln!("client {client} failed: {e}");
                failed = true;
            }
        }
    }
    if failed {
        std::process::exit(1);
    }
}
