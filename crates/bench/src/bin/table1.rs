//! Reproduces **Table I** of the Calibre paper: the `L_n` / `L_p` ablation
//! for Calibre (SimCLR), Calibre (SwAV) and Calibre (SMoG) on the CIFAR-10
//! analog under the `(2, 500)` quantity-based non-i.i.d. setting, reported
//! as `mean ± std`.
//!
//! ```text
//! cargo run -p calibre-bench --release --bin table1 -- \
//!     [--scale smoke|default|paper] [--seed 7] [--telemetry out.jsonl] \
//!     [--trace out.json] [--profile prof.json]
//! ```
//!
//! With `--telemetry <path>`, every ablation variant's federated rounds
//! stream JSONL telemetry events to `<path>` (all variants concatenated; the
//! round index restarts at 0 on each variant boundary), and a round/fairness
//! summary is printed at the end. `--trace`/`--profile` capture the span
//! layer (see `calibre_bench::obs`).

use calibre_bench::obs::ObsArgs;
use calibre_bench::report::{write_csv, Row};
use calibre_bench::{
    build_dataset, parse_args, run_method_observed, DatasetId, MethodId, Scale, Setting,
};
use calibre_ssl::SslKind;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("argument error: {e}");
            std::process::exit(2);
        }
    };
    let mut scale = Scale::Default;
    let mut seed = 7u64;
    let mut obs_args = ObsArgs::default();
    for (key, value) in parsed {
        if obs_args.accept(&key, &value) {
            continue;
        }
        match key.as_str() {
            "scale" => scale = Scale::parse(&value).unwrap_or_else(|| panic!("bad scale {value}")),
            "seed" => seed = value.parse().expect("seed must be an integer"),
            other => {
                eprintln!("unknown flag --{other}");
                std::process::exit(2);
            }
        }
    }

    let dataset = DatasetId::Cifar10;
    let setting = Setting::QuantityNonIid; // (2, 500) at paper scale
    let fed = build_dataset(dataset, setting, scale, 0, seed);
    let mut cfg = scale.fl_config(seed);
    obs_args.apply_fl(&mut cfg);
    let cfg = cfg;
    let obs = obs_args.build();
    let backbones = [SslKind::SimClr, SslKind::SwAv, SslKind::Smog];
    // Table I rows: (use_ln, use_lp) in the paper's order.
    let variants = [(false, false), (false, true), (true, false), (true, true)];

    let mut rows = Vec::new();
    println!("== Table I — ablation of L_n / L_p, CIFAR-10 analog, Q-non-iid (2,·) ==");
    println!(
        "{:<6} {:<6} {:<28} {:<18}",
        "L_n", "L_p", "variant", "mean ± std (%)"
    );
    for (use_ln, use_lp) in variants {
        for kind in backbones {
            let method = MethodId::CalibreAblation(kind, use_ln, use_lp);
            let start = std::time::Instant::now();
            let result = run_method_observed(method, &fed, &cfg, obs.recorder());
            println!(
                "{:<6} {:<6} {:<28} {:<18} ({:.1?})",
                if use_ln { "✓" } else { "" },
                if use_lp { "✓" } else { "" },
                format!("Calibre ({})", kind.name()),
                result.stats().paper_format(),
                start.elapsed()
            );
            rows.push(Row {
                dataset: dataset.name().to_string(),
                setting: setting.name().to_string(),
                method: result.name.clone(),
                cohort: "seen".to_string(),
                stats: result.stats(),
            });
        }
    }
    match write_csv("table1", &rows) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }

    obs.finish();
}
