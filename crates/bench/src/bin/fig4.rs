//! Reproduces **Fig. 4** of the Calibre paper: mean and variance of test
//! accuracy for 150 clients — the training cohort plus 50 novel clients
//! that never participated in training — on the CIFAR-10 and CIFAR-100
//! analogs under distribution-based (Dirichlet 0.3) label non-i.i.d.
//!
//! ```text
//! cargo run -p calibre-bench --release --bin fig4 -- \
//!     [--scale smoke|default|paper] [--methods ...] [--seed 7] \
//!     [--telemetry out.jsonl] [--trace out.json] [--profile prof.json]
//! ```
//!
//! The shared observability flags (see `calibre_bench::obs`) cover both the
//! seen-cohort training runs and the novel-cohort personalizations.

use calibre_bench::obs::ObsArgs;
use calibre_bench::report::{print_table, write_csv, Row};
use calibre_bench::{
    build_dataset, parse_args, run_method_observed, DatasetId, MethodId, Scale, Setting,
};
use calibre_fl::personalize_cohort_observed;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let parsed = match parse_args(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("argument error: {e}");
            std::process::exit(2);
        }
    };
    let mut scale = Scale::Default;
    let mut methods: Vec<MethodId> = MethodId::roster();
    let mut seed = 7u64;
    let mut obs_args = ObsArgs::default();
    for (key, value) in parsed {
        if obs_args.accept(&key, &value) {
            continue;
        }
        match key.as_str() {
            "scale" => scale = Scale::parse(&value).unwrap_or_else(|| panic!("bad scale {value}")),
            "seed" => seed = value.parse().expect("seed must be an integer"),
            "methods" => {
                methods = value
                    .split(',')
                    .map(|m| MethodId::parse(m).unwrap_or_else(|| panic!("bad method {m}")))
                    .collect();
            }
            other => {
                eprintln!("unknown flag --{other}");
                std::process::exit(2);
            }
        }
    }

    let fl_overrides = obs_args.clone();
    let obs = obs_args.build();
    let mut rows = Vec::new();
    for dataset in [DatasetId::Cifar10, DatasetId::Cifar100] {
        let setting = Setting::DirichletNonIid;
        let full = build_dataset(dataset, setting, scale, scale.novel_clients(), seed);
        let (seen_fed, novel_fed) = full.split_novel(scale.novel_clients());
        let mut cfg = scale.fl_config(seed);
        fl_overrides.apply_fl(&mut cfg);
        let num_classes = seen_fed.generator().num_classes();
        eprintln!(
            "[fig4] {}: {} training + {} novel clients, {} rounds",
            dataset.name(),
            seen_fed.num_clients(),
            novel_fed.num_clients(),
            cfg.rounds
        );
        for &method in &methods {
            let start = std::time::Instant::now();
            let result = run_method_observed(method, &seen_fed, &cfg, obs.recorder());
            // Novel clients download the trained encoder and run the same
            // personalization protocol (paper §V-D).
            let novel = personalize_cohort_observed(
                &result.encoder,
                &novel_fed,
                num_classes,
                &cfg.probe,
                obs.recorder(),
            );
            eprintln!(
                "[fig4]   {:<22} seen {:>6.2}%/{:.5}  novel {:>6.2}%/{:.5}  ({:.1?})",
                result.name,
                result.stats().mean_percent(),
                result.stats().variance,
                novel.stats.mean_percent(),
                novel.stats.variance,
                start.elapsed()
            );
            rows.push(Row {
                dataset: dataset.name().to_string(),
                setting: setting.name().to_string(),
                method: result.name.clone(),
                cohort: "seen".to_string(),
                stats: result.stats(),
            });
            rows.push(Row {
                dataset: dataset.name().to_string(),
                setting: setting.name().to_string(),
                method: result.name.clone(),
                cohort: "novel".to_string(),
                stats: novel.stats,
            });
        }
    }
    print_table(
        "Fig. 4 — seen + novel client cohorts, D-non-i.i.d. (0.3)",
        &rows,
    );
    match write_csv("fig4", &rows) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    obs.finish();
}
