//! Offline queries over recorded telemetry: the engine behind the
//! `calibre-obs` binary.
//!
//! A JSONL telemetry file (written by `--telemetry`) is decoded back into
//! [`Event`]s and replayed through a fresh
//! [`MetricsHub`], so every run artifact
//! becomes the same [`HubSnapshot`] the live run printed — plus the raw
//! event stream for per-round drill-downs. [`diff`] compares two runs'
//! fairness and resilience and reports threshold breaches for regression
//! triage (the CLI exits nonzero on any breach).

use calibre_telemetry::{Event, HubSnapshot, MetricsHub, Recorder};
use std::fmt::Write as _;

/// One fully loaded telemetry run: the raw events plus the folded snapshot.
#[derive(Debug)]
pub struct RunRecord {
    /// Where the run was loaded from (for messages).
    pub path: String,
    /// The decoded event stream, in file order.
    pub events: Vec<Event>,
    /// The run folded through a `MetricsHub`, exactly as the live run saw it.
    pub snapshot: HubSnapshot,
}

/// Reads and decodes a JSONL telemetry file.
///
/// # Errors
///
/// Returns a message naming the file (and the offending line, 1-based) when
/// the file cannot be read or a line fails to decode.
pub fn load_run(path: &str) -> Result<RunRecord, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let hub = MetricsHub::new();
    let mut events = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let event = Event::from_json(line).map_err(|e| format!("{path}:{}: {e}", idx + 1))?;
        hub.record(event.clone());
        events.push(event);
    }
    Ok(RunRecord {
        path: path.to_string(),
        events,
        snapshot: hub.snapshot(),
    })
}

/// The run summary: the same text the live run printed at the end.
pub fn summary(run: &RunRecord) -> String {
    let mut out = format!("{} ({} events)\n", run.path, run.events.len());
    out.push_str(&run.snapshot.render_text());
    out
}

/// A per-round table: one line per completed round.
pub fn rounds_table(run: &RunRecord) -> String {
    let mut out = String::from(
        "round  clients  mean_loss  wall_mean_ms  wall_max_ms  planned_B  observed_B\n",
    );
    for r in &run.snapshot.rounds {
        let _ = writeln!(
            out,
            "{:>5}  {:>7}  {:>9.4}  {:>12.2}  {:>11.2}  {:>9}  {:>10}",
            r.round,
            r.num_clients,
            r.mean_loss,
            r.mean_wall_ms,
            r.max_wall_ms,
            r.planned_bytes,
            r.observed_bytes
        );
    }
    out
}

/// Drill-down into one round: its summary line plus every event that names
/// the round, in file order.
pub fn round_detail(run: &RunRecord, round: usize) -> String {
    let mut out = String::new();
    match run.snapshot.rounds.iter().find(|r| r.round == round) {
        Some(r) => {
            let _ = writeln!(
                out,
                "round {}: {} clients, mean loss {:.4}, wall mean {:.2} ms / max {:.2} ms",
                r.round, r.num_clients, r.mean_loss, r.mean_wall_ms, r.max_wall_ms
            );
        }
        None => {
            let _ = writeln!(out, "round {round}: no round_end event recorded");
        }
    }
    for event in &run.events {
        if event.round() == Some(round) {
            let _ = writeln!(out, "  {}", event.to_json());
        }
    }
    out
}

/// Population standard deviation; zero for fewer than two samples.
fn std_of(xs: &[f32]) -> f32 {
    let n = xs.len();
    if n < 2 {
        return 0.0;
    }
    let mean = xs.iter().sum::<f32>() / n as f32;
    (xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n as f32).sqrt()
}

/// Mean of the worst decile (at least one element) of `xs`, where *worst*
/// means highest — used for per-round loss dispersion.
fn worst_decile_high(xs: &[f32]) -> f32 {
    if xs.is_empty() {
        return 0.0;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let n = ((sorted.len() as f32) * 0.1).ceil().max(1.0) as usize;
    sorted.iter().take(n).sum::<f32>() / n as f32
}

/// Fairness-over-rounds: per-round dispersion of client losses (mean, std,
/// worst-decile — here the *highest*-loss decile), then the final accuracy
/// fairness block if the run personalized.
pub fn fairness_table(run: &RunRecord) -> String {
    let mut out = String::from("round  clients  loss_mean  loss_std  loss_worst10%\n");
    for event in &run.events {
        if let Event::RoundEnd {
            round, client_loss, ..
        } = event
        {
            let n = client_loss.len();
            let mean = if n == 0 {
                0.0
            } else {
                client_loss.iter().sum::<f32>() / n as f32
            };
            let _ = writeln!(
                out,
                "{:>5}  {:>7}  {:>9.4}  {:>8.4}  {:>13.4}",
                round,
                n,
                mean,
                std_of(client_loss),
                worst_decile_high(client_loss)
            );
        }
    }
    match &run.snapshot.fairness {
        Some(f) => {
            let _ = writeln!(
                out,
                "final accuracy fairness: {} clients, mean {:.4}, std {:.4}, worst-10% {:.4}",
                f.num_clients, f.mean, f.std, f.worst_10pct
            );
        }
        None => {
            let _ = writeln!(out, "final accuracy fairness: no personalize events");
        }
    }
    out
}

/// Regression thresholds for [`diff`]. A breach on any of them makes the
/// CLI exit nonzero. Fairness checks only apply when both runs recorded
/// personalized accuracies.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiffThresholds {
    /// Maximum allowed increase in accuracy std (run B vs run A).
    pub max_std_increase: f32,
    /// Maximum allowed drop in mean accuracy.
    pub max_mean_drop: f32,
    /// Maximum allowed drop in worst-decile accuracy.
    pub max_worst_decile_drop: f32,
    /// Maximum allowed increase in skipped rounds.
    pub max_skip_increase: usize,
}

impl Default for DiffThresholds {
    fn default() -> Self {
        DiffThresholds {
            max_std_increase: 0.02,
            max_mean_drop: 0.02,
            max_worst_decile_drop: 0.03,
            max_skip_increase: 0,
        }
    }
}

/// The outcome of comparing two runs.
#[derive(Debug, Clone, Default)]
pub struct DiffReport {
    /// Human-readable comparison lines, breaches prefixed with `BREACH`.
    pub lines: Vec<String>,
    /// Number of threshold breaches (CLI exit is nonzero when > 0).
    pub breaches: usize,
}

impl DiffReport {
    fn info(&mut self, line: String) {
        self.lines.push(line);
    }

    fn check(&mut self, breached: bool, line: String) {
        if breached {
            self.breaches += 1;
            self.lines.push(format!("BREACH {line}"));
        } else {
            self.lines.push(format!("ok     {line}"));
        }
    }
}

/// Compares run `b` against baseline run `a` under the given thresholds.
pub fn diff(a: &RunRecord, b: &RunRecord, t: &DiffThresholds) -> DiffReport {
    let mut report = DiffReport::default();
    report.info(format!(
        "baseline: {} ({} rounds)",
        a.path,
        a.snapshot.rounds.len()
    ));
    report.info(format!(
        "candidate: {} ({} rounds)",
        b.path,
        b.snapshot.rounds.len()
    ));

    match (&a.snapshot.fairness, &b.snapshot.fairness) {
        (Some(fa), Some(fb)) => {
            let std_delta = fb.std - fa.std;
            report.check(
                std_delta > t.max_std_increase,
                format!(
                    "accuracy std {:.4} -> {:.4} (delta {:+.4}, max increase {:.4})",
                    fa.std, fb.std, std_delta, t.max_std_increase
                ),
            );
            let mean_delta = fb.mean - fa.mean;
            report.check(
                -mean_delta > t.max_mean_drop,
                format!(
                    "accuracy mean {:.4} -> {:.4} (delta {:+.4}, max drop {:.4})",
                    fa.mean, fb.mean, mean_delta, t.max_mean_drop
                ),
            );
            let worst_delta = fb.worst_10pct - fa.worst_10pct;
            report.check(
                -worst_delta > t.max_worst_decile_drop,
                format!(
                    "worst-decile accuracy {:.4} -> {:.4} (delta {:+.4}, max drop {:.4})",
                    fa.worst_10pct, fb.worst_10pct, worst_delta, t.max_worst_decile_drop
                ),
            );
        }
        _ => report.info(
            "fairness: not compared (one or both runs have no personalize events)".to_string(),
        ),
    }

    let (ra, rb) = (&a.snapshot.resilience, &b.snapshot.resilience);
    let skip_increase = rb.rounds_skipped.saturating_sub(ra.rounds_skipped);
    report.check(
        skip_increase > t.max_skip_increase,
        format!(
            "rounds skipped {} -> {} (max increase {})",
            ra.rounds_skipped, rb.rounds_skipped, t.max_skip_increase
        ),
    );
    report.info(format!(
        "faults injected {} -> {}, detected {} -> {}",
        ra.faults_injected, rb.faults_injected, ra.faults_detected, rb.faults_detected
    ));
    report.info(format!(
        "comm observed {} B -> {} B",
        a.snapshot.observed_bytes, b.snapshot.observed_bytes
    ));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_telemetry::JsonlSink;

    /// Writes a run with the given per-client accuracies to a temp JSONL
    /// file and returns its path.
    fn write_run(name: &str, accuracies: &[f32], skipped_rounds: usize) -> String {
        let path = std::env::temp_dir().join(name);
        let path = path.to_str().expect("utf-8 temp path").to_string();
        let sink = JsonlSink::create(&path).expect("create temp telemetry");
        sink.round_start(0, &[0, 1]);
        sink.round_end(0, 0.5, &[1.0, 2.0], &[0.4, 0.6], 128, 128);
        for (client, &acc) in accuracies.iter().enumerate() {
            sink.personalize(client, acc);
        }
        for r in 0..skipped_rounds {
            sink.round_resilience(r + 1, 0, 0, 0, 0, true);
        }
        let _ = sink.flush();
        path
    }

    #[test]
    fn load_run_replays_the_file_through_a_hub() {
        let path = write_run("obsquery_load.jsonl", &[0.7, 0.9], 0);
        let run = load_run(&path).expect("load");
        assert_eq!(run.snapshot.rounds.len(), 1);
        assert_eq!(run.snapshot.rounds[0].num_clients, 2);
        let fairness = run.snapshot.fairness.expect("personalized");
        assert_eq!(fairness.num_clients, 2);
        assert!((fairness.mean - 0.8).abs() < 1e-6);
        assert!(summary(&run).contains("== telemetry summary (1 round events) =="));
        assert!(rounds_table(&run).contains("    0        2"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn load_run_reports_the_bad_line() {
        let path = std::env::temp_dir().join("obsquery_bad.jsonl");
        std::fs::write(
            &path,
            "{\"type\":\"round_start\",\"round\":0,\"selected\":[]}\nnot json\n",
        )
        .expect("write");
        let err = load_run(path.to_str().expect("utf-8")).expect_err("must fail");
        assert!(err.contains(":2:"), "names line 2: {err}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn round_detail_collects_round_scoped_events() {
        let path = write_run("obsquery_detail.jsonl", &[0.8], 0);
        let run = load_run(&path).expect("load");
        let detail = round_detail(&run, 0);
        assert!(detail.contains("round 0: 2 clients"));
        assert!(detail.contains("\"type\":\"round_start\""));
        assert!(detail.contains("\"type\":\"round_end\""));
        assert!(
            !detail.contains("\"type\":\"personalize\""),
            "not round-scoped"
        );
        assert!(round_detail(&run, 99).contains("no round_end event"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fairness_table_has_per_round_dispersion() {
        let path = write_run("obsquery_fair.jsonl", &[0.6, 0.9], 0);
        let run = load_run(&path).expect("load");
        let table = fairness_table(&run);
        assert!(table.contains("loss_worst10%"));
        assert!(table.contains("final accuracy fairness: 2 clients"));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn self_diff_is_breach_free() {
        let path = write_run("obsquery_self.jsonl", &[0.7, 0.8, 0.9], 0);
        let run_a = load_run(&path).expect("load a");
        let run_b = load_run(&path).expect("load b");
        let report = diff(&run_a, &run_b, &DiffThresholds::default());
        assert_eq!(report.breaches, 0, "{:?}", report.lines);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn fairness_std_regression_breaches() {
        let a = write_run("obsquery_diff_a.jsonl", &[0.80, 0.80, 0.80], 0);
        // Same mean, much wider spread: only the std check should fire.
        let b = write_run("obsquery_diff_b.jsonl", &[0.60, 0.80, 1.00], 0);
        let run_a = load_run(&a).expect("load a");
        let run_b = load_run(&b).expect("load b");
        let report = diff(&run_a, &run_b, &DiffThresholds::default());
        assert!(report.breaches >= 1);
        assert!(
            report
                .lines
                .iter()
                .any(|l| l.starts_with("BREACH") && l.contains("std")),
            "{:?}",
            report.lines
        );
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }

    #[test]
    fn skipped_round_increase_breaches() {
        let a = write_run("obsquery_skip_a.jsonl", &[0.8], 0);
        let b = write_run("obsquery_skip_b.jsonl", &[0.8], 2);
        let run_a = load_run(&a).expect("load a");
        let run_b = load_run(&b).expect("load b");
        let report = diff(&run_a, &run_b, &DiffThresholds::default());
        assert!(report
            .lines
            .iter()
            .any(|l| l.starts_with("BREACH") && l.contains("rounds skipped")));
        let _ = std::fs::remove_file(&a);
        let _ = std::fs::remove_file(&b);
    }
}
