//! Criterion microbenchmarks for the computational kernels of the
//! reproduction: the autograd substrate, the contrastive losses, prototype
//! generation, aggregation, and a full Calibre step / federated round.

use calibre::{calibre_step, CalibreConfig};
use calibre_cluster::{kmeans, KMeansConfig};
use calibre_data::{AugmentConfig, FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
use calibre_embed::{tsne, TsneConfig};
use calibre_fl::aggregate::weighted_average;
use calibre_ssl::{nt_xent, ssl_step, ssl_step_in, SimClr, SslConfig, SslMethod, TwoViewBatch};
use calibre_tensor::backend::{Backend, Blocked, Scalar};
use calibre_tensor::nn::{gradients, Binding, Mlp};
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::{rng, Graph, Matrix, StepArena};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn bench_matmul(c: &mut Criterion) {
    let mut r = rng::seeded(0);
    let a = rng::normal_matrix(&mut r, 128, 128, 1.0);
    let b = rng::normal_matrix(&mut r, 128, 128, 1.0);
    c.bench_function("matmul_128x128", |bench| {
        bench.iter(|| black_box(a.matmul(&b)))
    });
    // The same product through each execution backend, on pre-allocated
    // output storage — isolates kernel cost from allocation.
    let mut out = Matrix::zeros(128, 128);
    c.bench_function("matmul_128x128_scalar", |bench| {
        bench.iter(|| {
            out.as_mut_slice().fill(0.0);
            Scalar.matmul(&a, &b, &mut out);
            black_box(out.get(0, 0))
        })
    });
    c.bench_function("matmul_128x128_blocked", |bench| {
        bench.iter(|| {
            out.as_mut_slice().fill(0.0);
            Blocked.matmul(&a, &b, &mut out);
            black_box(out.get(0, 0))
        })
    });
    // Smoke-workload shape: a ReLU-sparse activation batch against a layer
    // weight — the product the federated smoke runs issue hundreds of times.
    let act = rng::normal_matrix(&mut r, 16, 64, 1.0).map(|v| if v > 0.0 { v } else { 0.0 });
    let w = rng::normal_matrix(&mut r, 64, 32, 1.0);
    let mut small = Matrix::zeros(16, 32);
    c.bench_function("matmul_smoke_16x64x32_scalar", |bench| {
        bench.iter(|| {
            small.as_mut_slice().fill(0.0);
            Scalar.matmul(&act, &w, &mut small);
            black_box(small.get(0, 0))
        })
    });
    c.bench_function("matmul_smoke_16x64x32_blocked", |bench| {
        bench.iter(|| {
            small.as_mut_slice().fill(0.0);
            Blocked.matmul(&act, &w, &mut small);
            black_box(small.get(0, 0))
        })
    });
    // The same shape with a dense operand (a data batch rather than a ReLU
    // activation) — exercises the register-blocked quad path.
    let dense = rng::normal_matrix(&mut r, 16, 64, 1.0);
    c.bench_function("matmul_smoke_dense_scalar", |bench| {
        bench.iter(|| {
            small.as_mut_slice().fill(0.0);
            Scalar.matmul(&dense, &w, &mut small);
            black_box(small.get(0, 0))
        })
    });
    c.bench_function("matmul_smoke_dense_blocked", |bench| {
        bench.iter(|| {
            small.as_mut_slice().fill(0.0);
            Blocked.matmul(&dense, &w, &mut small);
            black_box(small.get(0, 0))
        })
    });
    // The dA-of-backward kernel at the same shape (grad · Wᵀ).
    let grad = rng::normal_matrix(&mut r, 16, 32, 1.0);
    let mut da = Matrix::zeros(16, 64);
    c.bench_function("matmul_nt_smoke_scalar", |bench| {
        bench.iter(|| {
            Scalar.matmul_nt(&grad, &w, &mut da);
            black_box(da.get(0, 0))
        })
    });
    c.bench_function("matmul_nt_smoke_blocked", |bench| {
        bench.iter(|| {
            Blocked.matmul_nt(&grad, &w, &mut da);
            black_box(da.get(0, 0))
        })
    });
}

fn bench_mlp_backward(c: &mut Criterion) {
    let mut r = rng::seeded(1);
    let mlp = Mlp::new(&[64, 96, 32], calibre_tensor::nn::Activation::Relu, &mut r);
    let x = rng::normal_matrix(&mut r, 32, 64, 1.0);
    let targets: Vec<usize> = (0..32).map(|i| i % 10).collect();
    let head = calibre_tensor::nn::Linear::new(32, 10, &mut r);
    c.bench_function("supervised_forward_backward_b32", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let xn = g.constant_from(&x);
            let mut binding = Binding::new();
            let feats = mlp.forward(&mut g, xn, &mut binding);
            let logits = head.forward(&mut g, feats, &mut binding);
            let loss = g.cross_entropy(logits, &targets);
            g.backward(loss);
            black_box(gradients(&g, &binding))
        })
    });
}

fn bench_nt_xent(c: &mut Criterion) {
    let mut r = rng::seeded(2);
    let he = rng::normal_matrix(&mut r, 64, 16, 1.0);
    let ho = rng::normal_matrix(&mut r, 64, 16, 1.0);
    c.bench_function("nt_xent_b64", |bench| {
        bench.iter(|| {
            let mut g = Graph::new();
            let a = g.leaf_from(&he);
            let b = g.leaf_from(&ho);
            let loss = nt_xent(&mut g, a, b, 0.5);
            g.backward(loss);
            black_box(g.grad(a).is_some())
        })
    });
    // Same forward+backward on an arena-recycled tape: after the first
    // iteration every buffer comes from the pool.
    c.bench_function("nt_xent_b64_arena", |bench| {
        let mut arena = StepArena::new();
        bench.iter(|| {
            let mut g = arena.take();
            let a = g.leaf_from(&he);
            let b = g.leaf_from(&ho);
            let loss = nt_xent(&mut g, a, b, 0.5);
            g.backward(loss);
            let out = g.grad(a).is_some();
            arena.put(g);
            black_box(out)
        })
    });
}

fn bench_kmeans(c: &mut Criterion) {
    let mut r = rng::seeded(3);
    let data = rng::normal_matrix(&mut r, 256, 32, 1.0);
    c.bench_function("kmeans_n256_d32_k10", |bench| {
        bench.iter(|| black_box(kmeans(&data, &KMeansConfig::with_k(10))))
    });
}

fn bench_aggregation(c: &mut Criterion) {
    let mut r = rng::seeded(4);
    let updates: Vec<Vec<f32>> = (0..10).map(|_| rng::normal_vec(&mut r, 10_000)).collect();
    let weights: Vec<f32> = (1..=10).map(|v| v as f32).collect();
    c.bench_function("weighted_average_10x10k", |bench| {
        bench.iter(|| black_box(weighted_average(&updates, &weights)))
    });
}

fn bench_ssl_step(c: &mut Criterion) {
    let mut r = rng::seeded(5);
    let base = rng::normal_matrix(&mut r, 32, 64, 1.0);
    let ve = base.map(|v| v + 0.04);
    let vo = base.map(|v| v - 0.04);
    c.bench_function("simclr_step_b32", |bench| {
        bench.iter_batched(
            || {
                (
                    SimClr::new(SslConfig::for_input(64)),
                    Sgd::new(SgdConfig::with_lr(0.05)),
                )
            },
            |(mut m, mut opt)| black_box(ssl_step(&mut m, &TwoViewBatch::new(&ve, &vo), &mut opt)),
            BatchSize::SmallInput,
        )
    });
    // The same step through a persistent arena: tape storage is recycled
    // across iterations, so steady-state allocation drops to near zero.
    c.bench_function("simclr_step_b32_arena", |bench| {
        let mut arena = StepArena::new();
        bench.iter_batched(
            || {
                (
                    SimClr::new(SslConfig::for_input(64)),
                    Sgd::new(SgdConfig::with_lr(0.05)),
                )
            },
            |(mut m, mut opt)| {
                black_box(ssl_step_in(
                    &mut m,
                    &TwoViewBatch::new(&ve, &vo),
                    &mut opt,
                    &mut arena,
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_calibre_step(c: &mut Criterion) {
    let mut r = rng::seeded(6);
    let base = rng::normal_matrix(&mut r, 32, 64, 1.0);
    let ve = base.map(|v| v + 0.04);
    let vo = base.map(|v| v - 0.04);
    let config = CalibreConfig::default();
    c.bench_function("calibre_step_b32", |bench| {
        bench.iter_batched(
            || {
                (
                    SimClr::new(SslConfig::for_input(64)),
                    Sgd::new(SgdConfig::with_lr(0.05)),
                )
            },
            |(mut m, mut opt)| {
                black_box(calibre_step(
                    &mut m,
                    &TwoViewBatch::new(&ve, &vo),
                    &config,
                    &mut opt,
                    7,
                ))
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_federated_round(c: &mut Criterion) {
    let fed = FederatedDataset::build(
        SynthVisionSpec::cifar10(),
        &PartitionConfig {
            num_clients: 5,
            train_per_client: 60,
            test_per_client: 20,
            unlabeled_per_client: 0,
            non_iid: NonIid::Dirichlet { alpha: 0.3 },
            seed: 7,
        },
    );
    let mut cfg = calibre_fl::FlConfig::for_input(64);
    cfg.rounds = 1;
    cfg.clients_per_round = 5;
    cfg.local_epochs = 1;
    c.bench_function("calibre_round_5clients", |bench| {
        bench.iter(|| {
            black_box(calibre::train_calibre_encoder(
                &fed,
                &cfg,
                calibre_ssl::SslKind::SimClr,
                &CalibreConfig::default(),
                &AugmentConfig::default(),
            ))
        })
    });
}

fn bench_encoder_inference(c: &mut Criterion) {
    let mut r = rng::seeded(8);
    let method = SimClr::new(SslConfig::for_input(64));
    let x = rng::normal_matrix(&mut r, 256, 64, 1.0);
    c.bench_function("encoder_infer_b256", |bench| {
        bench.iter(|| black_box(method.encoder().infer(&x)))
    });
}

fn bench_tsne(c: &mut Criterion) {
    let mut r = rng::seeded(9);
    let data = rng::normal_matrix(&mut r, 100, 32, 1.0);
    let cfg = TsneConfig {
        iterations: 50,
        ..Default::default()
    };
    c.bench_function("tsne_n100_50iters", |bench| {
        bench.iter(|| black_box(tsne(&data, &cfg)))
    });
}

fn bench_render_two_views(c: &mut Criterion) {
    let gen = calibre_data::SynthVision::new(SynthVisionSpec::cifar10());
    let mut r = rng::seeded(10);
    let samples: Vec<_> = (0..32).map(|i| gen.sample(i % 10, &mut r)).collect();
    let aug = AugmentConfig::default();
    c.bench_function("render_two_views_b32", |bench| {
        bench.iter(|| {
            let mut r2 = rng::seeded(11);
            black_box(gen.render_two_views(samples.iter(), &aug, &mut r2))
        })
    });
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2))
        .warm_up_time(std::time::Duration::from_millis(500))
}

criterion_group! {
    name = kernels;
    config = config();
    targets = bench_matmul, bench_mlp_backward, bench_nt_xent, bench_kmeans,
        bench_aggregation, bench_ssl_step, bench_calibre_step,
        bench_federated_round, bench_encoder_inference, bench_tsne,
        bench_render_two_views
}
criterion_main!(kernels);
