//! Property-based tests for the matrix algebra and autograd invariants.

use calibre_tensor::backend::{Backend, Blocked, Scalar};
use calibre_tensor::gradcheck::check_gradient;
use calibre_tensor::nn::{gradients, Activation, Binding, Mlp, Module};
use calibre_tensor::{Graph, Matrix, Workspace};
use proptest::prelude::*;
use std::sync::Arc;

/// Strategy producing a matrix with bounded entries.
fn matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0f32..3.0, rows * cols)
        .prop_map(move |data| Matrix::from_vec(rows, cols, data))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition(a in matrix(3, 4), b in matrix(4, 2), c in matrix(4, 2)) {
        let lhs = a.matmul(&b.add(&c));
        let rhs = a.matmul(&b).add(&a.matmul(&c));
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((x - y).abs() < 1e-3, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_transpose_identity(a in matrix(3, 5), b in matrix(4, 5)) {
        // (A Bᵀ)ᵀ == B Aᵀ
        let lhs = a.matmul_transpose(&b).transpose();
        let rhs = b.matmul_transpose(&a);
        for (x, y) in lhs.iter().zip(rhs.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn transpose_preserves_frobenius_norm(a in matrix(4, 6)) {
        prop_assert!((a.frobenius_norm() - a.transpose().frobenius_norm()).abs() < 1e-4);
    }

    #[test]
    fn softmax_rows_are_distributions(a in matrix(5, 7)) {
        let s = a.row_softmax();
        for r in 0..5 {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-5);
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(a in matrix(3, 5), shift in -10.0f32..10.0) {
        let s1 = a.row_softmax();
        let s2 = a.map(|v| v + shift).row_softmax();
        for (x, y) in s1.iter().zip(s2.iter()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn l2_normalized_rows_have_unit_norm_or_zero(a in matrix(6, 4)) {
        let n = a.row_l2_normalized();
        for (r, norm) in n.row_norms().iter().enumerate() {
            let orig: f32 = a.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            if orig > 1e-6 {
                prop_assert!((norm - 1.0).abs() < 1e-4, "row {r} norm {norm}");
            }
        }
    }

    #[test]
    fn gather_rows_preserves_row_content(a in matrix(6, 3), idx in prop::collection::vec(0usize..6, 1..10)) {
        let g = a.gather_rows(&idx);
        for (i, &src) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(i), a.row(src));
        }
    }

    #[test]
    fn concat_then_split_roundtrips(a in matrix(3, 4), b in matrix(2, 4)) {
        let cat = a.concat_rows(&b);
        prop_assert_eq!(cat.rows(), 5);
        let back_a = cat.gather_rows(&[0, 1, 2]);
        let back_b = cat.gather_rows(&[3, 4]);
        prop_assert_eq!(back_a, a);
        prop_assert_eq!(back_b, b);
    }

    #[test]
    fn flat_roundtrip_is_identity(seed in 0u64..1000) {
        let mut r = calibre_tensor::rng::seeded(seed);
        let mlp = Mlp::new(&[4, 6, 2], Activation::Relu, &mut r);
        let mut clone = Mlp::new(&[4, 6, 2], Activation::Relu, &mut r);
        clone.load_flat(&mlp.to_flat());
        prop_assert_eq!(clone.to_flat(), mlp.to_flat());
    }

    #[test]
    fn autograd_linear_map_gradient_is_exact(x in matrix(2, 3), w in matrix(3, 2)) {
        // For f = sum(x W), df/dx = 1·Wᵀ exactly (no nonlinearity).
        let mut g = Graph::new();
        let xn = g.leaf(x);
        let wn = g.constant(w.clone());
        let y = g.matmul(xn, wn);
        let loss = g.sum_all(y);
        g.backward(loss);
        let grad = g.grad(xn).unwrap();
        for r in 0..2 {
            for c in 0..3 {
                let expected: f32 = w.row(c).iter().sum();
                prop_assert!((grad.get(r, c) - expected).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative(x in matrix(4, 3), t0 in 0usize..3, t1 in 0usize..3, t2 in 0usize..3, t3 in 0usize..3) {
        let mut g = Graph::new();
        let xn = g.constant(x);
        let loss = g.cross_entropy(xn, &[t0, t1, t2, t3]);
        prop_assert!(g.value(loss).get(0, 0) >= 0.0);
    }

    #[test]
    fn composite_gradcheck_on_random_mlp_loss(x in matrix(3, 4)) {
        // Shift inputs into ReLU's strictly-positive region: finite
        // differences are invalid at the kink (and the all-zero matrix also
        // degenerates row normalization).
        let x = x.map(|v| v + 3.5);
        let report = check_gradient(&x, 1e-2, |g, xn| {
            let h = g.relu(xn);
            let n = g.row_l2_normalize(h);
            let nt = g.transpose(n);
            let sims = g.matmul(n, nt);
            let masked = g.mask_diagonal(sims, -1e9);
            g.cross_entropy(masked, &[1, 2, 0])
        });
        prop_assert!(report.passes(5e-2), "{report:?}");
    }

    #[test]
    fn binding_gradients_match_parameter_count(seed in 0u64..100) {
        let mut r = calibre_tensor::rng::seeded(seed);
        let mlp = Mlp::new(&[3, 5, 2], Activation::Tanh, &mut r);
        let x = calibre_tensor::rng::normal_matrix(&mut r, 4, 3, 1.0);
        let mut g = Graph::new();
        let xn = g.constant(x);
        let mut binding = Binding::new();
        let out = mlp.forward(&mut g, xn, &mut binding);
        let loss = g.mean_all(out);
        g.backward(loss);
        let grads = gradients(&g, &binding);
        prop_assert_eq!(grads.len(), mlp.parameters().len());
        for (gr, p) in grads.iter().zip(mlp.parameters()) {
            prop_assert_eq!(gr.shape(), p.shape());
            prop_assert!(gr.all_finite());
        }
    }

    #[test]
    fn scalar_and_blocked_matmul_agree(a in matrix(33, 48), b in matrix(48, 21)) {
        // Shapes deliberately larger than (and not a multiple of) the tile
        // size, so the Blocked kernel exercises both full and ragged tiles.
        let mut s = Matrix::zeros(33, 21);
        let mut bl = Matrix::zeros(33, 21);
        Scalar.matmul(&a, &b, &mut s);
        Blocked.matmul(&a, &b, &mut bl);
        for (x, y) in s.iter().zip(bl.iter()) {
            prop_assert!((x - y).abs() <= 1e-4 * (1.0 + x.abs()), "matmul: {x} vs {y}");
        }
    }

    #[test]
    fn scalar_and_blocked_transposed_matmuls_agree(
        a in matrix(19, 40),
        b in matrix(23, 40),
        c in matrix(19, 23),
    ) {
        // A·Bᵀ (dA of matmul backward) through both backends.
        let mut s_nt = Matrix::zeros(19, 23);
        let mut b_nt = Matrix::zeros(19, 23);
        Scalar.matmul_nt(&a, &b, &mut s_nt);
        Blocked.matmul_nt(&a, &b, &mut b_nt);
        for (x, y) in s_nt.iter().zip(b_nt.iter()) {
            prop_assert!((x - y).abs() <= 1e-4 * (1.0 + x.abs()), "nt: {x} vs {y}");
        }
        // Aᵀ·C (dB of matmul backward) through both backends.
        let mut s_tn = Matrix::zeros(40, 23);
        let mut b_tn = Matrix::zeros(40, 23);
        Scalar.matmul_tn(&a, &c, &mut s_tn);
        Blocked.matmul_tn(&a, &c, &mut b_tn);
        for (x, y) in s_tn.iter().zip(b_tn.iter()) {
            prop_assert!((x - y).abs() <= 1e-4 * (1.0 + x.abs()), "tn: {x} vs {y}");
        }
    }

    #[test]
    fn scalar_and_blocked_backward_gradients_agree(x in matrix(6, 16)) {
        // The same contrastive-shaped graph built on a Scalar workspace and
        // a Blocked workspace must produce matching gradients for the input
        // leaf and every parameter.
        let grad_under = |backend: Arc<dyn Backend>| {
            let mut r = calibre_tensor::rng::seeded(11);
            let mlp = Mlp::new(&[16, 24, 8], Activation::Relu, &mut r);
            let mut g = Graph::with_workspace(Workspace::with_backend(backend));
            let xn = g.leaf_from(&x);
            let mut binding = Binding::new();
            let out = mlp.forward(&mut g, xn, &mut binding);
            let n = g.row_l2_normalize(out);
            let nt = g.transpose(n);
            let sims = g.matmul(n, nt);
            let masked = g.mask_diagonal(sims, -1e9);
            let loss = g.cross_entropy(masked, &[1, 2, 3, 4, 5, 0]);
            g.backward(loss);
            let input_grad = g.grad(xn).unwrap().clone();
            (input_grad, gradients(&g, &binding))
        };
        let (sg, sp) = grad_under(Arc::new(Scalar));
        let (bg, bp) = grad_under(Arc::new(Blocked));
        for (x1, y1) in sg.iter().zip(bg.iter()) {
            prop_assert!((x1 - y1).abs() <= 1e-4 * (1.0 + x1.abs()), "input grad: {x1} vs {y1}");
        }
        prop_assert_eq!(sp.len(), bp.len());
        for (pa, pb) in sp.iter().zip(bp.iter()) {
            for (x1, y1) in pa.iter().zip(pb.iter()) {
                prop_assert!((x1 - y1).abs() <= 1e-4 * (1.0 + x1.abs()), "param grad: {x1} vs {y1}");
            }
        }
    }

    #[test]
    fn group_mean_rows_average_of_members(data in matrix(8, 2), assign in prop::collection::vec(0usize..3, 8)) {
        let mut g = Graph::new();
        let xn = g.constant(data.clone());
        let c = g.group_mean_rows(xn, &assign, 3);
        for k in 0..3 {
            let members: Vec<usize> = (0..8).filter(|&i| assign[i] == k).collect();
            if members.is_empty() {
                prop_assert!(g.value(c).row(k).iter().all(|&v| v == 0.0));
            } else {
                for col in 0..2 {
                    let avg: f32 = members.iter().map(|&i| data.get(i, col)).sum::<f32>() / members.len() as f32;
                    prop_assert!((g.value(c).get(k, col) - avg).abs() < 1e-4);
                }
            }
        }
    }
}
