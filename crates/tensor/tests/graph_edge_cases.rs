//! Edge-case tests for the autograd tape: shape-mismatch panics, degenerate
//! inputs, and ops whose unit coverage in the module tests is indirect.

use calibre_tensor::{Graph, Matrix};

#[test]
#[should_panic(expected = "matmul shape mismatch")]
fn matmul_rejects_inner_dimension_mismatch() {
    let mut g = Graph::new();
    let a = g.constant(Matrix::zeros(2, 3));
    let b = g.constant(Matrix::zeros(2, 3));
    g.matmul(a, b);
}

#[test]
#[should_panic(expected = "elementwise op shape mismatch")]
fn add_rejects_shape_mismatch() {
    let mut g = Graph::new();
    let a = g.constant(Matrix::zeros(2, 3));
    let b = g.constant(Matrix::zeros(3, 2));
    g.add(a, b);
}

#[test]
#[should_panic(expected = "square")]
fn mask_diagonal_rejects_rectangles() {
    let mut g = Graph::new();
    let a = g.constant(Matrix::zeros(2, 3));
    g.mask_diagonal(a, 0.0);
}

#[test]
#[should_panic(expected = "reshape cannot change element count")]
fn reshape_rejects_size_change() {
    let mut g = Graph::new();
    let a = g.constant(Matrix::zeros(2, 3));
    g.reshape(a, 2, 4);
}

#[test]
fn reshape_roundtrip_preserves_gradients() {
    let mut g = Graph::new();
    let x = g.leaf(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
    let flat = g.reshape(x, 1, 4);
    let back = g.reshape(flat, 2, 2);
    let sq = g.mul(back, back);
    let loss = g.sum_all(sq);
    g.backward(loss);
    let grad = g.grad(x).unwrap();
    assert_eq!(grad.row(0), &[2.0, 4.0]);
    assert_eq!(grad.row(1), &[6.0, 8.0]);
}

#[test]
fn exp_log_inverse_roundtrip() {
    let mut g = Graph::new();
    let x = g.constant(Matrix::from_rows(&[vec![0.5, 1.5, 2.5]]));
    let e = g.exp(x);
    let l = g.log(e);
    for (a, b) in g.value(x).iter().zip(g.value(l).iter()) {
        assert!((a - b).abs() < 1e-5);
    }
}

#[test]
fn log_clamps_nonpositive_inputs() {
    let mut g = Graph::new();
    let x = g.constant(Matrix::from_rows(&[vec![0.0, -1.0]]));
    let l = g.log(x);
    assert!(
        g.value(l).all_finite(),
        "log of clamped input must be finite"
    );
}

#[test]
fn div_by_small_values_is_finite_forward() {
    let mut g = Graph::new();
    let a = g.constant(Matrix::from_rows(&[vec![1.0]]));
    let b = g.constant(Matrix::from_rows(&[vec![1e-6]]));
    let d = g.div(a, b);
    assert!(g.value(d).all_finite());
    assert!((g.value(d).get(0, 0) - 1e6).abs() < 1.0);
}

#[test]
fn scale_by_zero_kills_gradient_but_not_structure() {
    let mut g = Graph::new();
    let x = g.leaf(Matrix::from_rows(&[vec![3.0, 4.0]]));
    let y = g.scale(x, 0.0);
    let loss = g.sum_all(y);
    g.backward(loss);
    let grad = g.grad(x).unwrap();
    assert!(grad.iter().all(|&v| v == 0.0));
    assert_eq!(grad.shape(), (1, 2));
}

#[test]
fn chained_detach_still_forwards_values() {
    let mut g = Graph::new();
    let x = g.leaf(Matrix::from_rows(&[vec![2.0]]));
    let d1 = g.detach(x);
    let d2 = g.detach(d1);
    assert_eq!(g.value(d2).get(0, 0), 2.0);
    let loss = g.sum_all(d2);
    g.backward(loss);
    assert!(g.grad(x).is_none());
}

#[test]
fn gather_rows_with_repeats_accumulates_gradient() {
    let mut g = Graph::new();
    let x = g.leaf(Matrix::from_rows(&[vec![1.0], vec![2.0]]));
    let gathered = g.gather_rows(x, &[0, 0, 0, 1]);
    let loss = g.sum_all(gathered);
    g.backward(loss);
    let grad = g.grad(x).unwrap();
    assert_eq!(grad.col(0), vec![3.0, 1.0]);
}

#[test]
fn cross_entropy_of_uniform_logits_is_log_k() {
    let mut g = Graph::new();
    let logits = g.constant(Matrix::zeros(4, 10));
    let loss = g.cross_entropy(logits, &[0, 3, 5, 9]);
    let expected = (10.0f32).ln();
    assert!((g.value(loss).get(0, 0) - expected).abs() < 1e-5);
}

#[test]
fn graph_len_tracks_node_insertion() {
    let mut g = Graph::new();
    assert!(g.is_empty());
    let a = g.constant(Matrix::zeros(1, 1));
    let b = g.leaf(Matrix::zeros(1, 1));
    let _ = g.add(a, b);
    assert_eq!(g.len(), 3);
}

#[test]
fn rowwise_dot_of_orthogonal_rows_is_zero() {
    let mut g = Graph::new();
    let a = g.constant(Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 2.0]]));
    let b = g.constant(Matrix::from_rows(&[vec![0.0, 5.0], vec![3.0, 0.0]]));
    let d = g.rowwise_dot(a, b);
    assert_eq!(g.value(d).col(0), vec![0.0, 0.0]);
}

#[test]
fn group_mean_rows_single_group_equals_mean_rows() {
    let m = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0], vec![5.0, 20.0]]);
    let mut g = Graph::new();
    let x = g.constant(m.clone());
    let c = g.group_mean_rows(x, &[0, 0, 0], 1);
    assert_eq!(g.value(c).row(0), m.mean_rows().row(0));
}

#[test]
fn backward_through_deep_chain_stays_finite() {
    // A 40-op chain of alternating tanh/scale must not under/overflow.
    let mut g = Graph::new();
    let x = g.leaf(Matrix::from_rows(&[vec![0.7, -0.3, 1.1]]));
    let mut h = x;
    for i in 0..20 {
        h = g.tanh(h);
        h = g.scale(h, if i % 2 == 0 { 1.5 } else { 0.7 });
    }
    let loss = g.mean_all(h);
    g.backward(loss);
    let grad = g.grad(x).unwrap();
    assert!(grad.all_finite());
}
