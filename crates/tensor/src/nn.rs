//! Neural-network building blocks on top of the autograd [`Graph`].
//!
//! Parameters live in plain structs ([`Linear`], [`Mlp`]) outside the tape.
//! Each forward pass inserts them as differentiable leaves and records the
//! leaf handles in a [`Binding`]; after `backward`, [`gradients`] extracts
//! the per-parameter gradients in the same order as
//! [`Module::parameters`]. This mirrors how the federated runtime treats a
//! model: a bag of matrices that can be flattened, shipped, aggregated and
//! loaded back.

use crate::rng::normal_matrix;
use crate::{Graph, Matrix, Node};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Activation function applied between MLP layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Activation {
    /// Rectified linear unit (default).
    #[default]
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// No nonlinearity.
    Identity,
}

impl Activation {
    /// Applies the activation to a graph node.
    pub fn apply(self, g: &mut Graph, x: Node) -> Node {
        match self {
            Activation::Relu => g.relu(x),
            Activation::Tanh => g.tanh(x),
            Activation::Identity => x,
        }
    }

    /// Applies the activation to a plain matrix (inference path).
    pub fn apply_matrix(self, x: &Matrix) -> Matrix {
        match self {
            Activation::Relu => x.map(|v| v.max(0.0)),
            Activation::Tanh => x.map(f32::tanh),
            Activation::Identity => x.clone(),
        }
    }
}

/// Anything that owns an ordered list of parameter matrices.
///
/// The order returned by [`Module::parameters`] and
/// [`Module::parameters_mut`] must be identical and stable; the federated
/// aggregation, flattening and EMA helpers all rely on it.
pub trait Module {
    /// Immutable borrows of every parameter, in a stable order.
    fn parameters(&self) -> Vec<&Matrix>;
    /// Mutable borrows of every parameter, in the same order.
    fn parameters_mut(&mut self) -> Vec<&mut Matrix>;

    /// Total number of scalar parameters.
    fn num_scalars(&self) -> usize {
        self.parameters().iter().map(|p| p.len()).sum()
    }

    /// Flattens every parameter into one `Vec<f32>` (aggregation wire format).
    fn to_flat(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(self.num_scalars());
        for p in self.parameters() {
            out.extend_from_slice(p.as_slice());
        }
        out
    }

    /// Loads parameters from a flat vector produced by [`Module::to_flat`].
    ///
    /// # Panics
    ///
    /// Panics if `flat.len()` does not match [`Module::num_scalars`].
    fn load_flat(&mut self, flat: &[f32]) {
        let expected = self.num_scalars();
        assert_eq!(
            flat.len(),
            expected,
            "flat parameter length mismatch: got {}, expected {expected}",
            flat.len()
        );
        let mut offset = 0;
        for p in self.parameters_mut() {
            let n = p.len();
            p.as_mut_slice().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
    }
}

/// Exponential-moving-average update `target ← m·target + (1-m)·online`,
/// the building block of BYOL / MoCo momentum encoders and FedEMA.
///
/// # Panics
///
/// Panics if the two modules have different parameter shapes.
pub fn ema_update<M: Module + ?Sized>(target: &mut M, online: &M, momentum: f32) {
    for (t, o) in target.parameters_mut().into_iter().zip(online.parameters()) {
        assert_eq!(t.shape(), o.shape(), "ema_update shape mismatch");
        for (tv, &ov) in t.iter_mut().zip(o.iter()) {
            *tv = momentum * *tv + (1.0 - momentum) * ov;
        }
    }
}

/// Records the graph leaves a module's parameters were bound to during one
/// forward pass. Order matches [`Module::parameters`].
#[derive(Debug, Default, Clone)]
pub struct Binding {
    nodes: Vec<Node>,
}

impl Binding {
    /// Creates an empty binding.
    pub fn new() -> Self {
        Binding { nodes: Vec::new() }
    }

    /// Adds a bound parameter leaf. Layers call this during `forward`.
    pub fn push(&mut self, node: Node) {
        self.nodes.push(node);
    }

    /// The bound leaves, in parameter order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of bound parameters.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether no parameters were bound.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

/// Extracts per-parameter gradients after `backward`, in binding order.
///
/// Parameters that did not participate in the loss (e.g. a frozen branch)
/// yield zero matrices of the right shape.
pub fn gradients(g: &Graph, binding: &Binding) -> Vec<Matrix> {
    binding
        .nodes()
        .iter()
        .map(|&n| match g.grad(n) {
            Some(grad) => grad.clone(),
            None => {
                let (r, c) = g.value(n).shape();
                Matrix::zeros(r, c)
            }
        })
        .collect()
}

/// A dense affine layer `y = x W + b` with `W: (in, out)` and `b: (1, out)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    w: Matrix,
    b: Matrix,
}

impl Linear {
    /// Creates a layer with Kaiming-style initialization (`std = √(2/in)`)
    /// and zero bias.
    pub fn new<R: Rng + ?Sized>(input_dim: usize, output_dim: usize, rng: &mut R) -> Self {
        let std = (2.0 / input_dim.max(1) as f32).sqrt();
        Linear {
            w: normal_matrix(rng, input_dim, output_dim, std),
            b: Matrix::zeros(1, output_dim),
        }
    }

    /// Creates a layer from explicit weight and bias matrices.
    ///
    /// # Panics
    ///
    /// Panics if `b` is not a `(1, w.cols())` row vector.
    pub fn from_parts(w: Matrix, b: Matrix) -> Self {
        assert_eq!(
            b.shape(),
            (1, w.cols()),
            "bias must be a (1, out) row vector"
        );
        Linear { w, b }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        self.w.rows()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        self.w.cols()
    }

    /// The weight matrix.
    pub fn weight(&self) -> &Matrix {
        &self.w
    }

    /// The bias row vector.
    pub fn bias(&self) -> &Matrix {
        &self.b
    }

    /// Differentiable forward pass; binds `W` and `b` as leaves on `g`.
    pub fn forward(&self, g: &mut Graph, x: Node, binding: &mut Binding) -> Node {
        let w = g.leaf_from(&self.w);
        let b = g.leaf_from(&self.b);
        binding.push(w);
        binding.push(b);
        let xw = g.matmul(x, w);
        g.add_row(xw, b)
    }

    /// Inference forward pass on plain matrices (no tape, no gradients).
    pub fn infer(&self, x: &Matrix) -> Matrix {
        x.matmul(&self.w).add_row_vec(&self.b)
    }

    /// Binds `W` and `b` as leaves without running a forward pass. Use with
    /// [`Linear::forward_with`] when the same parameters must be applied to
    /// several inputs in one graph (e.g. the two SSL views) so gradients
    /// accumulate on a single leaf per parameter.
    pub fn bind(&self, g: &mut Graph, binding: &mut Binding) -> (Node, Node) {
        let w = g.leaf_from(&self.w);
        let b = g.leaf_from(&self.b);
        binding.push(w);
        binding.push(b);
        (w, b)
    }

    /// Forward pass through pre-bound parameter leaves from [`Linear::bind`].
    pub fn forward_with(&self, g: &mut Graph, x: Node, bound: (Node, Node)) -> Node {
        let xw = g.matmul(x, bound.0);
        g.add_row(xw, bound.1)
    }
}

impl Module for Linear {
    fn parameters(&self) -> Vec<&Matrix> {
        vec![&self.w, &self.b]
    }

    fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.w, &mut self.b]
    }
}

/// A multi-layer perceptron: `dims.len() - 1` [`Linear`] layers with a shared
/// hidden activation and an optional output activation.
///
/// The `Mlp` is the encoder/projector/predictor/head workhorse of the whole
/// reproduction (the paper's ResNet-18 substitute — see `DESIGN.md` §2).
///
/// # Examples
///
/// ```
/// use calibre_tensor::nn::{Mlp, Activation, Module};
/// use calibre_tensor::{Graph, Matrix, rng};
///
/// let mut r = rng::seeded(0);
/// let mlp = Mlp::new(&[8, 16, 4], Activation::Relu, &mut r);
/// assert_eq!(mlp.input_dim(), 8);
/// assert_eq!(mlp.output_dim(), 4);
/// let out = mlp.infer(&Matrix::zeros(3, 8));
/// assert_eq!(out.shape(), (3, 4));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    layers: Vec<Linear>,
    hidden_activation: Activation,
    output_activation: Activation,
}

impl Mlp {
    /// Creates an MLP with the given layer dimensions, hidden activation and
    /// an identity output activation.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    pub fn new<R: Rng + ?Sized>(
        dims: &[usize],
        hidden_activation: Activation,
        rng: &mut R,
    ) -> Self {
        Self::with_output_activation(dims, hidden_activation, Activation::Identity, rng)
    }

    /// Creates an MLP with an explicit output activation.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dimensions are given.
    pub fn with_output_activation<R: Rng + ?Sized>(
        dims: &[usize],
        hidden_activation: Activation,
        output_activation: Activation,
        rng: &mut R,
    ) -> Self {
        assert!(
            dims.len() >= 2,
            "an MLP needs at least input and output dims"
        );
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp {
            layers,
            hidden_activation,
            output_activation,
        }
    }

    /// Input dimensionality.
    pub fn input_dim(&self) -> usize {
        // analyze:allow(no-expect) -- Mlp::new rejects empty layer lists.
        self.layers.first().expect("at least one layer").input_dim()
    }

    /// Output dimensionality.
    pub fn output_dim(&self) -> usize {
        // analyze:allow(no-expect) -- Mlp::new rejects empty layer lists.
        self.layers.last().expect("at least one layer").output_dim()
    }

    /// Number of affine layers.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Borrow of the individual layers.
    pub fn layers(&self) -> &[Linear] {
        &self.layers
    }

    /// Differentiable forward pass; binds all layer parameters on `g`.
    pub fn forward(&self, g: &mut Graph, x: Node, binding: &mut Binding) -> Node {
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(g, h, binding);
            h = if i < last {
                self.hidden_activation.apply(g, h)
            } else {
                self.output_activation.apply(g, h)
            };
        }
        h
    }

    /// Binds every layer's parameters as leaves without running a forward
    /// pass. Use with [`Mlp::forward_with`] when the same network processes
    /// several inputs in one graph (e.g. the two SSL views): gradients from
    /// all passes accumulate on one leaf per parameter.
    pub fn bind(&self, g: &mut Graph, binding: &mut Binding) -> Vec<(Node, Node)> {
        self.layers.iter().map(|l| l.bind(g, binding)).collect()
    }

    /// Forward pass through pre-bound parameter leaves from [`Mlp::bind`].
    ///
    /// # Panics
    ///
    /// Panics if `bound.len()` differs from the layer count.
    pub fn forward_with(&self, g: &mut Graph, x: Node, bound: &[(Node, Node)]) -> Node {
        assert_eq!(bound.len(), self.layers.len(), "bound leaf count mismatch");
        let mut h = x;
        let last = self.layers.len() - 1;
        for (i, (layer, &nodes)) in self.layers.iter().zip(bound.iter()).enumerate() {
            h = layer.forward_with(g, h, nodes);
            h = if i < last {
                self.hidden_activation.apply(g, h)
            } else {
                self.output_activation.apply(g, h)
            };
        }
        h
    }

    /// Inference forward pass on plain matrices (no tape, no gradients).
    ///
    /// This is the "frozen encoder" path used during the personalization
    /// stage: features are extracted without ever touching the tape.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let mut h = x.clone();
        let last = self.layers.len() - 1;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.infer(&h);
            h = if i < last {
                self.hidden_activation.apply_matrix(&h)
            } else {
                self.output_activation.apply_matrix(&h)
            };
        }
        h
    }
}

impl Module for Mlp {
    fn parameters(&self) -> Vec<&Matrix> {
        self.layers.iter().flat_map(|l| l.parameters()).collect()
    }

    fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        self.layers
            .iter_mut()
            .flat_map(|l| l.parameters_mut())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    #[test]
    fn linear_infer_matches_graph_forward() {
        let mut r = rng::seeded(1);
        let layer = Linear::new(4, 3, &mut r);
        let x = rng::normal_matrix(&mut r, 5, 4, 1.0);

        let infer = layer.infer(&x);

        let mut g = Graph::new();
        let xn = g.constant(x);
        let mut binding = Binding::new();
        let out = layer.forward(&mut g, xn, &mut binding);
        assert_eq!(binding.len(), 2);
        for (a, b) in infer.iter().zip(g.value(out).iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn mlp_shapes_and_depth() {
        let mut r = rng::seeded(2);
        let mlp = Mlp::new(&[10, 20, 30, 5], Activation::Relu, &mut r);
        assert_eq!(mlp.depth(), 3);
        assert_eq!(mlp.input_dim(), 10);
        assert_eq!(mlp.output_dim(), 5);
        let y = mlp.infer(&Matrix::zeros(7, 10));
        assert_eq!(y.shape(), (7, 5));
    }

    #[test]
    fn mlp_infer_matches_graph_forward() {
        let mut r = rng::seeded(3);
        let mlp = Mlp::new(&[6, 8, 4], Activation::Tanh, &mut r);
        let x = rng::normal_matrix(&mut r, 3, 6, 1.0);
        let infer = mlp.infer(&x);
        let mut g = Graph::new();
        let xn = g.constant(x);
        let mut binding = Binding::new();
        let out = mlp.forward(&mut g, xn, &mut binding);
        assert_eq!(binding.len(), 4);
        for (a, b) in infer.iter().zip(g.value(out).iter()) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn flat_roundtrip_preserves_parameters() {
        let mut r = rng::seeded(4);
        let mlp = Mlp::new(&[5, 7, 2], Activation::Relu, &mut r);
        let flat = mlp.to_flat();
        assert_eq!(flat.len(), mlp.num_scalars());
        assert_eq!(flat.len(), 5 * 7 + 7 + 7 * 2 + 2);

        let mut other = Mlp::new(&[5, 7, 2], Activation::Relu, &mut r);
        assert_ne!(other.to_flat(), flat, "fresh init should differ");
        other.load_flat(&flat);
        assert_eq!(other.to_flat(), flat);
        // loaded copy computes identically
        let x = rng::normal_matrix(&mut r, 2, 5, 1.0);
        assert_eq!(mlp.infer(&x), other.infer(&x));
    }

    #[test]
    #[should_panic(expected = "flat parameter length mismatch")]
    fn load_flat_rejects_wrong_length() {
        let mut r = rng::seeded(5);
        let mut mlp = Mlp::new(&[3, 2], Activation::Relu, &mut r);
        mlp.load_flat(&[0.0; 3]);
    }

    #[test]
    fn gradients_returns_zero_for_unused_params() {
        let mut r = rng::seeded(6);
        let layer = Linear::new(2, 2, &mut r);
        let mut g = Graph::new();
        let mut binding = Binding::new();
        // Bind but never use in the loss.
        let x = g.constant(Matrix::zeros(1, 2));
        let _out = layer.forward(&mut g, x, &mut binding);
        let unrelated = g.leaf(Matrix::from_vec(1, 1, vec![2.0]));
        let loss = g.sum_all(unrelated);
        g.backward(loss);
        let grads = gradients(&g, &binding);
        assert_eq!(grads.len(), 2);
        assert!(grads.iter().all(|m| m.max_abs() == 0.0));
        assert_eq!(grads[0].shape(), (2, 2));
        assert_eq!(grads[1].shape(), (1, 2));
    }

    #[test]
    fn ema_update_moves_target_toward_online() {
        let mut r = rng::seeded(7);
        let online = Mlp::new(&[3, 3], Activation::Relu, &mut r);
        let mut target = Mlp::new(&[3, 3], Activation::Relu, &mut r);
        let before = target.to_flat();
        ema_update(&mut target, &online, 0.9);
        let after = target.to_flat();
        let online_flat = online.to_flat();
        for ((b, a), o) in before.iter().zip(after.iter()).zip(online_flat.iter()) {
            let expected = 0.9 * b + 0.1 * o;
            assert!((a - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn ema_with_momentum_one_is_identity() {
        let mut r = rng::seeded(8);
        let online = Mlp::new(&[3, 3], Activation::Relu, &mut r);
        let mut target = Mlp::new(&[3, 3], Activation::Relu, &mut r);
        let before = target.to_flat();
        ema_update(&mut target, &online, 1.0);
        assert_eq!(target.to_flat(), before);
    }

    #[test]
    fn bound_forward_matches_plain_forward() {
        let mut r = rng::seeded(20);
        let mlp = Mlp::new(&[4, 6, 3], Activation::Relu, &mut r);
        let x = rng::normal_matrix(&mut r, 5, 4, 1.0);
        let mut g = Graph::new();
        let xn = g.constant(x.clone());
        let mut binding = Binding::new();
        let bound = mlp.bind(&mut g, &mut binding);
        let out = mlp.forward_with(&mut g, xn, &bound);
        let infer = mlp.infer(&x);
        for (a, b) in infer.iter().zip(g.value(out).iter()) {
            assert!((a - b).abs() < 1e-5);
        }
        assert_eq!(binding.len(), mlp.parameters().len());
    }

    #[test]
    fn shared_binding_accumulates_gradients_across_passes() {
        // Running the same bound network on two inputs must give the sum of
        // the two per-pass gradients on each parameter leaf.
        let mut r = rng::seeded(21);
        let mlp = Mlp::new(&[3, 2], Activation::Identity, &mut r);
        let x1 = rng::normal_matrix(&mut r, 4, 3, 1.0);
        let x2 = rng::normal_matrix(&mut r, 4, 3, 1.0);

        let grad_for = |inputs: &[&Matrix]| -> Vec<Matrix> {
            let mut g = Graph::new();
            let mut binding = Binding::new();
            let bound = mlp.bind(&mut g, &mut binding);
            let mut total: Option<crate::Node> = None;
            for x in inputs {
                let xn = g.constant((*x).clone());
                let out = mlp.forward_with(&mut g, xn, &bound);
                let s = g.sum_all(out);
                total = Some(match total {
                    Some(t) => g.add(t, s),
                    None => s,
                });
            }
            let loss = total.unwrap();
            g.backward(loss);
            gradients(&g, &binding)
        };

        let g1 = grad_for(&[&x1]);
        let g2 = grad_for(&[&x2]);
        let both = grad_for(&[&x1, &x2]);
        for ((a, b), sum) in g1.iter().zip(g2.iter()).zip(both.iter()) {
            let expected = a.add(b);
            for (e, s) in expected.iter().zip(sum.iter()) {
                assert!((e - s).abs() < 1e-4, "accumulated grad mismatch");
            }
        }
    }

    #[test]
    fn training_one_step_reduces_simple_regression_loss() {
        // Single gradient step on MSE must reduce the loss for a small lr.
        let mut r = rng::seeded(9);
        let mut mlp = Mlp::new(&[2, 8, 1], Activation::Tanh, &mut r);
        let x = rng::normal_matrix(&mut r, 16, 2, 1.0);
        let target = x.row_sum_sq(); // learn ||x||²

        let loss_of = |m: &Mlp| {
            let pred = m.infer(&x);
            pred.sub(&target).row_sum_sq().mean()
        };
        let before = loss_of(&mlp);

        let mut g = Graph::new();
        let xn = g.constant(x.clone());
        let tn = g.constant(target.clone());
        let mut binding = Binding::new();
        let pred = mlp.forward(&mut g, xn, &mut binding);
        let diff = g.sub(pred, tn);
        let sq = g.mul(diff, diff);
        let loss = g.mean_all(sq);
        g.backward(loss);
        let grads = gradients(&g, &binding);
        for (p, gr) in mlp.parameters_mut().into_iter().zip(grads.iter()) {
            p.add_scaled(gr, -0.01);
        }
        let after = loss_of(&mlp);
        assert!(after < before, "loss should decrease: {before} -> {after}");
    }
}
