//! Optimizers.
//!
//! The paper trains every personalized head with plain SGD (lr 0.05) and the
//! SSL encoders with SGD + momentum, so that is all this module provides —
//! with optional weight decay and gradient clipping because several
//! baselines (SCAFFOLD, Ditto) need them.

use crate::nn::Module;
use crate::Matrix;
use serde::{Deserialize, Serialize};

/// Configuration for [`Sgd`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgdConfig {
    /// Learning rate.
    pub lr: f32,
    /// Momentum coefficient (0 disables the velocity buffer).
    pub momentum: f32,
    /// Decoupled L2 weight decay applied to the parameter values.
    pub weight_decay: f32,
    /// If positive, gradients are rescaled so the global L2 norm does not
    /// exceed this value.
    pub grad_clip: f32,
}

impl Default for SgdConfig {
    fn default() -> Self {
        SgdConfig {
            lr: 0.05,
            momentum: 0.0,
            weight_decay: 0.0,
            grad_clip: 0.0,
        }
    }
}

impl SgdConfig {
    /// Plain SGD with the given learning rate.
    pub fn with_lr(lr: f32) -> Self {
        SgdConfig {
            lr,
            ..SgdConfig::default()
        }
    }

    /// SGD with momentum.
    pub fn with_lr_momentum(lr: f32, momentum: f32) -> Self {
        SgdConfig {
            lr,
            momentum,
            ..SgdConfig::default()
        }
    }
}

/// Stochastic gradient descent with optional momentum, weight decay and
/// global-norm gradient clipping.
///
/// The optimizer is stateful (velocity buffers) and tied to the parameter
/// *order* of the module it optimizes, not to the module itself; reusing one
/// `Sgd` across modules with identical shapes is allowed (this is exactly
/// what the federated runtime does when a client trains a fresh model copy
/// every round).
///
/// # Examples
///
/// ```
/// use calibre_tensor::optim::{Sgd, SgdConfig};
/// use calibre_tensor::nn::{Mlp, Activation, Module};
/// use calibre_tensor::{Matrix, rng};
///
/// let mut r = rng::seeded(0);
/// let mut mlp = Mlp::new(&[2, 2], Activation::Relu, &mut r);
/// let mut opt = Sgd::new(SgdConfig::with_lr(0.1));
/// let grads: Vec<Matrix> = mlp.parameters().iter()
///     .map(|p| Matrix::full(p.rows(), p.cols(), 1.0)).collect();
/// let before = mlp.to_flat();
/// opt.step(&mut mlp, &grads);
/// let after = mlp.to_flat();
/// assert!(before.iter().zip(&after).all(|(b, a)| (b - 0.1 - a).abs() < 1e-6));
/// ```
#[derive(Debug, Clone)]
pub struct Sgd {
    config: SgdConfig,
    velocity: Vec<Matrix>,
}

impl Sgd {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: SgdConfig) -> Self {
        Sgd {
            config,
            velocity: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &SgdConfig {
        &self.config
    }

    /// Overrides the learning rate (for schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.config.lr = lr;
    }

    /// Applies one update step to `module` given `grads` in parameter order.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the module's parameter count or
    /// any gradient shape mismatches its parameter.
    pub fn step<M: Module + ?Sized>(&mut self, module: &mut M, grads: &[Matrix]) {
        let span = calibre_telemetry::span("optimizer_step");
        span.add_items(grads.len() as u64);
        let mut params = module.parameters_mut();
        assert_eq!(
            params.len(),
            grads.len(),
            "gradient count {} does not match parameter count {}",
            grads.len(),
            params.len()
        );

        let clip_scale = if self.config.grad_clip > 0.0 {
            let total: f32 = grads
                .iter()
                .map(|g| {
                    let n = g.frobenius_norm();
                    n * n
                })
                .sum::<f32>()
                .sqrt();
            if total > self.config.grad_clip {
                self.config.grad_clip / total
            } else {
                1.0
            }
        } else {
            1.0
        };

        if self.config.momentum > 0.0 && self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
        }

        for (i, (p, g)) in params.iter_mut().zip(grads.iter()).enumerate() {
            assert_eq!(p.shape(), g.shape(), "gradient {i} shape mismatch");
            let mut effective = g.scale(clip_scale);
            if self.config.weight_decay > 0.0 {
                effective.add_scaled(p, self.config.weight_decay);
            }
            if self.config.momentum > 0.0 {
                let v = &mut self.velocity[i];
                // v ← m·v + g ; p ← p − lr·v
                for (vv, &gv) in v.iter_mut().zip(effective.iter()) {
                    *vv = self.config.momentum * *vv + gv;
                }
                p.add_scaled(&self.velocity[i], -self.config.lr);
            } else {
                p.add_scaled(&effective, -self.config.lr);
            }
        }
    }

    /// Applies one update step reading gradients directly off a
    /// differentiated [`Graph`](crate::Graph), with in-place parameter
    /// updates.
    ///
    /// Equivalent to `step(module, &gradients(graph, binding))` but without
    /// materializing the gradient vector: parameters whose leaves received
    /// no gradient are treated as having zero gradients (weight decay and
    /// momentum-velocity decay still apply), bit-identically to the
    /// materialized path. This is the arena hot-path entry point — one local
    /// update performs no per-step allocation at all.
    ///
    /// # Panics
    ///
    /// Panics if `binding.len()` differs from the module's parameter count
    /// or any gradient shape mismatches its parameter.
    pub fn step_graph<M: Module + ?Sized>(
        &mut self,
        module: &mut M,
        graph: &crate::Graph,
        binding: &crate::nn::Binding,
    ) {
        self.step_graph_masked(module, graph, binding, |_| false);
    }

    /// Like [`Sgd::step_graph`] but treats parameters for which
    /// `frozen(index)` returns `true` as having zero gradients, regardless
    /// of what the tape computed. Used for partial-model training (e.g.
    /// head-only fine-tuning where the encoder is frozen): frozen parameters
    /// still see weight decay and momentum-velocity decay, exactly as if a
    /// zero gradient matrix had been passed to [`Sgd::step`].
    ///
    /// # Panics
    ///
    /// Panics if `binding.len()` differs from the module's parameter count
    /// or any live gradient shape mismatches its parameter.
    pub fn step_graph_masked<M, F>(
        &mut self,
        module: &mut M,
        graph: &crate::Graph,
        binding: &crate::nn::Binding,
        frozen: F,
    ) where
        M: Module + ?Sized,
        F: Fn(usize) -> bool,
    {
        let span = calibre_telemetry::span("optimizer_step");
        span.add_items(binding.len() as u64);
        let mut params = module.parameters_mut();
        assert_eq!(
            params.len(),
            binding.len(),
            "binding count {} does not match parameter count {}",
            binding.len(),
            params.len()
        );
        let grad_of = |i: usize| -> Option<&Matrix> {
            if frozen(i) {
                None
            } else {
                graph.grad(binding.nodes()[i])
            }
        };

        let clip_scale = if self.config.grad_clip > 0.0 {
            let total: f32 = (0..params.len())
                .map(|i| match grad_of(i) {
                    Some(g) => {
                        let n = g.frobenius_norm();
                        n * n
                    }
                    None => 0.0,
                })
                .sum::<f32>()
                .sqrt();
            if total > self.config.grad_clip {
                self.config.grad_clip / total
            } else {
                1.0
            }
        } else {
            1.0
        };

        if self.config.momentum > 0.0 && self.velocity.len() != params.len() {
            self.velocity = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
        }

        let (lr, mom, wd) = (
            self.config.lr,
            self.config.momentum,
            self.config.weight_decay,
        );
        for (i, p) in params.iter_mut().enumerate() {
            let grad = grad_of(i);
            if let Some(g) = grad {
                assert_eq!(p.shape(), g.shape(), "gradient {i} shape mismatch");
            }
            if mom > 0.0 {
                let v = &mut self.velocity[i];
                match grad {
                    Some(g) => {
                        for ((pv, vv), &gv) in p.iter_mut().zip(v.iter_mut()).zip(g.iter()) {
                            let mut ev = gv * clip_scale;
                            if wd > 0.0 {
                                ev += *pv * wd;
                            }
                            *vv = mom * *vv + ev;
                            *pv += *vv * (-lr);
                        }
                    }
                    None => {
                        for (pv, vv) in p.iter_mut().zip(v.iter_mut()) {
                            let mut ev = 0.0;
                            if wd > 0.0 {
                                ev += *pv * wd;
                            }
                            *vv = mom * *vv + ev;
                            *pv += *vv * (-lr);
                        }
                    }
                }
            } else {
                match grad {
                    Some(g) => {
                        for (pv, &gv) in p.iter_mut().zip(g.iter()) {
                            let mut ev = gv * clip_scale;
                            if wd > 0.0 {
                                ev += *pv * wd;
                            }
                            *pv += ev * (-lr);
                        }
                    }
                    None => {
                        if wd > 0.0 {
                            for pv in p.iter_mut() {
                                let ev = *pv * wd;
                                *pv += ev * (-lr);
                            }
                        }
                    }
                }
            }
        }
    }

    /// Clears momentum buffers (e.g. when the model is replaced wholesale at
    /// the start of a federated round).
    pub fn reset(&mut self) {
        self.velocity.clear();
    }
}

/// Configuration for [`Adam`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay (β₁).
    pub beta1: f32,
    /// Second-moment decay (β₂).
    pub beta2: f32,
    /// Numerical-stability constant.
    pub epsilon: f32,
    /// Decoupled weight decay (AdamW-style).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            epsilon: 1e-8,
            weight_decay: 0.0,
        }
    }
}

impl AdamConfig {
    /// Adam with the given learning rate and standard moment decays.
    pub fn with_lr(lr: f32) -> Self {
        AdamConfig {
            lr,
            ..AdamConfig::default()
        }
    }
}

/// Adam optimizer (Kingma & Ba, 2015) with optional decoupled weight decay.
///
/// Provided as a library alternative to [`Sgd`]; the paper's experiments use
/// SGD throughout, so the reproduction harness never switches to Adam, but
/// downstream users tuning the SSL stage commonly prefer it.
///
/// # Examples
///
/// ```
/// use calibre_tensor::optim::{Adam, AdamConfig};
/// use calibre_tensor::nn::{Mlp, Activation, Module};
/// use calibre_tensor::{Matrix, rng};
///
/// let mut r = rng::seeded(0);
/// let mut mlp = Mlp::new(&[2, 2], Activation::Relu, &mut r);
/// let mut opt = Adam::new(AdamConfig::with_lr(0.01));
/// let grads: Vec<Matrix> = mlp.parameters().iter()
///     .map(|p| Matrix::full(p.rows(), p.cols(), 1.0)).collect();
/// let before = mlp.to_flat();
/// opt.step(&mut mlp, &grads);
/// assert_ne!(mlp.to_flat(), before);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    config: AdamConfig,
    first_moment: Vec<Matrix>,
    second_moment: Vec<Matrix>,
    steps: u32,
}

impl Adam {
    /// Creates an optimizer with the given configuration.
    pub fn new(config: AdamConfig) -> Self {
        Adam {
            config,
            first_moment: Vec::new(),
            second_moment: Vec::new(),
            steps: 0,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &AdamConfig {
        &self.config
    }

    /// Applies one update step to `module` given `grads` in parameter order.
    ///
    /// # Panics
    ///
    /// Panics if `grads.len()` differs from the module's parameter count or
    /// any gradient shape mismatches its parameter.
    pub fn step<M: Module + ?Sized>(&mut self, module: &mut M, grads: &[Matrix]) {
        let span = calibre_telemetry::span("optimizer_step");
        span.add_items(grads.len() as u64);
        let mut params = module.parameters_mut();
        assert_eq!(
            params.len(),
            grads.len(),
            "gradient count {} does not match parameter count {}",
            grads.len(),
            params.len()
        );
        if self.first_moment.len() != params.len() {
            self.first_moment = params
                .iter()
                .map(|p| Matrix::zeros(p.rows(), p.cols()))
                .collect();
            self.second_moment = self.first_moment.clone();
            self.steps = 0;
        }
        self.steps += 1;
        let bias1 = 1.0 - self.config.beta1.powi(self.steps as i32);
        let bias2 = 1.0 - self.config.beta2.powi(self.steps as i32);

        for (i, (p, g)) in params.iter_mut().zip(grads.iter()).enumerate() {
            assert_eq!(p.shape(), g.shape(), "gradient {i} shape mismatch");
            let m = &mut self.first_moment[i];
            let v = &mut self.second_moment[i];
            for ((pv, &gv), (mv, vv)) in p
                .iter_mut()
                .zip(g.iter())
                .zip(m.iter_mut().zip(v.iter_mut()))
            {
                *mv = self.config.beta1 * *mv + (1.0 - self.config.beta1) * gv;
                *vv = self.config.beta2 * *vv + (1.0 - self.config.beta2) * gv * gv;
                let m_hat = *mv / bias1;
                let v_hat = *vv / bias2;
                let mut update = m_hat / (v_hat.sqrt() + self.config.epsilon);
                if self.config.weight_decay > 0.0 {
                    update += self.config.weight_decay * *pv;
                }
                *pv -= self.config.lr * update;
            }
        }
    }

    /// Clears moment buffers.
    pub fn reset(&mut self) {
        self.first_moment.clear();
        self.second_moment.clear();
        self.steps = 0;
    }
}

/// A learning-rate schedule, mapping a step index to a multiplier-adjusted
/// learning rate from a base rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LrSchedule {
    /// Constant learning rate.
    Constant,
    /// Cosine annealing from the base rate to `min_lr` over `total_steps`
    /// (clamped at `min_lr` afterwards).
    Cosine {
        /// Steps over which the rate anneals.
        total_steps: usize,
        /// Final learning rate.
        min_lr: f32,
    },
    /// Multiply by `gamma` every `every` steps.
    Step {
        /// Steps between decays.
        every: usize,
        /// Decay factor per milestone.
        gamma: f32,
    },
    /// Linear warmup from 0 to the base rate over `steps`, constant after.
    Warmup {
        /// Warmup length in steps.
        steps: usize,
    },
}

impl LrSchedule {
    /// Learning rate at `step` (0-indexed) given the base rate.
    ///
    /// # Panics
    ///
    /// Panics if a schedule parameter is degenerate (`total_steps == 0`,
    /// `every == 0`, or `steps == 0`).
    pub fn lr_at(&self, step: usize, base_lr: f32) -> f32 {
        match *self {
            LrSchedule::Constant => base_lr,
            LrSchedule::Cosine {
                total_steps,
                min_lr,
            } => {
                assert!(total_steps > 0, "total_steps must be positive");
                if step >= total_steps {
                    return min_lr;
                }
                let progress = step as f32 / total_steps as f32;
                let cos = (std::f32::consts::PI * progress).cos();
                min_lr + 0.5 * (base_lr - min_lr) * (1.0 + cos)
            }
            LrSchedule::Step { every, gamma } => {
                assert!(every > 0, "every must be positive");
                base_lr * gamma.powi((step / every) as i32)
            }
            LrSchedule::Warmup { steps } => {
                assert!(steps > 0, "steps must be positive");
                if step >= steps {
                    base_lr
                } else {
                    base_lr * (step + 1) as f32 / steps as f32
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nn::{Activation, Mlp, Module};
    use crate::rng;

    fn unit_grads<M: Module>(m: &M) -> Vec<Matrix> {
        m.parameters()
            .iter()
            .map(|p| Matrix::full(p.rows(), p.cols(), 1.0))
            .collect()
    }

    #[test]
    fn plain_sgd_subtracts_lr_times_grad() {
        let mut r = rng::seeded(0);
        let mut m = Mlp::new(&[2, 3], Activation::Relu, &mut r);
        let before = m.to_flat();
        let mut opt = Sgd::new(SgdConfig::with_lr(0.5));
        let gr = unit_grads(&m);
        opt.step(&mut m, &gr);
        for (b, a) in before.iter().zip(m.to_flat().iter()) {
            assert!((b - 0.5 - a).abs() < 1e-6);
        }
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut r = rng::seeded(1);
        let mut m = Mlp::new(&[1, 1], Activation::Identity, &mut r);
        let mut opt = Sgd::new(SgdConfig::with_lr_momentum(1.0, 0.5));
        let start = m.to_flat();
        let gr = unit_grads(&m);
        opt.step(&mut m, &gr); // v=1, p -= 1
        let gr = unit_grads(&m);
        opt.step(&mut m, &gr); // v=1.5, p -= 1.5
        let end = m.to_flat();
        for (s, e) in start.iter().zip(end.iter()) {
            assert!((s - 2.5 - e).abs() < 1e-6, "expected total step 2.5");
        }
    }

    #[test]
    fn weight_decay_shrinks_parameters_without_gradient() {
        let mut r = rng::seeded(2);
        let mut m = Mlp::new(&[2, 2], Activation::Relu, &mut r);
        let zeros: Vec<Matrix> = m
            .parameters()
            .iter()
            .map(|p| Matrix::zeros(p.rows(), p.cols()))
            .collect();
        let before = m.to_flat();
        let mut opt = Sgd::new(SgdConfig {
            lr: 0.1,
            weight_decay: 0.5,
            ..SgdConfig::default()
        });
        opt.step(&mut m, &zeros);
        for (b, a) in before.iter().zip(m.to_flat().iter()) {
            assert!((a - b * (1.0 - 0.05)).abs() < 1e-6);
        }
    }

    #[test]
    fn grad_clip_bounds_update_norm() {
        let mut r = rng::seeded(3);
        let mut m = Mlp::new(&[4, 4], Activation::Relu, &mut r);
        let huge: Vec<Matrix> = m
            .parameters()
            .iter()
            .map(|p| Matrix::full(p.rows(), p.cols(), 1000.0))
            .collect();
        let before = m.to_flat();
        let mut opt = Sgd::new(SgdConfig {
            lr: 1.0,
            grad_clip: 1.0,
            ..SgdConfig::default()
        });
        opt.step(&mut m, &huge);
        let delta_norm: f32 = before
            .iter()
            .zip(m.to_flat().iter())
            .map(|(b, a)| (b - a) * (b - a))
            .sum::<f32>()
            .sqrt();
        assert!(
            delta_norm <= 1.0 + 1e-4,
            "clipped update norm {delta_norm} > 1"
        );
    }

    #[test]
    fn reset_clears_velocity() {
        let mut r = rng::seeded(4);
        let mut m = Mlp::new(&[1, 1], Activation::Identity, &mut r);
        let mut opt = Sgd::new(SgdConfig::with_lr_momentum(1.0, 0.9));
        let gr = unit_grads(&m);
        opt.step(&mut m, &gr);
        opt.reset();
        let before = m.to_flat();
        let gr = unit_grads(&m);
        opt.step(&mut m, &gr);
        // After reset, velocity starts at zero again: step is exactly lr·g.
        for (b, a) in before.iter().zip(m.to_flat().iter()) {
            assert!((b - 1.0 - a).abs() < 1e-6);
        }
    }

    #[test]
    #[should_panic(expected = "gradient count")]
    fn step_rejects_wrong_grad_count() {
        let mut r = rng::seeded(5);
        let mut m = Mlp::new(&[2, 2], Activation::Relu, &mut r);
        let mut opt = Sgd::new(SgdConfig::default());
        opt.step(&mut m, &[]);
    }

    #[test]
    fn cosine_schedule_anneals_monotonically() {
        let sched = LrSchedule::Cosine {
            total_steps: 100,
            min_lr: 0.001,
        };
        assert!((sched.lr_at(0, 0.1) - 0.1).abs() < 1e-4);
        let mut last = f32::INFINITY;
        for step in 0..120 {
            let lr = sched.lr_at(step, 0.1);
            assert!(lr <= last + 1e-7, "cosine must not increase");
            assert!(lr >= 0.001 - 1e-7);
            last = lr;
        }
        assert!(
            (sched.lr_at(150, 0.1) - 0.001).abs() < 1e-6,
            "clamps at min"
        );
    }

    #[test]
    fn step_schedule_decays_at_milestones() {
        let sched = LrSchedule::Step {
            every: 10,
            gamma: 0.5,
        };
        assert_eq!(sched.lr_at(0, 1.0), 1.0);
        assert_eq!(sched.lr_at(9, 1.0), 1.0);
        assert_eq!(sched.lr_at(10, 1.0), 0.5);
        assert_eq!(sched.lr_at(25, 1.0), 0.25);
    }

    #[test]
    fn warmup_ramps_then_holds() {
        let sched = LrSchedule::Warmup { steps: 4 };
        assert!((sched.lr_at(0, 0.8) - 0.2).abs() < 1e-6);
        assert!((sched.lr_at(3, 0.8) - 0.8).abs() < 1e-6);
        assert_eq!(sched.lr_at(100, 0.8), 0.8);
    }

    #[test]
    fn schedule_drives_sgd_via_set_lr() {
        let mut m = Mlp::new(&[1, 1], Activation::Identity, &mut rng::seeded(12));
        let mut opt = Sgd::new(SgdConfig::with_lr(1.0));
        let sched = LrSchedule::Step {
            every: 1,
            gamma: 0.5,
        };
        let gr = unit_grads(&m);
        let start = m.to_flat();
        for step in 0..3 {
            opt.set_lr(sched.lr_at(step, 1.0));
            opt.step(&mut m, &gr);
        }
        // Total movement = 1.0 + 0.5 + 0.25.
        for (s, e) in start.iter().zip(m.to_flat().iter()) {
            assert!((s - 1.75 - e).abs() < 1e-6);
        }
    }

    #[test]
    fn step_graph_matches_materialized_step_bitwise() {
        // The in-place graph path must be indistinguishable from
        // materializing gradients and calling step — including momentum,
        // weight decay and clipping interactions, down to the bit.
        let mut r = rng::seeded(13);
        let mlp = Mlp::new(&[3, 4, 2], Activation::Relu, &mut r);
        let x = rng::normal_matrix(&mut r, 6, 3, 1.0);
        let cfg = SgdConfig {
            lr: 0.05,
            momentum: 0.9,
            weight_decay: 0.01,
            grad_clip: 1.0,
        };

        let run = |use_graph: bool| -> Vec<u32> {
            let mut m = mlp.clone();
            let mut opt = Sgd::new(cfg);
            for _ in 0..3 {
                let mut g = crate::Graph::new();
                let xn = g.constant(x.clone());
                let mut binding = crate::nn::Binding::new();
                let y = m.forward(&mut g, xn, &mut binding);
                let sq = g.mul(y, y);
                let loss = g.mean_all(sq);
                g.backward(loss);
                if use_graph {
                    opt.step_graph(&mut m, &g, &binding);
                } else {
                    let grads = crate::nn::gradients(&g, &binding);
                    opt.step(&mut m, &grads);
                }
            }
            m.to_flat().iter().map(|v| v.to_bits()).collect()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn step_graph_masked_matches_zero_grad_step() {
        // Masking a parameter must behave exactly like passing an explicit
        // zero gradient: weight decay applies and momentum velocity decays.
        let mut r = rng::seeded(14);
        let mlp = Mlp::new(&[2, 3, 2], Activation::Tanh, &mut r);
        let x = rng::normal_matrix(&mut r, 4, 2, 1.0);
        let cfg = SgdConfig {
            lr: 0.1,
            momentum: 0.5,
            weight_decay: 0.02,
            grad_clip: 0.0,
        };
        // Freeze the first layer (parameters 0 and 1).
        let frozen = |i: usize| i < 2;

        let build = |m: &Mlp| -> (crate::Graph, crate::nn::Binding) {
            let mut g = crate::Graph::new();
            let xn = g.constant(x.clone());
            let mut binding = crate::nn::Binding::new();
            let y = m.forward(&mut g, xn, &mut binding);
            let sq = g.mul(y, y);
            let loss = g.mean_all(sq);
            g.backward(loss);
            (g, binding)
        };

        let mut m_ref = mlp.clone();
        let mut opt_ref = Sgd::new(cfg);
        for _ in 0..2 {
            let (g, binding) = build(&m_ref);
            let mut grads = crate::nn::gradients(&g, &binding);
            for (i, gr) in grads.iter_mut().enumerate() {
                if frozen(i) {
                    *gr = Matrix::zeros(gr.rows(), gr.cols());
                }
            }
            opt_ref.step(&mut m_ref, &grads);
        }

        let mut m_graph = mlp;
        let mut opt_graph = Sgd::new(cfg);
        for _ in 0..2 {
            let (g, binding) = build(&m_graph);
            opt_graph.step_graph_masked(&mut m_graph, &g, &binding, frozen);
        }

        let a: Vec<u32> = m_ref.to_flat().iter().map(|v| v.to_bits()).collect();
        let b: Vec<u32> = m_graph.to_flat().iter().map(|v| v.to_bits()).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn adam_first_step_magnitude_is_learning_rate() {
        // With bias correction, the very first Adam step is ≈ lr·sign(g).
        let mut r = rng::seeded(6);
        let mut m = Mlp::new(&[2, 2], Activation::Identity, &mut r);
        let before = m.to_flat();
        let mut opt = Adam::new(AdamConfig::with_lr(0.01));
        let gr = unit_grads(&m);
        opt.step(&mut m, &gr);
        for (b, a) in before.iter().zip(m.to_flat().iter()) {
            assert!(((b - a) - 0.01).abs() < 1e-4, "step {}", b - a);
        }
    }

    #[test]
    fn adam_is_scale_invariant_to_gradient_magnitude() {
        // Adam normalizes by the second moment: constant gradients of any
        // size produce (almost) the same step.
        let mut r = rng::seeded(7);
        let run = |scale: f32| -> Vec<f32> {
            let mut m = Mlp::new(&[2, 2], Activation::Identity, &mut rng::seeded(8));
            let mut opt = Adam::new(AdamConfig::with_lr(0.01));
            let grads: Vec<Matrix> = m
                .parameters()
                .iter()
                .map(|p| Matrix::full(p.rows(), p.cols(), scale))
                .collect();
            for _ in 0..3 {
                opt.step(&mut m, &grads);
            }
            m.to_flat()
        };
        let _ = &mut r;
        let small = run(0.001);
        let large = run(100.0);
        for (s, l) in small.iter().zip(large.iter()) {
            assert!((s - l).abs() < 1e-3, "{s} vs {l}");
        }
    }

    #[test]
    fn adam_converges_on_quadratic() {
        // Minimize mean((x·w)²) — Adam should drive w toward 0.
        let mut r = rng::seeded(9);
        let mut m = Mlp::new(&[3, 1], Activation::Identity, &mut r);
        let x = rng::normal_matrix(&mut r, 16, 3, 1.0);
        let mut opt = Adam::new(AdamConfig::with_lr(0.05));
        let norm_of = |m: &Mlp| m.to_flat().iter().map(|v| v * v).sum::<f32>();
        let before = norm_of(&m);
        for _ in 0..200 {
            let mut g = crate::Graph::new();
            let xn = g.constant(x.clone());
            let mut binding = crate::nn::Binding::new();
            let y = m.forward(&mut g, xn, &mut binding);
            let sq = g.mul(y, y);
            let loss = g.mean_all(sq);
            g.backward(loss);
            let grads = crate::nn::gradients(&g, &binding);
            opt.step(&mut m, &grads);
        }
        let after = norm_of(&m);
        assert!(after < before * 0.05, "{before} -> {after}");
    }

    #[test]
    fn adam_weight_decay_shrinks_parameters() {
        let mut m = Mlp::new(&[2, 2], Activation::Identity, &mut rng::seeded(10));
        let zeros: Vec<Matrix> = m
            .parameters()
            .iter()
            .map(|p| Matrix::zeros(p.rows(), p.cols()))
            .collect();
        let before: f32 = m.to_flat().iter().map(|v| v.abs()).sum();
        let mut opt = Adam::new(AdamConfig {
            lr: 0.1,
            weight_decay: 0.5,
            ..AdamConfig::default()
        });
        for _ in 0..5 {
            opt.step(&mut m, &zeros);
        }
        let after: f32 = m.to_flat().iter().map(|v| v.abs()).sum();
        assert!(after < before, "decay should shrink: {before} -> {after}");
    }

    #[test]
    fn adam_reset_restarts_bias_correction() {
        let mut m = Mlp::new(&[1, 1], Activation::Identity, &mut rng::seeded(11));
        let mut opt = Adam::new(AdamConfig::with_lr(0.01));
        let gr = unit_grads(&m);
        opt.step(&mut m, &gr);
        opt.reset();
        let before = m.to_flat();
        opt.step(&mut m, &gr);
        // After reset the first-step property holds again.
        for (b, a) in before.iter().zip(m.to_flat().iter()) {
            assert!(((b - a) - 0.01).abs() < 1e-4);
        }
    }
}
