//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Graph`] is a reusable tape: each training step builds the step's ops
//! on it, runs [`Graph::backward`] on a scalar loss node, reads the
//! parameter gradients out, and either drops the graph or — on the hot path
//! — recycles it through a [`crate::pool::StepArena`], which calls
//! [`Graph::reset`] to reclaim every buffer into the graph's
//! [`crate::pool::Workspace`] pool for the next step. Parameters themselves
//! live *outside* the graph (see [`crate::nn`]) and are inserted as leaf
//! nodes each step — this keeps the tape trivially `Send` for the parallel
//! federated runtime and sidesteps interior-mutability entirely.
//!
//! All dense kernels dispatch through the workspace's
//! [`crate::backend::Backend`]; the default `Scalar` backend reproduces the
//! original `Matrix` loops bit-for-bit, while `Blocked` trades bitwise
//! reproducibility for speed.
//!
//! The operation set is exactly what the Calibre reproduction needs: dense
//! linear algebra, the nonlinearities of the encoder MLPs, the normalizations
//! and fused cross-entropies used by contrastive losses, and the
//! gather/concat/group-mean plumbing used by the prototype regularizers.

use crate::conv::ImageShape;
use crate::pool::{PoolStats, Workspace};
use crate::Matrix;

/// Handle to a node in a [`Graph`] tape.
///
/// `Node` is a cheap copyable index; it is only meaningful together with the
/// graph that produced it (and only until that graph is [`Graph::reset`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Node(pub(crate) usize);

/// The operation that produced a node, together with its input handles.
///
/// Some payloads (the scalar of `AddScalar`/`MaskDiagonal`, the source of
/// `Detach`) are only needed in the forward pass but are kept on the tape
/// so `Debug` output and future graph inspection show the full operation.
#[derive(Debug, Clone)]
#[allow(dead_code)]
enum Op {
    /// Leaf node: a constant or a parameter inserted from outside the graph.
    Leaf,
    MatMul(Node, Node),
    Add(Node, Node),
    Sub(Node, Node),
    Mul(Node, Node),
    Div(Node, Node),
    /// Broadcast-add a `(1, D)` row vector to every row of an `(N, D)` input.
    AddRow(Node, Node),
    /// Broadcast-add an `(N, 1)` column vector to every column.
    AddCol(Node, Node),
    Scale(Node, f32),
    AddScalar(Node, f32),
    Relu(Node),
    Tanh(Node),
    Exp(Node),
    Log(Node),
    Transpose(Node),
    RowL2Normalize(Node),
    /// Per-row layer normalization: `(x − mean) / sqrt(var + ε)`.
    LayerNorm(Node),
    /// Per-row sum of squares, producing an `(N, 1)` column.
    RowSumSq(Node),
    GatherRows(Node, Vec<usize>),
    ConcatRows(Node, Node),
    ConcatCols(Node, Node),
    /// Mean of rows grouped by an assignment vector, producing `(K, D)`.
    GroupMeanRows(Node, Vec<usize>, usize),
    /// Row-wise dot product of two `(N, D)` inputs, producing `(N, 1)`.
    RowwiseDot(Node, Node),
    SumAll(Node),
    MeanAll(Node),
    /// Mean cross-entropy between row-softmax of logits and integer targets.
    CrossEntropy(Node, Vec<usize>),
    /// Mean cross-entropy between row-softmax of logits and fixed soft targets.
    CrossEntropySoft(Node, Matrix),
    /// Overwrites the main diagonal with a constant; gradient is zeroed there.
    MaskDiagonal(Node, f32),
    /// Identity forward, but blocks gradient flow (stop-gradient).
    Detach(Node),
    /// Patch extraction for convolution (see [`Graph::im2col`]).
    Im2Col(Node, ImageShape, usize, usize),
    /// Row-major reinterpretation of the data with a new shape.
    Reshape(Node),
}

struct NodeData {
    value: Matrix,
    op: Op,
    requires_grad: bool,
    /// Cached softmax for the fused cross-entropy ops.
    aux: Option<Matrix>,
}

/// A reusable reverse-mode autodiff tape.
///
/// # Examples
///
/// Differentiate `mean((x·w)²)` with respect to `w`:
///
/// ```
/// use calibre_tensor::{Graph, Matrix};
///
/// let mut g = Graph::new();
/// let x = g.constant(Matrix::from_rows(&[vec![1.0, 2.0]]));
/// let w = g.leaf(Matrix::from_rows(&[vec![3.0], vec![4.0]]));
/// let y = g.matmul(x, w);
/// let y_sq = g.mul(y, y);
/// let loss = g.mean_all(y_sq);
/// g.backward(loss);
/// let grad = g.grad(w).expect("leaf requires grad");
/// // d/dw mean((x·w)²) = 2 (x·w) xᵀ = 2·11·[1,2]ᵀ
/// assert_eq!(grad.col(0), vec![22.0, 44.0]);
/// ```
pub struct Graph {
    nodes: Vec<NodeData>,
    grads: Vec<Option<Matrix>>,
    ws: Workspace,
}

impl Default for Graph {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Graph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Graph({} nodes)", self.nodes.len())
    }
}

impl Graph {
    /// Creates an empty tape on a fresh [`Workspace`] (process-global
    /// backend, empty pool).
    pub fn new() -> Self {
        Graph::with_workspace(Workspace::new())
    }

    /// Creates an empty tape on an explicit workspace (backend + pool).
    pub fn with_workspace(ws: Workspace) -> Self {
        Graph {
            nodes: Vec::new(),
            grads: Vec::new(),
            ws,
        }
    }

    /// Clears the tape for reuse, reclaiming every node value, cached
    /// softmax and gradient into the workspace pool. Node handles from
    /// before the reset are invalidated.
    pub fn reset(&mut self) {
        let Graph { nodes, grads, ws } = self;
        for n in nodes.drain(..) {
            ws.reclaim(n.value);
            if let Some(aux) = n.aux {
                ws.reclaim(aux);
            }
        }
        for m in grads.drain(..).flatten() {
            ws.reclaim(m);
        }
    }

    /// Buffer-pool counters of this graph's workspace.
    pub fn pool_stats(&self) -> PoolStats {
        self.ws.pool_stats()
    }

    /// Name of the backend this graph's kernels dispatch through.
    pub fn backend_name(&self) -> &'static str {
        self.ws.backend().name()
    }

    /// Number of nodes recorded on the tape so far.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn push(&mut self, value: Matrix, op: Op, requires_grad: bool, aux: Option<Matrix>) -> Node {
        self.nodes.push(NodeData {
            value,
            op,
            requires_grad,
            aux,
        });
        self.grads.push(None);
        Node(self.nodes.len() - 1)
    }

    fn rg(&self, n: Node) -> bool {
        self.nodes[n.0].requires_grad
    }

    /// Inserts a constant leaf (no gradient is tracked through it).
    pub fn constant(&mut self, value: Matrix) -> Node {
        self.push(value, Op::Leaf, false, None)
    }

    /// Inserts a differentiable leaf; its gradient is available after
    /// [`Graph::backward`] via [`Graph::grad`].
    pub fn leaf(&mut self, value: Matrix) -> Node {
        self.push(value, Op::Leaf, true, None)
    }

    /// Like [`Graph::constant`], but copies `value` into pooled storage
    /// instead of taking ownership — the allocation-free way to insert a
    /// batch view on a recycled graph.
    pub fn constant_from(&mut self, value: &Matrix) -> Node {
        let v = self.ws.alloc_copy(value);
        self.push(v, Op::Leaf, false, None)
    }

    /// Like [`Graph::leaf`], but copies `value` into pooled storage — used
    /// by the layer bind path so re-binding parameters every step stops
    /// allocating.
    pub fn leaf_from(&mut self, value: &Matrix) -> Node {
        let v = self.ws.alloc_copy(value);
        self.push(v, Op::Leaf, true, None)
    }

    /// Value of a node.
    pub fn value(&self, n: Node) -> &Matrix {
        &self.nodes[n.0].value
    }

    /// Gradient of the loss with respect to node `n`, if it was computed by
    /// the last [`Graph::backward`] call.
    pub fn grad(&self, n: Node) -> Option<&Matrix> {
        self.grads[n.0].as_ref()
    }

    /// Matrix product.
    ///
    /// # Panics
    ///
    /// Panics if the inner dimensions disagree.
    pub fn matmul(&mut self, a: Node, b: Node) -> Node {
        let span = calibre_telemetry::span("matmul");
        let Graph { nodes, ws, .. } = self;
        let (av, bv) = (&nodes[a.0].value, &nodes[b.0].value);
        assert_eq!(
            av.cols(),
            bv.rows(),
            "matmul shape mismatch: {}x{} * {}x{}",
            av.rows(),
            av.cols(),
            bv.rows(),
            bv.cols()
        );
        let mut v = ws.alloc_zeros(av.rows(), bv.cols());
        ws.backend().matmul(av, bv, &mut v);
        span.add_items(v.rows() as u64);
        span.add_bytes((v.rows() * v.cols() * std::mem::size_of::<f32>()) as u64);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::MatMul(a, b), rg, None)
    }

    fn zip_values<F: Fn(f32, f32) -> f32>(&mut self, a: Node, b: Node, f: F) -> Matrix {
        let Graph { nodes, ws, .. } = self;
        let (av, bv) = (&nodes[a.0].value, &nodes[b.0].value);
        pooled_zip(ws, av, bv, f)
    }

    fn map_value<F: Fn(f32) -> f32>(&mut self, a: Node, f: F) -> Matrix {
        let Graph { nodes, ws, .. } = self;
        pooled_map(ws, &nodes[a.0].value, f)
    }

    fn copy_value(&mut self, a: Node) -> Matrix {
        let Graph { nodes, ws, .. } = self;
        ws.alloc_copy(&nodes[a.0].value)
    }

    /// Elementwise sum of two equally-shaped nodes.
    pub fn add(&mut self, a: Node, b: Node) -> Node {
        let v = self.zip_values(a, b, |x, y| x + y);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Add(a, b), rg, None)
    }

    /// Elementwise difference of two equally-shaped nodes.
    pub fn sub(&mut self, a: Node, b: Node) -> Node {
        let v = self.zip_values(a, b, |x, y| x - y);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Sub(a, b), rg, None)
    }

    /// Elementwise product of two equally-shaped nodes.
    pub fn mul(&mut self, a: Node, b: Node) -> Node {
        let v = self.zip_values(a, b, |x, y| x * y);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Mul(a, b), rg, None)
    }

    /// Elementwise quotient of two equally-shaped nodes.
    pub fn div(&mut self, a: Node, b: Node) -> Node {
        let v = self.zip_values(a, b, |x, y| x / y);
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::Div(a, b), rg, None)
    }

    /// Adds a `(1, D)` row-vector node to every row of an `(N, D)` node.
    pub fn add_row(&mut self, a: Node, row: Node) -> Node {
        let mut v = {
            let Graph { nodes, ws, .. } = self;
            let (av, rv) = (&nodes[a.0].value, &nodes[row.0].value);
            assert_eq!(rv.rows(), 1, "expected a row vector, got {:?}", rv.shape());
            assert_eq!(rv.cols(), av.cols(), "row vector length mismatch");
            ws.alloc_copy(av)
        };
        {
            let rv = &self.nodes[row.0].value;
            for r in 0..v.rows() {
                for (o, &b) in v.row_mut(r).iter_mut().zip(rv.iter()) {
                    *o += b;
                }
            }
        }
        let rg = self.rg(a) || self.rg(row);
        self.push(v, Op::AddRow(a, row), rg, None)
    }

    /// Adds an `(N, 1)` column-vector node to every column of an `(N, D)` node.
    pub fn add_col(&mut self, a: Node, col: Node) -> Node {
        let mut v = {
            let Graph { nodes, ws, .. } = self;
            let (av, cv) = (&nodes[a.0].value, &nodes[col.0].value);
            assert_eq!(
                cv.cols(),
                1,
                "expected a column vector, got {:?}",
                cv.shape()
            );
            assert_eq!(cv.rows(), av.rows(), "column vector length mismatch");
            ws.alloc_copy(av)
        };
        {
            let cv = &self.nodes[col.0].value;
            for r in 0..v.rows() {
                let add = cv.get(r, 0);
                for o in v.row_mut(r) {
                    *o += add;
                }
            }
        }
        let rg = self.rg(a) || self.rg(col);
        self.push(v, Op::AddCol(a, col), rg, None)
    }

    /// Multiplies every element by a scalar.
    pub fn scale(&mut self, a: Node, s: f32) -> Node {
        let v = self.map_value(a, |x| x * s);
        let rg = self.rg(a);
        self.push(v, Op::Scale(a, s), rg, None)
    }

    /// Adds a scalar to every element.
    pub fn add_scalar(&mut self, a: Node, s: f32) -> Node {
        let v = self.map_value(a, |x| x + s);
        let rg = self.rg(a);
        self.push(v, Op::AddScalar(a, s), rg, None)
    }

    /// Rectified linear unit, elementwise.
    pub fn relu(&mut self, a: Node) -> Node {
        let v = self.map_value(a, |x| x.max(0.0));
        let rg = self.rg(a);
        self.push(v, Op::Relu(a), rg, None)
    }

    /// Hyperbolic tangent, elementwise.
    pub fn tanh(&mut self, a: Node) -> Node {
        let v = self.map_value(a, f32::tanh);
        let rg = self.rg(a);
        self.push(v, Op::Tanh(a), rg, None)
    }

    /// Exponential, elementwise.
    pub fn exp(&mut self, a: Node) -> Node {
        let v = self.map_value(a, f32::exp);
        let rg = self.rg(a);
        self.push(v, Op::Exp(a), rg, None)
    }

    /// Natural logarithm, elementwise. Inputs are clamped to `1e-12` from
    /// below so the forward value is always finite.
    pub fn log(&mut self, a: Node) -> Node {
        let v = self.map_value(a, |x| x.max(1e-12).ln());
        let rg = self.rg(a);
        self.push(v, Op::Log(a), rg, None)
    }

    /// Transposed copy.
    pub fn transpose(&mut self, a: Node) -> Node {
        let v = {
            let Graph { nodes, ws, .. } = self;
            pooled_transpose(ws, &nodes[a.0].value)
        };
        let rg = self.rg(a);
        self.push(v, Op::Transpose(a), rg, None)
    }

    /// Scales every row to unit Euclidean norm (rows with near-zero norm pass
    /// through unchanged).
    pub fn row_l2_normalize(&mut self, a: Node) -> Node {
        let mut v = self.copy_value(a);
        for r in 0..v.rows() {
            let norm: f32 = v.row(r).iter().map(|x| x * x).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for x in v.row_mut(r) {
                    *x /= norm;
                }
            }
        }
        let rg = self.rg(a);
        self.push(v, Op::RowL2Normalize(a), rg, None)
    }

    /// Per-row layer normalization `(x − μ) / √(σ² + 1e-5)` (no affine
    /// parameters). The standard stabilizer for projector/predictor MLPs.
    pub fn layer_norm(&mut self, a: Node) -> Node {
        let mut v = self.copy_value(a);
        for r in 0..v.rows() {
            let row = v.row_mut(r);
            let n = row.len() as f32;
            let mean: f32 = row.iter().sum::<f32>() / n;
            let var: f32 = row.iter().map(|x| (x - mean) * (x - mean)).sum::<f32>() / n;
            let inv_std = 1.0 / (var + 1e-5).sqrt();
            for x in row.iter_mut() {
                *x = (*x - mean) * inv_std;
            }
        }
        let rg = self.rg(a);
        self.push(v, Op::LayerNorm(a), rg, None)
    }

    /// Per-row sum of squares, producing an `(N, 1)` column node.
    pub fn row_sum_sq(&mut self, a: Node) -> Node {
        let v = {
            let Graph { nodes, ws, .. } = self;
            let av = &nodes[a.0].value;
            let mut out = ws.alloc_uninit(av.rows(), 1);
            ws.backend().row_sum_sq(av, &mut out);
            out
        };
        let rg = self.rg(a);
        self.push(v, Op::RowSumSq(a), rg, None)
    }

    /// Copies the given rows into a new node; gradient scatters back.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&mut self, a: Node, indices: &[usize]) -> Node {
        let v = {
            let Graph { nodes, ws, .. } = self;
            let av = &nodes[a.0].value;
            let mut out = ws.alloc_uninit(indices.len(), av.cols());
            for (i, &idx) in indices.iter().enumerate() {
                assert!(
                    idx < av.rows(),
                    "row index {idx} out of bounds for {} rows",
                    av.rows()
                );
                out.row_mut(i).copy_from_slice(av.row(idx));
            }
            out
        };
        let rg = self.rg(a);
        self.push(v, Op::GatherRows(a, indices.to_vec()), rg, None)
    }

    /// Vertically stacks two nodes with equal column counts.
    pub fn concat_rows(&mut self, a: Node, b: Node) -> Node {
        let v = {
            let Graph { nodes, ws, .. } = self;
            let (av, bv) = (&nodes[a.0].value, &nodes[b.0].value);
            assert_eq!(av.cols(), bv.cols(), "concat_rows column mismatch");
            let mut out = ws.alloc_uninit(av.rows() + bv.rows(), av.cols());
            out.as_mut_slice()[..av.len()].copy_from_slice(av.as_slice());
            out.as_mut_slice()[av.len()..].copy_from_slice(bv.as_slice());
            out
        };
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::ConcatRows(a, b), rg, None)
    }

    /// Horizontally stacks two nodes with equal row counts.
    pub fn concat_cols(&mut self, a: Node, b: Node) -> Node {
        let v = {
            let Graph { nodes, ws, .. } = self;
            let (av, bv) = (&nodes[a.0].value, &nodes[b.0].value);
            assert_eq!(av.rows(), bv.rows(), "concat_cols row mismatch");
            let ca = av.cols();
            let mut out = ws.alloc_uninit(av.rows(), ca + bv.cols());
            for r in 0..av.rows() {
                out.row_mut(r)[..ca].copy_from_slice(av.row(r));
                out.row_mut(r)[ca..].copy_from_slice(bv.row(r));
            }
            out
        };
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::ConcatCols(a, b), rg, None)
    }

    /// Mean of the rows of `a` grouped by `assignments`, producing a `(k, D)`
    /// node of group centroids. Groups with no members yield a zero row.
    ///
    /// This is the differentiable prototype computation at the heart of the
    /// Calibre `L_p` regularizer: gradients on a centroid flow back equally
    /// to every member of its group.
    ///
    /// # Panics
    ///
    /// Panics if `assignments.len()` differs from the row count of `a`, or if
    /// any assignment is `>= k`.
    pub fn group_mean_rows(&mut self, a: Node, assignments: &[usize], k: usize) -> Node {
        let out = {
            let Graph { nodes, ws, .. } = self;
            let input = &nodes[a.0].value;
            assert_eq!(
                assignments.len(),
                input.rows(),
                "assignment length must match row count"
            );
            let mut counts = vec![0usize; k];
            let mut out = ws.alloc_zeros(k, input.cols());
            for (r, &g) in assignments.iter().enumerate() {
                assert!(g < k, "assignment {g} out of range for {k} groups");
                counts[g] += 1;
                for (o, &v) in out.row_mut(g).iter_mut().zip(input.row(r)) {
                    *o += v;
                }
            }
            for (g, &c) in counts.iter().enumerate() {
                if c > 0 {
                    let inv = 1.0 / c as f32;
                    for o in out.row_mut(g) {
                        *o *= inv;
                    }
                }
            }
            out
        };
        let rg = self.rg(a);
        self.push(out, Op::GroupMeanRows(a, assignments.to_vec(), k), rg, None)
    }

    /// Row-wise dot product of two `(N, D)` nodes, producing `(N, 1)`.
    pub fn rowwise_dot(&mut self, a: Node, b: Node) -> Node {
        let v = {
            let Graph { nodes, ws, .. } = self;
            let (av, bv) = (&nodes[a.0].value, &nodes[b.0].value);
            assert_eq!(av.shape(), bv.shape(), "rowwise_dot shape mismatch");
            let mut out = ws.alloc_uninit(av.rows(), 1);
            for r in 0..av.rows() {
                let dot: f32 = av.row(r).iter().zip(bv.row(r)).map(|(&x, &y)| x * y).sum();
                out.set(r, 0, dot);
            }
            out
        };
        let rg = self.rg(a) || self.rg(b);
        self.push(v, Op::RowwiseDot(a, b), rg, None)
    }

    /// Sum of all elements, producing a `(1, 1)` scalar node.
    pub fn sum_all(&mut self, a: Node) -> Node {
        let v = {
            let Graph { nodes, ws, .. } = self;
            let s = ws.backend().sum(&nodes[a.0].value);
            ws.alloc_full(1, 1, s)
        };
        let rg = self.rg(a);
        self.push(v, Op::SumAll(a), rg, None)
    }

    /// Mean of all elements, producing a `(1, 1)` scalar node.
    pub fn mean_all(&mut self, a: Node) -> Node {
        let v = {
            let Graph { nodes, ws, .. } = self;
            let av = &nodes[a.0].value;
            let mean = if av.is_empty() {
                0.0
            } else {
                ws.backend().sum(av) / av.len() as f32
            };
            ws.alloc_full(1, 1, mean)
        };
        let rg = self.rg(a);
        self.push(v, Op::MeanAll(a), rg, None)
    }

    /// Fused mean cross-entropy between the row-softmax of `logits` and hard
    /// integer `targets`, producing a `(1, 1)` scalar node.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the number of logit rows or any
    /// target is out of range.
    pub fn cross_entropy(&mut self, logits: Node, targets: &[usize]) -> Node {
        let (value, soft) = {
            let Graph { nodes, ws, .. } = self;
            let lv = &nodes[logits.0].value;
            assert_eq!(
                targets.len(),
                lv.rows(),
                "one target per logit row required"
            );
            let soft = pooled_row_softmax(ws, lv);
            let mut loss = 0.0;
            for (r, &t) in targets.iter().enumerate() {
                assert!(
                    t < lv.cols(),
                    "target {t} out of range for {} classes",
                    lv.cols()
                );
                loss -= row_log_softmax_at(lv.row(r), t);
            }
            loss /= targets.len().max(1) as f32;
            (ws.alloc_full(1, 1, loss), soft)
        };
        let rg = self.rg(logits);
        self.push(
            value,
            Op::CrossEntropy(logits, targets.to_vec()),
            rg,
            Some(soft),
        )
    }

    /// Fused mean cross-entropy between the row-softmax of `logits` and a
    /// fixed matrix of soft `targets` (each row a probability distribution),
    /// producing a `(1, 1)` scalar node. Used by SwAV-style objectives.
    ///
    /// # Panics
    ///
    /// Panics if shapes disagree.
    pub fn cross_entropy_soft(&mut self, logits: Node, targets: Matrix) -> Node {
        let (value, soft) = {
            let Graph { nodes, ws, .. } = self;
            let lv = &nodes[logits.0].value;
            assert_eq!(
                lv.shape(),
                targets.shape(),
                "soft targets must match logits shape"
            );
            let soft = pooled_row_softmax(ws, lv);
            let mut loss = 0.0;
            for r in 0..lv.rows() {
                let row = lv.row(r);
                let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
                let log_sum: f32 = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln();
                for (c, &v) in row.iter().enumerate() {
                    loss -= targets.get(r, c) * (v - max - log_sum);
                }
            }
            loss /= lv.rows().max(1) as f32;
            (ws.alloc_full(1, 1, loss), soft)
        };
        let rg = self.rg(logits);
        self.push(value, Op::CrossEntropySoft(logits, targets), rg, Some(soft))
    }

    /// Overwrites the main diagonal of a square node with `value`; the
    /// gradient at the diagonal is dropped. Contrastive losses use this to
    /// exclude self-similarity from the denominator.
    ///
    /// # Panics
    ///
    /// Panics if the node is not square.
    pub fn mask_diagonal(&mut self, a: Node, value: f32) -> Node {
        let mut v = {
            let Graph { nodes, ws, .. } = self;
            let av = &nodes[a.0].value;
            assert_eq!(
                av.rows(),
                av.cols(),
                "mask_diagonal requires a square matrix"
            );
            ws.alloc_copy(av)
        };
        for i in 0..v.rows() {
            v.set(i, i, value);
        }
        let rg = self.rg(a);
        self.push(v, Op::MaskDiagonal(a, value), rg, None)
    }

    /// Extracts convolution patches from a batch of channel-last images
    /// (see [`crate::conv`] for the layout). Input `(N, H·W·C)`, output
    /// `(N·OH·OW, k·k·C)`; the backward pass scatter-adds patch gradients
    /// back to their source pixels (col2im).
    ///
    /// # Panics
    ///
    /// Panics if the input width does not match `shape`, the kernel does
    /// not fit, or the stride is zero.
    pub fn im2col(&mut self, a: Node, shape: ImageShape, kernel: usize, stride: usize) -> Node {
        let v = crate::conv::im2col_matrix(&self.nodes[a.0].value, shape, kernel, stride);
        let rg = self.rg(a);
        self.push(v, Op::Im2Col(a, shape, kernel, stride), rg, None)
    }

    /// Reinterprets a node's row-major data with a new `(rows, cols)` shape.
    ///
    /// # Panics
    ///
    /// Panics if the element count changes.
    pub fn reshape(&mut self, a: Node, rows: usize, cols: usize) -> Node {
        let v = {
            let Graph { nodes, ws, .. } = self;
            let value = &nodes[a.0].value;
            assert_eq!(
                value.len(),
                rows * cols,
                "reshape cannot change element count: {} -> {rows}x{cols}",
                value.len()
            );
            let mut out = ws.alloc_uninit(rows, cols);
            out.as_mut_slice().copy_from_slice(value.as_slice());
            out
        };
        let rg = self.rg(a);
        self.push(v, Op::Reshape(a), rg, None)
    }

    /// Stop-gradient: forwards the value unchanged, blocks all gradient flow.
    pub fn detach(&mut self, a: Node) -> Node {
        let v = self.copy_value(a);
        self.push(v, Op::Detach(a), false, None)
    }

    /// Runs reverse-mode differentiation from the scalar node `out`.
    ///
    /// Gradients for all nodes on the path to differentiable leaves are
    /// accumulated and readable via [`Graph::grad`]. Calling `backward` again
    /// resets previous gradients.
    ///
    /// # Panics
    ///
    /// Panics if `out` is not a `(1, 1)` scalar node.
    pub fn backward(&mut self, out: Node) {
        let span = calibre_telemetry::span("backward");
        span.add_items(self.nodes.len() as u64);
        assert_eq!(
            self.nodes[out.0].value.shape(),
            (1, 1),
            "backward requires a scalar (1x1) output node"
        );
        let Graph { nodes, grads, ws } = self;
        for g in grads.iter_mut() {
            if let Some(m) = g.take() {
                ws.reclaim(m);
            }
        }
        grads[out.0] = Some(ws.alloc_full(1, 1, 1.0));

        for id in (0..=out.0).rev() {
            if grads[id].is_none() || !nodes[id].requires_grad {
                continue;
            }
            // analyze:allow(no-expect) -- is_none() was checked two lines
            // above; `take` cannot observe None here.
            let grad = grads[id].take().expect("checked above");
            apply_backward(nodes, grads, ws, id, &grad);
            grads[id] = Some(grad);
        }
    }
}

/// Pooled elementwise combination of two equally-shaped matrices.
fn pooled_zip<F: Fn(f32, f32) -> f32>(ws: &mut Workspace, a: &Matrix, b: &Matrix, f: F) -> Matrix {
    assert_eq!(
        a.shape(),
        b.shape(),
        "elementwise op shape mismatch: {:?} vs {:?}",
        a.shape(),
        b.shape()
    );
    let mut out = ws.alloc_uninit(a.rows(), a.cols());
    for ((o, &x), &y) in out.iter_mut().zip(a.iter()).zip(b.iter()) {
        *o = f(x, y);
    }
    out
}

/// Pooled elementwise map.
fn pooled_map<F: Fn(f32) -> f32>(ws: &mut Workspace, a: &Matrix, f: F) -> Matrix {
    let mut out = ws.alloc_uninit(a.rows(), a.cols());
    for (o, &x) in out.iter_mut().zip(a.iter()) {
        *o = f(x);
    }
    out
}

/// Pooled transposed copy.
fn pooled_transpose(ws: &mut Workspace, a: &Matrix) -> Matrix {
    let mut out = ws.alloc_uninit(a.cols(), a.rows());
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            out.set(c, r, a.get(r, c));
        }
    }
    out
}

/// Pooled row-softmax with the standard max-subtraction stabilization —
/// value-identical to `Matrix::row_softmax`.
fn pooled_row_softmax(ws: &mut Workspace, a: &Matrix) -> Matrix {
    let mut out = ws.alloc_copy(a);
    for r in 0..out.rows() {
        let row = out.row_mut(r);
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0;
        for v in row.iter_mut() {
            *v = (*v - max).exp();
            sum += *v;
        }
        if sum > 0.0 {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
    }
    out
}

/// `log_softmax(row)[t]` computed without materializing the full row —
/// value-identical to `Matrix::row_log_softmax` at column `t`.
fn row_log_softmax_at(row: &[f32], t: usize) -> f32 {
    let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
    let log_sum: f32 = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln();
    row[t] - max - log_sum
}

/// Adds `delta` into the gradient slot of `n` (moving it in when the slot is
/// empty), reclaiming the buffer when the target does not track gradients.
fn accumulate(
    nodes: &[NodeData],
    grads: &mut [Option<Matrix>],
    ws: &mut Workspace,
    n: Node,
    delta: Matrix,
) {
    if !nodes[n.0].requires_grad {
        ws.reclaim(delta);
        return;
    }
    match &mut grads[n.0] {
        Some(g) => {
            ws.backend().add_scaled(g, &delta, 1.0);
            ws.reclaim(delta);
        }
        slot @ None => *slot = Some(delta),
    }
}

/// Propagates `grad` (the gradient at node `id`) one op backwards,
/// accumulating into the input nodes' gradient slots.
///
/// Free function over the graph's split-borrowed parts so the op can be
/// matched by reference (no per-node `Op` clone, which used to copy the
/// index payloads of gather/group ops on every backward step).
fn apply_backward(
    nodes: &[NodeData],
    grads: &mut [Option<Matrix>],
    ws: &mut Workspace,
    id: usize,
    grad: &Matrix,
) {
    match &nodes[id].op {
        Op::Leaf | Op::Detach(_) => {}
        Op::MatMul(a, b) => {
            let (a, b) = (*a, *b);
            let mut da = ws.alloc_uninit(grad.rows(), nodes[b.0].value.rows());
            ws.backend().matmul_nt(grad, &nodes[b.0].value, &mut da);
            let mut db = ws.alloc_zeros(nodes[a.0].value.cols(), grad.cols());
            ws.backend().matmul_tn(&nodes[a.0].value, grad, &mut db);
            accumulate(nodes, grads, ws, a, da);
            accumulate(nodes, grads, ws, b, db);
        }
        Op::Add(a, b) => {
            let (a, b) = (*a, *b);
            let da = ws.alloc_copy(grad);
            accumulate(nodes, grads, ws, a, da);
            let db = ws.alloc_copy(grad);
            accumulate(nodes, grads, ws, b, db);
        }
        Op::Sub(a, b) => {
            let (a, b) = (*a, *b);
            let da = ws.alloc_copy(grad);
            accumulate(nodes, grads, ws, a, da);
            let db = pooled_map(ws, grad, |v| -v);
            accumulate(nodes, grads, ws, b, db);
        }
        Op::Mul(a, b) => {
            let (a, b) = (*a, *b);
            let da = pooled_zip(ws, grad, &nodes[b.0].value, |g, x| g * x);
            let db = pooled_zip(ws, grad, &nodes[a.0].value, |g, x| g * x);
            accumulate(nodes, grads, ws, a, da);
            accumulate(nodes, grads, ws, b, db);
        }
        Op::Div(a, b) => {
            let (a, b) = (*a, *b);
            let da = pooled_zip(ws, grad, &nodes[b.0].value, |g, den| g / den);
            let db = {
                let (av, bv) = (&nodes[a.0].value, &nodes[b.0].value);
                let mut out = ws.alloc_uninit(grad.rows(), grad.cols());
                for (((o, &g), &x), &den) in out
                    .iter_mut()
                    .zip(grad.iter())
                    .zip(av.iter())
                    .zip(bv.iter())
                {
                    let num = g * x;
                    *o = -num / (den * den);
                }
                out
            };
            accumulate(nodes, grads, ws, a, da);
            accumulate(nodes, grads, ws, b, db);
        }
        Op::AddRow(a, row) => {
            let (a, row) = (*a, *row);
            let da = ws.alloc_copy(grad);
            accumulate(nodes, grads, ws, a, da);
            let mut drow = ws.alloc_zeros(1, grad.cols());
            for r in 0..grad.rows() {
                for (o, &v) in drow.row_mut(0).iter_mut().zip(grad.row(r)) {
                    *o += v;
                }
            }
            accumulate(nodes, grads, ws, row, drow);
        }
        Op::AddCol(a, col) => {
            let (a, col) = (*a, *col);
            let da = ws.alloc_copy(grad);
            accumulate(nodes, grads, ws, a, da);
            let mut dcol = ws.alloc_uninit(grad.rows(), 1);
            for r in 0..grad.rows() {
                let s: f32 = grad.row(r).iter().sum();
                dcol.set(r, 0, s);
            }
            accumulate(nodes, grads, ws, col, dcol);
        }
        Op::Scale(a, s) => {
            let (a, s) = (*a, *s);
            let da = pooled_map(ws, grad, |v| v * s);
            accumulate(nodes, grads, ws, a, da);
        }
        Op::AddScalar(a, _) => {
            let a = *a;
            let da = ws.alloc_copy(grad);
            accumulate(nodes, grads, ws, a, da);
        }
        Op::Relu(a) => {
            let a = *a;
            let da = pooled_zip(ws, grad, &nodes[a.0].value, |g, x| {
                g * if x > 0.0 { 1.0 } else { 0.0 }
            });
            accumulate(nodes, grads, ws, a, da);
        }
        Op::Tanh(a) => {
            let a = *a;
            let da = pooled_zip(ws, grad, &nodes[id].value, |g, t| g * (1.0 - t * t));
            accumulate(nodes, grads, ws, a, da);
        }
        Op::Exp(a) => {
            let a = *a;
            let da = pooled_zip(ws, grad, &nodes[id].value, |g, y| g * y);
            accumulate(nodes, grads, ws, a, da);
        }
        Op::Log(a) => {
            let a = *a;
            let da = pooled_zip(ws, grad, &nodes[a.0].value, |g, x| g / x.max(1e-12));
            accumulate(nodes, grads, ws, a, da);
        }
        Op::Transpose(a) => {
            let a = *a;
            let da = pooled_transpose(ws, grad);
            accumulate(nodes, grads, ws, a, da);
        }
        Op::RowL2Normalize(a) => {
            let a = *a;
            let d = {
                let x = &nodes[a.0].value;
                let y = &nodes[id].value;
                let mut d = ws.alloc_uninit(x.rows(), x.cols());
                for r in 0..x.rows() {
                    let norm: f32 = x.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
                    if norm <= 1e-12 {
                        // Forward passed the row through unchanged.
                        d.row_mut(r).copy_from_slice(grad.row(r));
                        continue;
                    }
                    let g_dot_y: f32 = grad
                        .row(r)
                        .iter()
                        .zip(y.row(r))
                        .map(|(&g, &yy)| g * yy)
                        .sum();
                    for c in 0..x.cols() {
                        let v = (grad.get(r, c) - y.get(r, c) * g_dot_y) / norm;
                        d.set(r, c, v);
                    }
                }
                d
            };
            accumulate(nodes, grads, ws, a, d);
        }
        Op::LayerNorm(a) => {
            let a = *a;
            // With y = (x − μ)/σ: dx = (g − mean(g) − y·mean(g⊙y)) / σ.
            let d = {
                let x = &nodes[a.0].value;
                let y = &nodes[id].value;
                let mut d = ws.alloc_uninit(x.rows(), x.cols());
                for r in 0..x.rows() {
                    let n = x.cols() as f32;
                    let mean: f32 = x.row(r).iter().sum::<f32>() / n;
                    let var: f32 = x
                        .row(r)
                        .iter()
                        .map(|v| (v - mean) * (v - mean))
                        .sum::<f32>()
                        / n;
                    let inv_std = 1.0 / (var + 1e-5).sqrt();
                    let g_mean: f32 = grad.row(r).iter().sum::<f32>() / n;
                    let gy_mean: f32 = grad
                        .row(r)
                        .iter()
                        .zip(y.row(r))
                        .map(|(&g, &yy)| g * yy)
                        .sum::<f32>()
                        / n;
                    for c in 0..x.cols() {
                        let v = (grad.get(r, c) - g_mean - y.get(r, c) * gy_mean) * inv_std;
                        d.set(r, c, v);
                    }
                }
                d
            };
            accumulate(nodes, grads, ws, a, d);
        }
        Op::RowSumSq(a) => {
            let a = *a;
            let d = {
                let x = &nodes[a.0].value;
                let mut d = ws.alloc_uninit(x.rows(), x.cols());
                for r in 0..x.rows() {
                    let g = grad.get(r, 0);
                    for c in 0..x.cols() {
                        d.set(r, c, 2.0 * x.get(r, c) * g);
                    }
                }
                d
            };
            accumulate(nodes, grads, ws, a, d);
        }
        Op::GatherRows(a, indices) => {
            let a = *a;
            let mut d = ws.alloc_zeros(nodes[a.0].value.rows(), grad.cols());
            for (i, &idx) in indices.iter().enumerate() {
                for (o, &v) in d.row_mut(idx).iter_mut().zip(grad.row(i)) {
                    *o += v;
                }
            }
            accumulate(nodes, grads, ws, a, d);
        }
        Op::ConcatRows(a, b) => {
            let (a, b) = (*a, *b);
            let ra = nodes[a.0].value.rows();
            let cols = grad.cols();
            let mut da = ws.alloc_uninit(ra, cols);
            da.as_mut_slice()
                .copy_from_slice(&grad.as_slice()[..ra * cols]);
            let mut db = ws.alloc_uninit(grad.rows() - ra, cols);
            db.as_mut_slice()
                .copy_from_slice(&grad.as_slice()[ra * cols..]);
            accumulate(nodes, grads, ws, a, da);
            accumulate(nodes, grads, ws, b, db);
        }
        Op::ConcatCols(a, b) => {
            let (a, b) = (*a, *b);
            let ca = nodes[a.0].value.cols();
            let mut da = ws.alloc_uninit(grad.rows(), ca);
            let mut db = ws.alloc_uninit(grad.rows(), grad.cols() - ca);
            for r in 0..grad.rows() {
                da.row_mut(r).copy_from_slice(&grad.row(r)[..ca]);
                db.row_mut(r).copy_from_slice(&grad.row(r)[ca..]);
            }
            accumulate(nodes, grads, ws, a, da);
            accumulate(nodes, grads, ws, b, db);
        }
        Op::GroupMeanRows(a, assignments, k) => {
            let a = *a;
            let mut counts = vec![0usize; *k];
            for &g in assignments {
                counts[g] += 1;
            }
            let x_rows = nodes[a.0].value.rows();
            let mut d = ws.alloc_zeros(x_rows, grad.cols());
            for (r, &g) in assignments.iter().enumerate() {
                let inv = 1.0 / counts[g] as f32;
                for (o, &v) in d.row_mut(r).iter_mut().zip(grad.row(g)) {
                    *o += v * inv;
                }
            }
            accumulate(nodes, grads, ws, a, d);
        }
        Op::RowwiseDot(a, b) => {
            let (a, b) = (*a, *b);
            let (da, db) = {
                let (av, bv) = (&nodes[a.0].value, &nodes[b.0].value);
                let mut da = ws.alloc_uninit(av.rows(), av.cols());
                let mut db = ws.alloc_uninit(bv.rows(), bv.cols());
                for r in 0..av.rows() {
                    let g = grad.get(r, 0);
                    for c in 0..av.cols() {
                        da.set(r, c, g * bv.get(r, c));
                        db.set(r, c, g * av.get(r, c));
                    }
                }
                (da, db)
            };
            accumulate(nodes, grads, ws, a, da);
            accumulate(nodes, grads, ws, b, db);
        }
        Op::SumAll(a) => {
            let a = *a;
            let s = grad.get(0, 0);
            let shape = nodes[a.0].value.shape();
            let d = ws.alloc_full(shape.0, shape.1, s);
            accumulate(nodes, grads, ws, a, d);
        }
        Op::MeanAll(a) => {
            let a = *a;
            let shape = nodes[a.0].value.shape();
            let n = (shape.0 * shape.1).max(1) as f32;
            let s = grad.get(0, 0) / n;
            let d = ws.alloc_full(shape.0, shape.1, s);
            accumulate(nodes, grads, ws, a, d);
        }
        Op::CrossEntropy(logits, targets) => {
            let logits = *logits;
            let mut d = {
                // analyze:allow(no-expect) -- forward always caches the
                // softmax in aux for CrossEntropy nodes.
                let soft = nodes[id].aux.as_ref().expect("softmax cached in forward");
                ws.alloc_copy(soft)
            };
            let g = grad.get(0, 0) / targets.len().max(1) as f32;
            for (r, &t) in targets.iter().enumerate() {
                let v = d.get(r, t) - 1.0;
                d.set(r, t, v);
            }
            for v in d.iter_mut() {
                *v *= g;
            }
            accumulate(nodes, grads, ws, logits, d);
        }
        Op::CrossEntropySoft(logits, targets) => {
            let logits = *logits;
            let g = grad.get(0, 0) / targets.rows().max(1) as f32;
            // Per-row gradient: (sum_k t_k) * softmax - t. For probability
            // rows the row sum is 1 and this reduces to softmax - t.
            let mut d = {
                // analyze:allow(no-expect) -- forward always caches the
                // softmax in aux for CrossEntropySoft nodes.
                let soft = nodes[id].aux.as_ref().expect("softmax cached in forward");
                let mut d = ws.alloc_uninit(soft.rows(), soft.cols());
                for r in 0..soft.rows() {
                    let t_sum: f32 = targets.row(r).iter().sum();
                    for c in 0..soft.cols() {
                        d.set(r, c, t_sum * soft.get(r, c) - targets.get(r, c));
                    }
                }
                d
            };
            for v in d.iter_mut() {
                *v *= g;
            }
            accumulate(nodes, grads, ws, logits, d);
        }
        Op::Im2Col(a, shape, kernel, stride) => {
            let (a, shape, kernel, stride) = (*a, *shape, *kernel, *stride);
            let rows = nodes[a.0].value.rows();
            let d = crate::conv::col2im_matrix(grad, rows, shape, kernel, stride);
            accumulate(nodes, grads, ws, a, d);
        }
        Op::Reshape(a) => {
            let a = *a;
            let (r, c) = nodes[a.0].value.shape();
            let mut d = ws.alloc_uninit(r, c);
            d.as_mut_slice().copy_from_slice(grad.as_slice());
            accumulate(nodes, grads, ws, a, d);
        }
        Op::MaskDiagonal(a, _) => {
            let a = *a;
            let mut d = ws.alloc_copy(grad);
            for i in 0..d.rows() {
                d.set(i, i, 0.0);
            }
            accumulate(nodes, grads, ws, a, d);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar(g: &Graph, n: Node) -> f32 {
        g.value(n).get(0, 0)
    }

    #[test]
    fn constant_nodes_do_not_track_gradients() {
        let mut g = Graph::new();
        let c = g.constant(Matrix::from_vec(1, 1, vec![2.0]));
        let y = g.mean_all(c);
        g.backward(y);
        assert!(g.grad(c).is_none());
    }

    #[test]
    fn matmul_backward_matches_analytic() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let b = g.leaf(Matrix::from_rows(&[vec![5.0], vec![6.0]]));
        let c = g.matmul(a, b);
        let loss = g.sum_all(c);
        g.backward(loss);
        // d(sum(A B))/dA = 1 Bᵀ broadcast over rows; /dB = Aᵀ 1.
        assert_eq!(g.grad(a).unwrap().row(0), &[5.0, 6.0]);
        assert_eq!(g.grad(a).unwrap().row(1), &[5.0, 6.0]);
        assert_eq!(g.grad(b).unwrap().col(0), vec![4.0, 6.0]);
    }

    #[test]
    fn add_sub_mul_div_backward() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_vec(1, 1, vec![3.0]));
        let b = g.leaf(Matrix::from_vec(1, 1, vec![2.0]));
        let s = g.add(a, b);
        let d = g.sub(s, b); // = a
        let m = g.mul(d, b); // = a*b
        let q = g.div(m, b); // = a
        let loss = g.sum_all(q);
        g.backward(loss);
        assert!((g.grad(a).unwrap().get(0, 0) - 1.0).abs() < 1e-5);
        // b cancels out overall: gradient ≈ 0
        assert!(g.grad(b).unwrap().get(0, 0).abs() < 1e-5);
    }

    #[test]
    fn relu_gates_gradient() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_rows(&[vec![-1.0, 2.0]]));
        let y = g.relu(x);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert_eq!(g.grad(x).unwrap().row(0), &[0.0, 1.0]);
    }

    #[test]
    fn tanh_backward_uses_output() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(1, 1, vec![0.5]));
        let y = g.tanh(x);
        let loss = g.sum_all(y);
        g.backward(loss);
        let t = 0.5f32.tanh();
        assert!((g.grad(x).unwrap().get(0, 0) - (1.0 - t * t)).abs() < 1e-6);
    }

    #[test]
    fn detach_blocks_gradient() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(1, 1, vec![2.0]));
        let d = g.detach(x);
        let y = g.mul(d, d);
        let loss = g.sum_all(y);
        g.backward(loss);
        assert!(g.grad(x).is_none(), "gradient must not flow through detach");
    }

    #[test]
    fn mul_with_shared_input_doubles_gradient() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(1, 1, vec![3.0]));
        let y = g.mul(x, x); // x²
        let loss = g.sum_all(y);
        g.backward(loss);
        assert!((g.grad(x).unwrap().get(0, 0) - 6.0).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_forward_matches_manual() {
        let mut g = Graph::new();
        let logits = g.leaf(Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 1.0]]));
        let loss = g.cross_entropy(logits, &[0, 1]);
        let expected = {
            let m = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 1.0]]).row_log_softmax();
            -(m.get(0, 0) + m.get(1, 1)) / 2.0
        };
        assert!((scalar(&g, loss) - expected).abs() < 1e-6);
    }

    #[test]
    fn cross_entropy_gradient_is_softmax_minus_onehot() {
        let mut g = Graph::new();
        let logits = g.leaf(Matrix::from_rows(&[vec![1.0, -1.0]]));
        let loss = g.cross_entropy(logits, &[0]);
        g.backward(loss);
        let soft = Matrix::from_rows(&[vec![1.0, -1.0]]).row_softmax();
        let grad = g.grad(logits).unwrap();
        assert!((grad.get(0, 0) - (soft.get(0, 0) - 1.0)).abs() < 1e-6);
        assert!((grad.get(0, 1) - soft.get(0, 1)).abs() < 1e-6);
    }

    #[test]
    fn soft_cross_entropy_matches_hard_when_targets_are_onehot() {
        let logits_m = Matrix::from_rows(&[vec![0.5, -0.2, 1.0], vec![0.1, 0.1, -2.0]]);
        let mut g1 = Graph::new();
        let l1 = g1.leaf(logits_m.clone());
        let hard = g1.cross_entropy(l1, &[2, 0]);
        g1.backward(hard);

        let mut g2 = Graph::new();
        let l2 = g2.leaf(logits_m);
        let onehot = Matrix::from_rows(&[vec![0.0, 0.0, 1.0], vec![1.0, 0.0, 0.0]]);
        let soft = g2.cross_entropy_soft(l2, onehot);
        g2.backward(soft);

        assert!((scalar(&g1, hard) - scalar(&g2, soft)).abs() < 1e-6);
        let ga = g1.grad(l1).unwrap();
        let gb = g2.grad(l2).unwrap();
        for (a, b) in ga.iter().zip(gb.iter()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn mask_diagonal_sets_value_and_blocks_diag_grad() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let m = g.mask_diagonal(x, -99.0);
        assert_eq!(g.value(m).get(0, 0), -99.0);
        assert_eq!(g.value(m).get(1, 1), -99.0);
        assert_eq!(g.value(m).get(0, 1), 2.0);
        let loss = g.sum_all(m);
        g.backward(loss);
        let grad = g.grad(x).unwrap();
        assert_eq!(grad.get(0, 0), 0.0);
        assert_eq!(grad.get(1, 1), 0.0);
        assert_eq!(grad.get(0, 1), 1.0);
    }

    #[test]
    fn group_mean_rows_forward_and_backward() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_rows(&[
            vec![1.0, 0.0],
            vec![3.0, 0.0],
            vec![10.0, 2.0],
        ]));
        let centroids = g.group_mean_rows(x, &[0, 0, 1], 2);
        assert_eq!(g.value(centroids).row(0), &[2.0, 0.0]);
        assert_eq!(g.value(centroids).row(1), &[10.0, 2.0]);
        let loss = g.sum_all(centroids);
        g.backward(loss);
        let grad = g.grad(x).unwrap();
        // members of group 0 each get 1/2, member of group 1 gets 1
        assert_eq!(grad.row(0), &[0.5, 0.5]);
        assert_eq!(grad.row(1), &[0.5, 0.5]);
        assert_eq!(grad.row(2), &[1.0, 1.0]);
    }

    #[test]
    fn group_mean_rows_with_empty_group_yields_zero_row() {
        let mut g = Graph::new();
        let x = g.constant(Matrix::from_rows(&[vec![1.0], vec![2.0]]));
        let c = g.group_mean_rows(x, &[0, 0], 3);
        assert_eq!(g.value(c).row(1), &[0.0]);
        assert_eq!(g.value(c).row(2), &[0.0]);
    }

    #[test]
    fn row_l2_normalize_output_grad_is_tangent() {
        // Gradient of a normalized vector must be orthogonal to the output
        // direction when upstream gradient is the output itself (norm is
        // constant along the ray).
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_rows(&[vec![3.0, 4.0]]));
        let y = g.row_l2_normalize(x);
        let sq = g.mul(y, y);
        let loss = g.sum_all(sq); // = ||y||² = 1 identically
        g.backward(loss);
        let grad = g.grad(x).unwrap();
        assert!(
            grad.max_abs() < 1e-6,
            "norm of a normalized row is constant; grad {grad:?}"
        );
    }

    #[test]
    fn gather_concat_roundtrip_distributes_gradient() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]));
        let top = g.gather_rows(x, &[0, 1]);
        let bottom = g.gather_rows(x, &[2, 2]);
        let cat = g.concat_rows(top, bottom);
        let loss = g.sum_all(cat);
        g.backward(loss);
        let grad = g.grad(x).unwrap();
        assert_eq!(grad.col(0), vec![1.0, 1.0, 2.0]);
    }

    #[test]
    fn concat_cols_splits_gradient() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_rows(&[vec![1.0]]));
        let b = g.leaf(Matrix::from_rows(&[vec![2.0, 3.0]]));
        let cat = g.concat_cols(a, b);
        let scaled = g.scale(cat, 2.0);
        let loss = g.sum_all(scaled);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().row(0), &[2.0]);
        assert_eq!(g.grad(b).unwrap().row(0), &[2.0, 2.0]);
    }

    #[test]
    fn rowwise_dot_backward() {
        let mut g = Graph::new();
        let a = g.leaf(Matrix::from_rows(&[vec![1.0, 2.0]]));
        let b = g.leaf(Matrix::from_rows(&[vec![3.0, 4.0]]));
        let d = g.rowwise_dot(a, b);
        let loss = g.sum_all(d);
        g.backward(loss);
        assert_eq!(g.grad(a).unwrap().row(0), &[3.0, 4.0]);
        assert_eq!(g.grad(b).unwrap().row(0), &[1.0, 2.0]);
    }

    #[test]
    fn mean_all_scales_gradient_by_count() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]));
        let loss = g.mean_all(x);
        g.backward(loss);
        assert!(g.grad(x).unwrap().iter().all(|&v| (v - 0.25).abs() < 1e-6));
    }

    #[test]
    fn add_row_and_add_col_backward() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::zeros(2, 3));
        let row = g.leaf(Matrix::row_vector(&[1.0, 2.0, 3.0]));
        let col = g.leaf(Matrix::col_vector(&[5.0, 6.0]));
        let a = g.add_row(x, row);
        let b = g.add_col(a, col);
        let loss = g.sum_all(b);
        g.backward(loss);
        assert_eq!(g.grad(row).unwrap().row(0), &[2.0, 2.0, 2.0]);
        assert_eq!(g.grad(col).unwrap().col(0), vec![3.0, 3.0]);
        assert!(g.grad(x).unwrap().iter().all(|&v| v == 1.0));
    }

    #[test]
    #[should_panic(expected = "backward requires a scalar")]
    fn backward_rejects_non_scalar() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::zeros(2, 2));
        g.backward(x);
    }

    #[test]
    fn layer_norm_rows_have_zero_mean_unit_variance() {
        let mut g = Graph::new();
        let x = g.constant(Matrix::from_rows(&[
            vec![1.0, 3.0, 5.0],
            vec![-2.0, 0.0, 2.0],
        ]));
        let y = g.layer_norm(x);
        for r in 0..2 {
            let row = g.value(y).row(r);
            let mean: f32 = row.iter().sum::<f32>() / 3.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 3.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }

    #[test]
    fn layer_norm_gradient_is_orthogonal_to_constants() {
        // Adding a constant to a row does not change layer_norm output, so
        // the gradient must sum to ~0 per row.
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_rows(&[vec![0.5, -1.0, 2.0, 0.3]]));
        let y = g.layer_norm(x);
        let w = g.constant(Matrix::from_rows(&[
            vec![1.0],
            vec![-2.0],
            vec![0.5],
            vec![3.0],
        ]));
        let out = g.matmul(y, w);
        let loss = g.sum_all(out);
        g.backward(loss);
        let grad = g.grad(x).unwrap();
        let row_sum: f32 = grad.row(0).iter().sum();
        assert!(row_sum.abs() < 1e-4, "row gradient sum {row_sum}");
    }

    #[test]
    fn backward_twice_resets_gradients() {
        let mut g = Graph::new();
        let x = g.leaf(Matrix::from_vec(1, 1, vec![1.0]));
        let y = g.scale(x, 3.0);
        let loss = g.sum_all(y);
        g.backward(loss);
        g.backward(loss);
        assert!(
            (g.grad(x).unwrap().get(0, 0) - 3.0).abs() < 1e-6,
            "grad must not double-accumulate"
        );
    }

    #[test]
    fn reset_recycles_buffers_and_preserves_results() {
        let x_val = Matrix::from_rows(&[vec![1.0, -2.0], vec![0.5, 3.0]]);
        let w_val = Matrix::from_rows(&[vec![0.3, 0.7], vec![-0.4, 0.1]]);
        let run = |g: &mut Graph| -> (f32, Matrix) {
            let x = g.constant_from(&x_val);
            let w = g.leaf_from(&w_val);
            let h = g.matmul(x, w);
            let act = g.relu(h);
            let loss = g.mean_all(act);
            g.backward(loss);
            (g.value(loss).get(0, 0), g.grad(w).unwrap().clone())
        };

        let mut fresh = Graph::new();
        let (loss_fresh, grad_fresh) = run(&mut fresh);

        let mut recycled = Graph::new();
        let mut loss_rec = 0.0;
        let mut grad_rec = Matrix::zeros(0, 0);
        for _ in 0..4 {
            recycled.reset();
            let (l, gr) = run(&mut recycled);
            loss_rec = l;
            grad_rec = gr;
        }
        assert_eq!(loss_fresh.to_bits(), loss_rec.to_bits());
        assert_eq!(grad_fresh, grad_rec, "recycled tape must be bit-identical");
        let stats = recycled.pool_stats();
        assert!(stats.hits > 0, "later steps must reuse pooled buffers");
    }

    #[test]
    fn leaf_from_matches_leaf() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let mut g = Graph::new();
        let a = g.leaf(m.clone());
        let b = g.leaf_from(&m);
        assert_eq!(g.value(a), g.value(b));
        let c = g.constant_from(&m);
        assert_eq!(g.value(c), &m);
    }
}
