//! Pluggable execution backends for the dense kernels underneath the tape.
//!
//! Every [`crate::Graph`] op that does real arithmetic (matmul and its two
//! transposed variants, axpy, scaling, reductions) dispatches through a
//! [`Backend`] carried by the graph's [`crate::pool::Workspace`]. Two
//! implementations ship today:
//!
//! - [`Scalar`] — the reference backend. Its loops are *verbatim* the
//!   original `Matrix` kernels, so training under `Scalar` is bit-identical
//!   to the pre-backend code (pinned by the golden-checksum tests).
//! - [`Blocked`] — a cache-tiled backend that unrolls the reduction
//!   dimension four-wide (and splits rows across threads for very large
//!   products). It may reorder floating-point sums, so results agree with
//!   `Scalar` to ~1e-4 relative, not bitwise.
//!
//! A process-global default (used by `Graph::new`) starts as `Scalar` and
//! can be switched once at startup — the bench binaries expose this as
//! `--backend scalar|blocked`. Code that needs a specific backend regardless
//! of the global (tests, comparisons) builds an explicit
//! [`crate::pool::Workspace`] instead.

use crate::Matrix;
use std::sync::{Arc, RwLock};

/// Dense kernels the autodiff tape dispatches through.
///
/// `out` buffers follow the convention of the original `Matrix` kernels:
/// accumulating kernels (`matmul`, `matmul_tn`) require a zeroed `out`,
/// fully-overwriting kernels (`matmul_nt`, `row_sum_sq`) accept stale
/// contents. Shape checking is the caller's job (the graph ops assert before
/// dispatching), so implementations may assume conforming shapes.
pub trait Backend: Send + Sync + std::fmt::Debug {
    /// Short stable identifier (`"scalar"`, `"blocked"`).
    fn name(&self) -> &'static str;

    /// `out += a · b` with `out` pre-zeroed: the forward matmul.
    fn matmul(&self, a: &Matrix, b: &Matrix, out: &mut Matrix);

    /// `out = a · bᵀ` (fully overwrites `out`): the `dA` of matmul backward.
    fn matmul_nt(&self, a: &Matrix, b: &Matrix, out: &mut Matrix);

    /// `out += aᵀ · b` with `out` pre-zeroed: the `dB` of matmul backward,
    /// computed without materializing the transpose.
    fn matmul_tn(&self, a: &Matrix, b: &Matrix, out: &mut Matrix);

    /// Elementwise `out += a`.
    fn add_assign(&self, out: &mut Matrix, a: &Matrix) {
        self.add_scaled(out, a, 1.0);
    }

    /// Elementwise axpy `out += a * s` — the core of gradient accumulation,
    /// every optimizer and the server aggregation.
    fn add_scaled(&self, out: &mut Matrix, a: &Matrix, s: f32) {
        for (o, &v) in out.iter_mut().zip(a.iter()) {
            *o += v * s;
        }
    }

    /// Elementwise `out *= s`.
    fn scale(&self, out: &mut Matrix, s: f32) {
        for o in out.iter_mut() {
            *o *= s;
        }
    }

    /// Sum of all elements.
    fn sum(&self, a: &Matrix) -> f32 {
        a.iter().sum()
    }

    /// Per-row sum of squares written into a pre-shaped `(rows, 1)` column.
    fn row_sum_sq(&self, a: &Matrix, out: &mut Matrix) {
        for r in 0..a.rows() {
            let s: f32 = a.row(r).iter().map(|v| v * v).sum();
            out.set(r, 0, s);
        }
    }

    /// Squared Euclidean distance between two equal-length slices — the
    /// kmeans assignment kernel.
    fn squared_distance(&self, a: &[f32], b: &[f32]) -> f32 {
        a.iter()
            .zip(b.iter())
            .map(|(&x, &y)| (x - y) * (x - y))
            .sum()
    }

    /// Slice-level axpy `out += a * s` — the kmeans centroid-update kernel.
    fn axpy(&self, out: &mut [f32], a: &[f32], s: f32) {
        for (o, &v) in out.iter_mut().zip(a.iter()) {
            *o += v * s;
        }
    }
}

/// Reference backend: loop-for-loop identical to the original `Matrix`
/// kernels, and therefore bit-identical to pre-backend training.
#[derive(Debug, Clone, Copy, Default)]
pub struct Scalar;

impl Backend for Scalar {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn matmul(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        // i-k-j loop order keeps the inner loop streaming over contiguous
        // rows of `b` and `out`; skipping zero a_ik terms is exact
        // (x + 0·b == x in f32 for finite b).
        for i in 0..a.rows() {
            let a_row = a.row(i);
            let out_row = out.row_mut(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = b.row(k);
                for (o, &bv) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * bv;
                }
            }
        }
    }

    fn matmul_nt(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        for i in 0..a.rows() {
            let a_row = a.row(i);
            for j in 0..b.rows() {
                let b_row = b.row(j);
                let mut acc = 0.0;
                for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                    acc += x * y;
                }
                out.set(i, j, acc);
            }
        }
    }

    fn matmul_tn(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        // Per out element this accumulates a[k][i]·b[k][j] in increasing-k
        // order with the same zero skip as `a.transpose().matmul(b)`, so the
        // result is bit-identical to the transpose-then-matmul path while
        // touching `a` row-major.
        for k in 0..a.rows() {
            let a_row = a.row(k);
            let b_row = b.row(k);
            for (i, &aki) in a_row.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                for (o, &bv) in out.row_mut(i).iter_mut().zip(b_row.iter()) {
                    *o += aki * bv;
                }
            }
        }
    }
}

/// Products with at least this many multiply-adds split their rows across
/// threads. High enough that the per-step matmuls of the smoke-scale
/// federated runs (which already parallelize across clients) never pay
/// thread-spawn overhead.
const PAR_MIN_FLOPS: usize = 1 << 22;

/// Cache-tiled backend: the reduction dimension is processed four-wide so
/// each pass over the output row fuses four axpys (4× less traffic over
/// `out`, more ILP), and very large products split rows across threads.
///
/// Summation order differs from [`Scalar`] (four partial products are added
/// before accumulating), so results match to ~1e-4, not bitwise.
#[derive(Debug, Clone, Copy, Default)]
pub struct Blocked;

/// One output row of `a · b`: `out_row += Σ_k a_row[k] · b[k][·]`, four
/// reduction terms fused per pass so `out_row` is written once per four
/// axpys instead of once per term. Quads whose four coefficients are all
/// zero (common after ReLU) are skipped exactly.
fn blocked_row_kernel(a_row: &[f32], b: &Matrix, out_row: &mut [f32]) {
    let n = out_row.len();
    let mut k = 0;
    while k + 4 <= a_row.len() {
        let (a0, a1, a2, a3) = (a_row[k], a_row[k + 1], a_row[k + 2], a_row[k + 3]);
        if a0 != 0.0 || a1 != 0.0 || a2 != 0.0 || a3 != 0.0 {
            let b0 = &b.row(k)[..n];
            let b1 = &b.row(k + 1)[..n];
            let b2 = &b.row(k + 2)[..n];
            let b3 = &b.row(k + 3)[..n];
            for (j, o) in out_row.iter_mut().enumerate() {
                *o += a0 * b0[j] + a1 * b1[j] + a2 * b2[j] + a3 * b3[j];
            }
        }
        k += 4;
    }
    while k < a_row.len() {
        let a_ik = a_row[k];
        if a_ik != 0.0 {
            for (o, &bv) in out_row.iter_mut().zip(b.row(k).iter()) {
                *o += a_ik * bv;
            }
        }
        k += 1;
    }
}

/// Serial `out += a · b` over a contiguous row range of `out`, one
/// [`blocked_row_kernel`] pass per row.
fn blocked_matmul_rows(a: &Matrix, b: &Matrix, row0: usize, rows: &mut [f32], cols: usize) {
    for (local, out_row) in rows.chunks_mut(cols.max(1)).enumerate() {
        blocked_row_kernel(a.row(row0 + local), b, out_row);
    }
}

/// One output row via the zero-skipping axpy sweep (same algorithm as
/// [`Scalar`]) — the fastest shape when the coefficient row is mostly zeros.
fn scalar_row_kernel(a_row: &[f32], b: &Matrix, out_row: &mut [f32]) {
    for (k, &a_ik) in a_row.iter().enumerate() {
        if a_ik == 0.0 {
            continue;
        }
        for (o, &bv) in out_row.iter_mut().zip(b.row(k).iter()) {
            *o += a_ik * bv;
        }
    }
}

/// Whether `a` is sparse enough (≥25% zeros in a bounded prefix sample) that
/// per-term zero skipping beats register blocking. ReLU activation batches
/// routinely clear half their entries; data batches are dense.
fn operand_is_sparse(a: &Matrix) -> bool {
    let sample = &a.as_slice()[..a.as_slice().len().min(256)];
    let zeros = sample.iter().filter(|&&v| v == 0.0).count();
    zeros * 4 >= sample.len()
}

/// Splits the rows of `out` into contiguous chunks and runs `kernel` on each
/// chunk from its own scoped thread. `kernel` receives the starting row and
/// the chunk's backing slice.
fn par_over_rows<F>(out: &mut Matrix, threads: usize, kernel: F)
where
    F: Fn(usize, &mut [f32]) + Sync,
{
    let rows = out.rows();
    let cols = out.cols();
    // Kernels are per-row, so row partitioning never changes per-row
    // summation order.
    let rows_per = rows.div_ceil(threads.max(1)).max(1);
    let data = out.as_mut_slice();
    std::thread::scope(|s| {
        for (idx, chunk) in data.chunks_mut(rows_per * cols).enumerate() {
            let kernel = &kernel;
            s.spawn(move || kernel(idx * rows_per, chunk));
        }
    });
}

fn thread_budget() -> usize {
    // available_parallelism re-reads cgroup quota files on Linux — far too
    // expensive for a per-matmul query, so resolve it once per process.
    static BUDGET: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .min(8)
    })
}

impl Backend for Blocked {
    fn name(&self) -> &'static str {
        "blocked"
    }

    fn matmul(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        let flops = a.rows() * a.cols() * b.cols();
        let threads = thread_budget();
        let cols = out.cols();
        let sparse = operand_is_sparse(a);
        if flops >= PAR_MIN_FLOPS && threads > 1 && a.rows() > 1 {
            par_over_rows(out, threads, |row0, chunk| {
                if sparse {
                    for (local, out_row) in chunk.chunks_mut(cols).enumerate() {
                        scalar_row_kernel(a.row(row0 + local), b, out_row);
                    }
                } else {
                    blocked_matmul_rows(a, b, row0, chunk, cols);
                }
            });
        } else if sparse {
            for i in 0..a.rows() {
                scalar_row_kernel(a.row(i), b, out.row_mut(i));
            }
        } else {
            blocked_matmul_rows(a, b, 0, out.as_mut_slice(), cols);
        }
    }

    fn matmul_nt(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        // Four output columns at a time: the four dot products share each
        // `a` load and run as independent accumulation chains, so the FMA
        // latency of a single sequential dot no longer bounds throughput.
        let inner = a.cols();
        let nb = b.rows();
        for i in 0..a.rows() {
            let a_row = &a.row(i)[..inner];
            let out_row = out.row_mut(i);
            let mut j = 0;
            while j + 4 <= nb {
                let b0 = &b.row(j)[..inner];
                let b1 = &b.row(j + 1)[..inner];
                let b2 = &b.row(j + 2)[..inner];
                let b3 = &b.row(j + 3)[..inner];
                let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0, 0.0, 0.0);
                for (k, &av) in a_row.iter().enumerate() {
                    s0 += av * b0[k];
                    s1 += av * b1[k];
                    s2 += av * b2[k];
                    s3 += av * b3[k];
                }
                out_row[j] = s0;
                out_row[j + 1] = s1;
                out_row[j + 2] = s2;
                out_row[j + 3] = s3;
                j += 4;
            }
            while j < nb {
                let b_row = b.row(j);
                let mut acc = 0.0;
                for (&x, &y) in a_row.iter().zip(b_row.iter()) {
                    acc += x * y;
                }
                out_row[j] = acc;
                j += 1;
            }
        }
    }

    fn matmul_tn(&self, a: &Matrix, b: &Matrix, out: &mut Matrix) {
        // k-outer keeps both inputs row-major; per out element the
        // accumulation is a plain axpy sweep.
        for k in 0..a.rows() {
            let a_row = a.row(k);
            let b_row = b.row(k);
            for (i, &aki) in a_row.iter().enumerate() {
                if aki == 0.0 {
                    continue;
                }
                for (o, &bv) in out.row_mut(i).iter_mut().zip(b_row.iter()) {
                    *o += aki * bv;
                }
            }
        }
    }
}

static GLOBAL_BACKEND: RwLock<Option<Arc<dyn Backend>>> = RwLock::new(None);

/// The process-global default backend used by `Graph::new` (and therefore by
/// every entry point that does not build an explicit workspace). [`Scalar`]
/// until [`set_global_backend`] is called.
pub fn global_backend() -> Arc<dyn Backend> {
    GLOBAL_BACKEND
        .read()
        // analyze:allow(no-expect) -- a poisoned backend lock means a
        // panic mid-registration; propagating it is the only sane option.
        .expect("backend lock poisoned")
        .clone()
        .unwrap_or_else(|| Arc::new(Scalar))
}

/// Replaces the process-global default backend. Intended to be called once
/// at startup (the bench binaries' `--backend` flag); switching mid-run only
/// affects graphs created afterwards.
pub fn set_global_backend(backend: Arc<dyn Backend>) {
    // analyze:allow(no-expect) -- same poisoning policy as global_backend.
    *GLOBAL_BACKEND.write().expect("backend lock poisoned") = Some(backend);
}

/// Resolves a backend by its [`Backend::name`]; `None` for unknown names.
pub fn backend_by_name(name: &str) -> Option<Arc<dyn Backend>> {
    match name {
        "scalar" => Some(Arc::new(Scalar)),
        "blocked" => Some(Arc::new(Blocked)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    fn check_close(a: &Matrix, b: &Matrix, tol: f32) {
        assert_eq!(a.shape(), b.shape());
        for (x, y) in a.iter().zip(b.iter()) {
            let scale = x.abs().max(y.abs()).max(1.0);
            assert!((x - y).abs() <= tol * scale, "{x} vs {y}");
        }
    }

    #[test]
    fn scalar_matmul_is_bitwise_identical_to_matrix_matmul() {
        let mut r = rng::seeded(5);
        let a = rng::normal_matrix(&mut r, 7, 13, 1.0);
        let b = rng::normal_matrix(&mut r, 13, 9, 1.0);
        let mut out = Matrix::zeros(7, 9);
        Scalar.matmul(&a, &b, &mut out);
        assert_eq!(out, a.matmul(&b));
    }

    #[test]
    fn scalar_tn_matches_transpose_then_matmul_bitwise() {
        let mut r = rng::seeded(6);
        let a = rng::normal_matrix(&mut r, 11, 5, 1.0);
        let g = rng::normal_matrix(&mut r, 11, 8, 1.0);
        let mut out = Matrix::zeros(5, 8);
        Scalar.matmul_tn(&a, &g, &mut out);
        assert_eq!(out, a.transpose().matmul(&g));
    }

    #[test]
    fn scalar_nt_matches_matmul_transpose_bitwise() {
        let mut r = rng::seeded(7);
        let a = rng::normal_matrix(&mut r, 6, 10, 1.0);
        let b = rng::normal_matrix(&mut r, 4, 10, 1.0);
        let mut out = Matrix::zeros(6, 4);
        Scalar.matmul_nt(&a, &b, &mut out);
        assert_eq!(out, a.matmul_transpose(&b));
    }

    #[test]
    fn blocked_agrees_with_scalar_within_tolerance() {
        let mut r = rng::seeded(8);
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (5, 7, 3),
            (32, 65, 33),
            (17, 128, 64),
        ] {
            let a = rng::normal_matrix(&mut r, m, k, 1.0);
            let b = rng::normal_matrix(&mut r, k, n, 1.0);
            let mut s = Matrix::zeros(m, n);
            let mut bl = Matrix::zeros(m, n);
            Scalar.matmul(&a, &b, &mut s);
            Blocked.matmul(&a, &b, &mut bl);
            check_close(&s, &bl, 1e-4);

            let gt = rng::normal_matrix(&mut r, m, n, 1.0);
            let mut s_tn = Matrix::zeros(k, n);
            let mut b_tn = Matrix::zeros(k, n);
            Scalar.matmul_tn(&a, &gt, &mut s_tn);
            Blocked.matmul_tn(&a, &gt, &mut b_tn);
            check_close(&s_tn, &b_tn, 1e-4);

            // matmul_nt(gt, b) = gt · bᵀ: (m,n)·(n,k) → (m,k).
            let mut s_nt = Matrix::zeros(m, k);
            let mut b_nt = Matrix::zeros(m, k);
            Scalar.matmul_nt(&gt, &b, &mut s_nt);
            Blocked.matmul_nt(&gt, &b, &mut b_nt);
            check_close(&s_nt, &b_nt, 1e-4);
        }
    }

    #[test]
    fn blocked_handles_zero_heavy_inputs() {
        // The four-wide zero skip must not drop partial contributions.
        let mut a = Matrix::zeros(3, 6);
        a.set(0, 1, 2.0);
        a.set(2, 5, -1.5);
        let mut r = rng::seeded(9);
        let b = rng::normal_matrix(&mut r, 6, 4, 1.0);
        let mut s = Matrix::zeros(3, 4);
        let mut bl = Matrix::zeros(3, 4);
        Scalar.matmul(&a, &b, &mut s);
        Blocked.matmul(&a, &b, &mut bl);
        check_close(&s, &bl, 1e-6);
    }

    #[test]
    fn parallel_path_matches_serial() {
        // Big enough to cross PAR_MIN_FLOPS: 256·256·128 = 8.4M flops.
        let mut r = rng::seeded(10);
        let a = rng::normal_matrix(&mut r, 256, 256, 1.0);
        let b = rng::normal_matrix(&mut r, 256, 128, 1.0);
        let mut serial = Matrix::zeros(256, 128);
        let cols = serial.cols();
        blocked_matmul_rows(&a, &b, 0, serial.as_mut_slice(), cols);
        let mut par = Matrix::zeros(256, 128);
        Blocked.matmul(&a, &b, &mut par);
        assert_eq!(serial, par, "row partitioning must not change results");
    }

    #[test]
    fn global_backend_defaults_to_scalar_and_resolves_names() {
        assert_eq!(global_backend().name(), "scalar");
        assert_eq!(backend_by_name("blocked").unwrap().name(), "blocked");
        assert!(backend_by_name("gpu").is_none());
    }
}
