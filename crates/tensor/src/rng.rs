//! Seeded random-number helpers shared across the workspace.
//!
//! The `rand` crate in this workspace does not ship the `rand_distr` normal
//! distribution, so Gaussian sampling is implemented here via the Box–Muller
//! transform. Every experiment in the reproduction is seeded through these
//! helpers so that results are bit-reproducible across runs.

use crate::Matrix;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Creates a deterministic RNG from a 64-bit seed.
///
/// # Examples
///
/// ```
/// use rand::Rng;
/// let mut a = calibre_tensor::rng::seeded(42);
/// let mut b = calibre_tensor::rng::seeded(42);
/// assert_eq!(a.gen::<u64>(), b.gen::<u64>());
/// ```
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Draws one sample from the standard normal distribution `N(0, 1)` using the
/// Box–Muller transform.
pub fn normal<R: Rng + ?Sized>(rng: &mut R) -> f32 {
    // Avoid ln(0) by sampling u1 from the open interval (0, 1].
    let u1: f32 = 1.0 - rng.gen::<f32>();
    let u2: f32 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
}

/// Draws one sample from `N(mean, std²)`.
pub fn normal_with<R: Rng + ?Sized>(rng: &mut R, mean: f32, std: f32) -> f32 {
    mean + std * normal(rng)
}

/// Fills a vector with `n` i.i.d. standard normal samples.
pub fn normal_vec<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<f32> {
    (0..n).map(|_| normal(rng)).collect()
}

/// Matrix of i.i.d. samples from `N(0, std²)`.
pub fn normal_matrix<R: Rng + ?Sized>(rng: &mut R, rows: usize, cols: usize, std: f32) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| std * normal(rng)).collect(),
    )
}

/// Matrix of i.i.d. samples from the uniform distribution on `[lo, hi)`.
pub fn uniform_matrix<R: Rng + ?Sized>(
    rng: &mut R,
    rows: usize,
    cols: usize,
    lo: f32,
    hi: f32,
) -> Matrix {
    Matrix::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect(),
    )
}

/// Samples from a symmetric Dirichlet distribution with concentration
/// `alpha`, returning a probability vector of length `k`.
///
/// Implemented by normalizing `k` Gamma(alpha, 1) draws; the Gamma sampler
/// uses the Marsaglia–Tsang method (with the standard `alpha < 1` boost).
///
/// # Panics
///
/// Panics if `k == 0` or `alpha <= 0`.
pub fn dirichlet<R: Rng + ?Sized>(rng: &mut R, alpha: f64, k: usize) -> Vec<f64> {
    assert!(k > 0, "dirichlet requires at least one category");
    assert!(alpha > 0.0, "dirichlet concentration must be positive");
    let mut draws: Vec<f64> = (0..k).map(|_| gamma(rng, alpha)).collect();
    let sum: f64 = draws.iter().sum();
    if sum <= 0.0 {
        // Degenerate draw (possible for tiny alpha in f64): fall back to a
        // random one-hot vector, which is the correct alpha -> 0 limit.
        let hot = rng.gen_range(0..k);
        return (0..k).map(|i| if i == hot { 1.0 } else { 0.0 }).collect();
    }
    for d in &mut draws {
        *d /= sum;
    }
    draws
}

/// Samples Gamma(shape, 1) via Marsaglia–Tsang.
fn gamma<R: Rng + ?Sized>(rng: &mut R, shape: f64) -> f64 {
    if shape < 1.0 {
        // Boost: Gamma(a) = Gamma(a + 1) * U^{1/a}
        let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
        return gamma(rng, shape + 1.0) * u.powf(1.0 / shape);
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = normal(rng) as f64;
        let v = 1.0 + c * x;
        if v <= 0.0 {
            continue;
        }
        let v = v * v * v;
        let u: f64 = rng.gen();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Returns a random permutation of `0..n`, Fisher–Yates shuffled.
pub fn permutation<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..=i);
        idx.swap(i, j);
    }
    idx
}

/// Samples `k` distinct indices from `0..n` without replacement.
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_without_replacement<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} items from a population of {n}");
    let mut perm = permutation(rng, n);
    perm.truncate(k);
    perm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rngs_are_reproducible() {
        let a = normal_vec(&mut seeded(7), 16);
        let b = normal_vec(&mut seeded(7), 16);
        assert_eq!(a, b);
    }

    #[test]
    fn normal_has_roughly_standard_moments() {
        let mut rng = seeded(123);
        let n = 20_000;
        let samples = normal_vec(&mut rng, n);
        let mean: f32 = samples.iter().sum::<f32>() / n as f32;
        let var: f32 = samples.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        assert!(mean.abs() < 0.05, "mean {mean} too far from 0");
        assert!((var - 1.0).abs() < 0.05, "variance {var} too far from 1");
    }

    #[test]
    fn dirichlet_sums_to_one_and_is_nonnegative() {
        let mut rng = seeded(99);
        for &alpha in &[0.1, 0.3, 1.0, 10.0] {
            let p = dirichlet(&mut rng, alpha, 10);
            assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            assert!(p.iter().all(|&v| v >= 0.0));
        }
    }

    #[test]
    fn small_alpha_dirichlet_is_concentrated() {
        // With alpha = 0.05 the mass should mostly land on very few labels —
        // this is exactly how the D-non-i.i.d. partitioner induces skew.
        let mut rng = seeded(5);
        let p = dirichlet(&mut rng, 0.05, 10);
        let max = p.iter().cloned().fold(0.0, f64::max);
        assert!(max > 0.5, "expected concentration, got max {max}");
    }

    #[test]
    fn permutation_contains_every_index_once() {
        let mut rng = seeded(11);
        let mut p = permutation(&mut rng, 50);
        p.sort_unstable();
        assert_eq!(p, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_without_replacement_is_distinct() {
        let mut rng = seeded(12);
        let s = sample_without_replacement(&mut rng, 100, 10);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "duplicates in {s:?}");
    }

    #[test]
    fn uniform_matrix_respects_bounds() {
        let mut rng = seeded(3);
        let m = uniform_matrix(&mut rng, 8, 8, -2.0, 3.0);
        assert!(m.iter().all(|&v| (-2.0..3.0).contains(&v)));
    }
}
