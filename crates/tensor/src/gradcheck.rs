//! Finite-difference gradient checking.
//!
//! Every op in [`crate::Graph`] is validated against a central-difference
//! numerical gradient in the test suites. The checker rebuilds the graph for
//! each perturbed input via a user-supplied closure, so it works for any
//! composite expression, not just single ops.

use crate::{Graph, Matrix, Node};

/// Result of a gradient check: the largest absolute and relative deviation
/// between analytic and numerical gradients.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GradCheckReport {
    /// Largest absolute difference across all input elements.
    pub max_abs_err: f32,
    /// Largest relative difference (normalized by magnitudes + 1e-4).
    pub max_rel_err: f32,
}

impl GradCheckReport {
    /// Whether both error measures are below `tol`.
    pub fn passes(&self, tol: f32) -> bool {
        self.max_abs_err < tol || self.max_rel_err < tol
    }
}

/// Checks the analytic gradient of a scalar-valued function of one matrix
/// input against central finite differences.
///
/// `build` receives a fresh graph and the (possibly perturbed) input leaf and
/// must return the scalar output node.
///
/// # Panics
///
/// Panics if `build` returns a non-scalar node, or if the analytic backward
/// produced no gradient for the input (which would mean the input does not
/// influence the output — almost certainly a broken test).
pub fn check_gradient<F>(input: &Matrix, epsilon: f32, build: F) -> GradCheckReport
where
    F: Fn(&mut Graph, Node) -> Node,
{
    // Analytic gradient.
    let mut g = Graph::new();
    let x = g.leaf(input.clone());
    let out = build(&mut g, x);
    g.backward(out);
    let analytic = g
        .grad(x)
        // analyze:allow(no-expect) -- a gradient check on a graph where
        // the input cannot reach the output is a test-authoring error.
        .expect("input must influence the output for a gradient check")
        .clone();

    // Numerical gradient, element by element.
    let mut max_abs = 0.0f32;
    let mut max_rel = 0.0f32;
    for i in 0..input.len() {
        let eval = |delta: f32| -> f32 {
            let mut perturbed = input.clone();
            perturbed.as_mut_slice()[i] += delta;
            let mut g = Graph::new();
            let x = g.leaf(perturbed);
            let out = build(&mut g, x);
            assert_eq!(
                g.value(out).shape(),
                (1, 1),
                "gradcheck requires scalar output"
            );
            g.value(out).get(0, 0)
        };
        let numeric = (eval(epsilon) - eval(-epsilon)) / (2.0 * epsilon);
        let a = analytic.as_slice()[i];
        let abs = (a - numeric).abs();
        let rel = abs / (a.abs() + numeric.abs() + 1e-4);
        max_abs = max_abs.max(abs);
        max_rel = max_rel.max(rel);
    }
    GradCheckReport {
        max_abs_err: max_abs,
        max_rel_err: max_rel,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng;

    const EPS: f32 = 1e-2;
    const TOL: f32 = 2e-2;

    fn random_input(rows: usize, cols: usize, seed: u64) -> Matrix {
        rng::normal_matrix(&mut rng::seeded(seed), rows, cols, 1.0)
    }

    #[test]
    fn matmul_gradient() {
        let x = random_input(3, 4, 1);
        let w = random_input(4, 2, 2);
        let report = check_gradient(&x, EPS, |g, xn| {
            let wn = g.constant(w.clone());
            let y = g.matmul(xn, wn);
            let sq = g.mul(y, y);
            g.mean_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn relu_gradient() {
        // Offset inputs away from the kink at 0 where FD is invalid.
        let x = random_input(4, 4, 3).map(|v| if v.abs() < 0.1 { v + 0.3 } else { v });
        let report = check_gradient(&x, 1e-3, |g, xn| {
            let y = g.relu(xn);
            g.mean_all(y)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn tanh_exp_log_chain_gradient() {
        let x = random_input(2, 3, 4).map(|v| v.abs() + 0.5);
        let report = check_gradient(&x, 1e-3, |g, xn| {
            let t = g.tanh(xn);
            let e = g.exp(t);
            let l = g.log(e);
            g.mean_all(l)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn row_l2_normalize_gradient() {
        let x = random_input(3, 5, 5).map(|v| v + 2.0); // keep norms well away from 0
        let w = random_input(5, 1, 6);
        let report = check_gradient(&x, 1e-3, |g, xn| {
            let n = g.row_l2_normalize(xn);
            let wn = g.constant(w.clone());
            let y = g.matmul(n, wn);
            g.mean_all(y)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn row_sum_sq_gradient() {
        let x = random_input(4, 3, 7);
        let report = check_gradient(&x, 1e-3, |g, xn| {
            let s = g.row_sum_sq(xn);
            g.mean_all(s)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn layer_norm_gradient() {
        let x = random_input(3, 6, 20);
        let w = random_input(6, 2, 21);
        let report = check_gradient(&x, 1e-3, |g, xn| {
            let y = g.layer_norm(xn);
            let wn = g.constant(w.clone());
            let out = g.matmul(y, wn);
            let sq = g.mul(out, out);
            g.mean_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn cross_entropy_gradient() {
        let x = random_input(5, 4, 8);
        let targets = vec![0, 3, 1, 2, 2];
        let report = check_gradient(&x, 1e-3, |g, xn| g.cross_entropy(xn, &targets));
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn cross_entropy_soft_gradient() {
        let x = random_input(3, 4, 9);
        let t = Matrix::from_rows(&[
            vec![0.7, 0.1, 0.1, 0.1],
            vec![0.25, 0.25, 0.25, 0.25],
            vec![0.0, 0.0, 1.0, 0.0],
        ]);
        let report = check_gradient(&x, 1e-3, |g, xn| g.cross_entropy_soft(xn, t.clone()));
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn group_mean_rows_gradient() {
        let x = random_input(6, 3, 10);
        let assign = vec![0, 1, 0, 2, 1, 0];
        let report = check_gradient(&x, 1e-3, |g, xn| {
            let c = g.group_mean_rows(xn, &assign, 3);
            let sq = g.mul(c, c);
            g.mean_all(sq)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn nt_xent_style_composite_gradient() {
        // The exact computational pattern of the NT-Xent loss: normalize,
        // similarity matrix, diagonal mask, cross entropy with partners.
        let x = random_input(6, 4, 11);
        let targets = vec![3, 4, 5, 0, 1, 2]; // partner pairing for N = 3
        let report = check_gradient(&x, 1e-3, |g, xn| {
            let h = g.row_l2_normalize(xn);
            let ht = g.transpose(h);
            let sims = g.matmul(h, ht);
            let scaled = g.scale(sims, 1.0 / 0.5);
            let masked = g.mask_diagonal(scaled, -1e9);
            g.cross_entropy(masked, &targets)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn prototype_distance_composite_gradient() {
        // The L_n pattern: squared distances to constant prototypes via the
        // ||z||² − 2·z·vᵀ + ||v||² expansion, then cross entropy.
        let z = random_input(5, 3, 12);
        let protos = random_input(2, 3, 13);
        let assign = vec![0, 1, 0, 1, 0];
        let report = check_gradient(&z, 1e-3, |g, zn| {
            let v = g.constant(protos.clone());
            let vt = g.transpose(v);
            let cross = g.matmul(zn, vt);
            let neg2cross = g.scale(cross, -2.0);
            let z_sq = g.row_sum_sq(zn);
            let with_z = g.add_col(neg2cross, z_sq);
            let v_sq_row = g.constant(protos.row_sum_sq().transpose());
            let dist_sq = g.add_row(with_z, v_sq_row);
            let neg = g.scale(dist_sq, -1.0);
            g.cross_entropy(neg, &assign)
        });
        assert!(report.passes(TOL), "{report:?}");
    }

    #[test]
    fn report_passes_uses_either_bound() {
        let r = GradCheckReport {
            max_abs_err: 10.0,
            max_rel_err: 1e-6,
        };
        assert!(r.passes(1e-3));
        let r2 = GradCheckReport {
            max_abs_err: 1e-7,
            max_rel_err: 0.5,
        };
        assert!(r2.passes(1e-3));
        let r3 = GradCheckReport {
            max_abs_err: 1.0,
            max_rel_err: 1.0,
        };
        assert!(!r3.passes(1e-3));
    }
}
