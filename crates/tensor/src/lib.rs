//! # calibre-tensor
//!
//! Minimal 2-D tensor library with tape-based reverse-mode autograd, built as
//! the numerical substrate for the Calibre personalized-federated-learning
//! reproduction (ICDCS 2024).
//!
//! **Role in Algorithm 1:** substrate for *both* stages — the federated
//! training stage differentiates SSL + calibration losses through this tape,
//! and the personalization stage trains its per-client linear probe with the
//! same autograd and [`optim::Sgd`] optimizer.
//!
//! The crate provides exactly what the reproduction needs and nothing more:
//!
//! - [`Matrix`] — dense row-major `f32` matrix with the linear-algebra
//!   helpers used across the workspace.
//! - [`Graph`] / [`Node`] — a reusable autodiff tape covering dense
//!   layers, contrastive-loss plumbing (row normalization, diagonal masking,
//!   fused cross-entropies) and the prototype machinery (grouped row means,
//!   gathers/concats). Tapes recycle their buffers across steps through a
//!   [`pool::StepArena`].
//! - [`backend`] — the pluggable execution seam: every dense kernel
//!   dispatches through a [`backend::Backend`] ([`backend::Scalar`] is the
//!   bit-exact reference, [`backend::Blocked`] the cache-tiled, row-parallel
//!   fast path), selected once per run via
//!   [`backend::set_global_backend`].
//! - [`pool`] — [`pool::BufferPool`] / [`pool::Workspace`] /
//!   [`pool::StepArena`]: size-keyed buffer recycling so a local update of
//!   E epochs reuses one arena instead of allocating fresh tapes per step.
//! - [`nn`] — [`nn::Linear`] / [`nn::Mlp`] modules with parameter
//!   flattening for federated aggregation, plus EMA updates for momentum
//!   encoders.
//! - [`optim`] — SGD with momentum, weight decay and gradient clipping.
//! - [`rng`] — seeded randomness, Box–Muller normals and Dirichlet draws
//!   (the non-i.i.d. partitioners depend on these).
//! - [`gradcheck`] — finite-difference gradient verification used heavily by
//!   the test suite.
//!
//! # Example: one training step
//!
//! ```
//! use calibre_tensor::{Graph, Matrix, rng};
//! use calibre_tensor::nn::{Mlp, Activation, Binding, Module, gradients};
//! use calibre_tensor::optim::{Sgd, SgdConfig};
//!
//! let mut r = rng::seeded(7);
//! let mut model = Mlp::new(&[4, 16, 3], Activation::Relu, &mut r);
//! let x = rng::normal_matrix(&mut r, 8, 4, 1.0);
//! let targets = vec![0, 1, 2, 0, 1, 2, 0, 1];
//!
//! let mut g = Graph::new();
//! let xn = g.constant(x);
//! let mut binding = Binding::new();
//! let logits = model.forward(&mut g, xn, &mut binding);
//! let loss = g.cross_entropy(logits, &targets);
//! g.backward(loss);
//!
//! let grads = gradients(&g, &binding);
//! let mut opt = Sgd::new(SgdConfig::with_lr(0.1));
//! opt.step(&mut model, &grads);
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod graph;
mod matrix;

pub mod backend;
pub mod conv;
pub mod gradcheck;
pub mod nn;
pub mod optim;
pub mod pool;
pub mod rng;

pub use graph::{Graph, Node};
pub use matrix::Matrix;
pub use pool::{StepArena, Workspace};
