//! Buffer recycling for the training hot path.
//!
//! A fresh [`crate::Graph`] allocates a new `Vec<f32>` for every op output,
//! every cached softmax and every gradient — across a local update of E
//! epochs × B batches that is thousands of short-lived heap allocations per
//! client per round. The types here let one tape be recycled across steps:
//!
//! - [`BufferPool`] — size-keyed free lists of raw `f32` storage with
//!   checkout/hit/miss counters.
//! - [`Workspace`] — a pool plus the [`Backend`] the graph's kernels
//!   dispatch through; owned by each `Graph`.
//! - [`StepArena`] — the step-loop handle: `take()` a graph, build and
//!   differentiate the step on it, `put()` it back (which resets the tape
//!   and reclaims every buffer into the pool).
//!
//! After the first step of a loop has populated the free lists, subsequent
//! steps of the same shapes are served almost entirely from the pool — the
//! arena tests assert a ≥5× hit:miss ratio, and the local-update loops
//! report the counters through the `arena` telemetry span.

use crate::backend::{global_backend, Backend};
use crate::{Graph, Matrix};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Counters describing pool behaviour since creation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out (hits + misses).
    pub checkouts: u64,
    /// Checkouts served from a free list (no heap allocation).
    pub hits: u64,
    /// Checkouts that had to allocate fresh storage.
    pub misses: u64,
    /// Total bytes served from recycled buffers.
    pub recycled_bytes: u64,
}

/// Size-keyed free lists of `f32` buffers.
///
/// Buffers are keyed by exact element count: training steps repeat the same
/// shapes every iteration, so exact-size reuse hits ~100% from the second
/// step on without any wasted slack.
#[derive(Debug, Default)]
pub struct BufferPool {
    free: BTreeMap<usize, Vec<Vec<f32>>>,
    stats: PoolStats,
}

impl BufferPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        BufferPool::default()
    }

    /// Checks out a buffer of exactly `len` elements. Contents are
    /// unspecified (recycled buffers keep stale values); callers either
    /// overwrite fully or use [`BufferPool::checkout_zeroed`].
    pub fn checkout(&mut self, len: usize) -> Vec<f32> {
        if len == 0 {
            return Vec::new();
        }
        self.stats.checkouts += 1;
        if let Some(buf) = self.free.get_mut(&len).and_then(Vec::pop) {
            self.stats.hits += 1;
            self.stats.recycled_bytes += (len * std::mem::size_of::<f32>()) as u64;
            buf
        } else {
            self.stats.misses += 1;
            vec![0.0; len]
        }
    }

    /// Checks out a buffer of `len` zeros.
    pub fn checkout_zeroed(&mut self, len: usize) -> Vec<f32> {
        let mut buf = self.checkout(len);
        buf.fill(0.0);
        buf
    }

    /// Returns a buffer to the pool for reuse.
    pub fn give(&mut self, buf: Vec<f32>) {
        if !buf.is_empty() {
            self.free.entry(buf.len()).or_default().push(buf);
        }
    }

    /// Counters since creation.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// Drops all pooled buffers (counters are kept).
    pub fn clear(&mut self) {
        self.free.clear();
    }
}

/// The execution context of one tape: the [`Backend`] its kernels dispatch
/// through plus the [`BufferPool`] its op outputs are drawn from.
///
/// Each `Graph` owns a workspace, so parallel client threads in the
/// federated runtime each work against private pools and never contend.
#[derive(Debug)]
pub struct Workspace {
    backend: Arc<dyn Backend>,
    pool: BufferPool,
}

impl Default for Workspace {
    fn default() -> Self {
        Workspace::new()
    }
}

impl Workspace {
    /// A workspace on the process-global backend (see
    /// [`crate::backend::global_backend`]).
    pub fn new() -> Self {
        Workspace::with_backend(global_backend())
    }

    /// A workspace on an explicit backend, independent of the global choice.
    pub fn with_backend(backend: Arc<dyn Backend>) -> Self {
        Workspace {
            backend,
            pool: BufferPool::new(),
        }
    }

    /// The backend kernels dispatch through.
    pub fn backend(&self) -> &Arc<dyn Backend> {
        &self.backend
    }

    /// Pool counters since creation.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// A pooled `(rows, cols)` matrix of zeros.
    pub fn alloc_zeros(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.pool.checkout_zeroed(rows * cols))
    }

    /// A pooled `(rows, cols)` matrix with *unspecified* contents (recycled
    /// buffers keep stale values). Only for kernels that overwrite every
    /// element before reading.
    pub fn alloc_uninit(&mut self, rows: usize, cols: usize) -> Matrix {
        Matrix::from_vec(rows, cols, self.pool.checkout(rows * cols))
    }

    /// A pooled `(rows, cols)` matrix filled with `value`.
    pub fn alloc_full(&mut self, rows: usize, cols: usize, value: f32) -> Matrix {
        let mut buf = self.pool.checkout(rows * cols);
        buf.fill(value);
        Matrix::from_vec(rows, cols, buf)
    }

    /// A pooled copy of `src`.
    pub fn alloc_copy(&mut self, src: &Matrix) -> Matrix {
        let mut buf = self.pool.checkout(src.len());
        buf.copy_from_slice(src.as_slice());
        Matrix::from_vec(src.rows(), src.cols(), buf)
    }

    /// Returns a matrix's storage to the pool.
    pub fn reclaim(&mut self, m: Matrix) {
        self.pool.give(m.into_vec());
    }
}

/// Recycles one [`Graph`] across the steps of a training loop.
///
/// # Examples
///
/// ```
/// use calibre_tensor::pool::StepArena;
/// use calibre_tensor::Matrix;
///
/// let mut arena = StepArena::new();
/// for step in 0..3 {
///     let mut g = arena.take();
///     let x = g.leaf(Matrix::full(2, 2, step as f32));
///     let loss = g.mean_all(x);
///     g.backward(loss);
///     arena.put(g);
/// }
/// let stats = arena.stats().unwrap();
/// assert!(stats.hits > 0, "later steps reuse the first step's buffers");
/// ```
#[derive(Debug, Default)]
pub struct StepArena {
    slot: Option<Graph>,
}

impl StepArena {
    /// An arena whose first [`StepArena::take`] builds a graph on the
    /// global backend.
    pub fn new() -> Self {
        StepArena { slot: None }
    }

    /// An arena seeded with a graph on an explicit workspace.
    pub fn with_workspace(ws: Workspace) -> Self {
        StepArena {
            slot: Some(Graph::with_workspace(ws)),
        }
    }

    /// Takes the recycled graph out (or creates a fresh one on first use).
    pub fn take(&mut self) -> Graph {
        self.slot.take().unwrap_or_default()
    }

    /// Resets a graph (reclaiming every buffer into its pool) and stores it
    /// for the next [`StepArena::take`].
    pub fn put(&mut self, mut g: Graph) {
        g.reset();
        self.slot = Some(g);
    }

    /// Pool counters of the stored graph; `None` while a graph is checked
    /// out (or before first use).
    pub fn stats(&self) -> Option<PoolStats> {
        self.slot.as_ref().map(|g| g.pool_stats())
    }
}

/// Reports arena pool counters through the `arena` telemetry span so the
/// allocation behaviour of a local update shows up in profiles: `items` is
/// the number of checkouts, `bytes` the bytes served from recycled buffers.
pub fn report_arena_stats(arena: &StepArena) {
    if let Some(stats) = arena.stats() {
        let span = calibre_telemetry::span("arena");
        span.add_items(stats.checkouts);
        span.add_bytes(stats.recycled_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checkout_miss_then_hit() {
        let mut pool = BufferPool::new();
        let a = pool.checkout_zeroed(16);
        assert_eq!(pool.stats().misses, 1);
        pool.give(a);
        let b = pool.checkout_zeroed(16);
        assert_eq!(b.len(), 16);
        assert!(b.iter().all(|&v| v == 0.0));
        let stats = pool.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.checkouts, 2);
        assert_eq!(stats.recycled_bytes, 64);
    }

    #[test]
    fn different_sizes_do_not_alias() {
        let mut pool = BufferPool::new();
        pool.give(vec![1.0; 8]);
        let b = pool.checkout(4);
        assert_eq!(b.len(), 4);
        assert_eq!(pool.stats().misses, 1, "8-element buffer cannot serve 4");
    }

    #[test]
    fn zero_length_checkouts_bypass_counters() {
        let mut pool = BufferPool::new();
        let b = pool.checkout(0);
        assert!(b.is_empty());
        pool.give(b);
        assert_eq!(pool.stats(), PoolStats::default());
    }

    #[test]
    fn workspace_alloc_shapes_and_reclaim() {
        let mut ws = Workspace::new();
        let z = ws.alloc_zeros(2, 3);
        assert_eq!(z.shape(), (2, 3));
        let f = ws.alloc_full(1, 4, 2.5);
        assert!(f.iter().all(|&v| v == 2.5));
        let c = ws.alloc_copy(&f);
        assert_eq!(c, f);
        ws.reclaim(z);
        ws.reclaim(f);
        ws.reclaim(c);
        let again = ws.alloc_zeros(2, 3);
        assert!(again.iter().all(|&v| v == 0.0), "recycled buffer re-zeroed");
        assert!(ws.pool_stats().hits >= 1);
    }

    #[test]
    fn arena_steps_hit_the_pool_after_warmup() {
        let mut arena = StepArena::new();
        for _ in 0..8 {
            let mut g = arena.take();
            let x = g.leaf(Matrix::full(4, 4, 1.0));
            let y = g.relu(x);
            let loss = g.mean_all(y);
            g.backward(loss);
            arena.put(g);
        }
        let stats = arena.stats().expect("graph stored");
        assert!(
            stats.hits >= 5 * stats.misses,
            "expected ≥5× hit:miss after 8 identical steps, got {stats:?}"
        );
    }
}
