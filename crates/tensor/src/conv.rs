//! 2-D convolution on the autograd tape, via im2col.
//!
//! The reproduction's default encoder is an MLP (fast enough for the
//! CPU-scale experiment harness), but the substrate also supports proper
//! convolutional encoders over the synthetic observations interpreted as
//! `H × W × C` grids — the closer analog of the paper's ResNet-18. The
//! building blocks are:
//!
//! - [`Graph::im2col`] / [`Graph::reshape`] tape ops (this module adds the
//!   layer types on top of them);
//! - [`Conv2d`]: one convolution layer (+ bias), `y = im2col(x) · W + b`;
//! - [`ConvNet`]: a small conv → conv → linear encoder with the same
//!   [`Module`] interface as [`Mlp`], so it drops into every federated
//!   aggregation path unchanged.
//!
//! Data layout: images are flattened **channel-last**, i.e. the value at
//! `(y, x, c)` lives at index `(y * width + x) * channels + c`; a batch is
//! an `(N, H·W·C)` matrix. A conv layer's output is again channel-last with
//! its own spatial size, so layers chain without explicit transposition.
//!
//! [`Mlp`]: crate::nn::Mlp

use crate::nn::{Activation, Binding, Linear, Module};
use crate::rng::normal_matrix;
use crate::{Graph, Matrix, Node};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Spatial description of a channel-last image batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ImageShape {
    /// Image height.
    pub height: usize,
    /// Image width.
    pub width: usize,
    /// Channels.
    pub channels: usize,
}

impl ImageShape {
    /// Creates a shape.
    pub fn new(height: usize, width: usize, channels: usize) -> Self {
        ImageShape {
            height,
            width,
            channels,
        }
    }

    /// Flattened length of one image.
    pub fn len(&self) -> usize {
        self.height * self.width * self.channels
    }

    /// Whether the shape is degenerate.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Output spatial shape after a valid (no-padding) `k × k` convolution
    /// with the given stride.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit or the stride is zero.
    pub fn conv_output(&self, kernel: usize, stride: usize, out_channels: usize) -> ImageShape {
        assert!(stride > 0, "stride must be positive");
        assert!(
            kernel <= self.height && kernel <= self.width,
            "kernel {kernel} larger than image {}x{}",
            self.height,
            self.width
        );
        ImageShape {
            height: (self.height - kernel) / stride + 1,
            width: (self.width - kernel) / stride + 1,
            channels: out_channels,
        }
    }
}

/// One 2-D convolution layer (valid padding) over channel-last images.
///
/// Weights are stored as a `(kernel·kernel·in_channels, out_channels)`
/// matrix so the convolution is exactly `im2col(x) · W + b`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Conv2d {
    weight: Matrix,
    bias: Matrix,
    input_shape: ImageShape,
    kernel: usize,
    stride: usize,
    out_channels: usize,
}

impl Conv2d {
    /// Creates a layer with Kaiming-style initialization.
    ///
    /// # Panics
    ///
    /// Panics if the kernel does not fit in the input or the stride is zero.
    pub fn new<R: Rng + ?Sized>(
        input_shape: ImageShape,
        kernel: usize,
        stride: usize,
        out_channels: usize,
        rng: &mut R,
    ) -> Self {
        // Validates kernel/stride.
        let _ = input_shape.conv_output(kernel, stride, out_channels);
        let patch = kernel * kernel * input_shape.channels;
        let std = (2.0 / patch as f32).sqrt();
        Conv2d {
            weight: normal_matrix(rng, patch, out_channels, std),
            bias: Matrix::zeros(1, out_channels),
            input_shape,
            kernel,
            stride,
            out_channels,
        }
    }

    /// The layer's output shape.
    pub fn output_shape(&self) -> ImageShape {
        self.input_shape
            .conv_output(self.kernel, self.stride, self.out_channels)
    }

    /// The layer's input shape.
    pub fn input_shape(&self) -> ImageShape {
        self.input_shape
    }

    /// Differentiable forward pass over an `(N, H·W·C)` node; returns an
    /// `(N, OH·OW·K)` node.
    pub fn forward(&self, g: &mut Graph, x: Node, binding: &mut Binding) -> Node {
        let span = calibre_telemetry::span("conv_forward");
        let n = g.value(x).rows();
        span.add_items(n as u64);
        let out = self.output_shape();
        let w = g.leaf(self.weight.clone());
        let b = g.leaf(self.bias.clone());
        binding.push(w);
        binding.push(b);
        let patches = g.im2col(x, self.input_shape, self.kernel, self.stride);
        let conv = g.matmul(patches, w);
        let with_bias = g.add_row(conv, b);
        g.reshape(with_bias, n, out.len())
    }

    /// Inference forward pass on plain matrices.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let n = x.rows();
        let out = self.output_shape();
        let patches = im2col_matrix(x, self.input_shape, self.kernel, self.stride);
        let mut conv = patches.matmul(&self.weight).add_row_vec(&self.bias);
        conv = Matrix::from_vec(n, out.len(), conv.into_vec());
        conv
    }
}

impl Module for Conv2d {
    fn parameters(&self) -> Vec<&Matrix> {
        vec![&self.weight, &self.bias]
    }

    fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        vec![&mut self.weight, &mut self.bias]
    }
}

/// A small convolutional encoder: `conv → ReLU → conv → ReLU → linear`,
/// with the same [`Module`] interface as the MLP encoder so it drops into
/// the federated plumbing (flattening, aggregation, EMA) unchanged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConvNet {
    conv1: Conv2d,
    conv2: Conv2d,
    head: Linear,
}

impl ConvNet {
    /// Builds an encoder for `input` images producing `output_dim`
    /// features: `conv(k3, c1) → ReLU → conv(k3, stride 2, c2) → ReLU →
    /// linear`.
    ///
    /// # Panics
    ///
    /// Panics if the image is too small for two 3×3 convolutions.
    pub fn new<R: Rng + ?Sized>(
        input: ImageShape,
        channels1: usize,
        channels2: usize,
        output_dim: usize,
        rng: &mut R,
    ) -> Self {
        let conv1 = Conv2d::new(input, 3, 1, channels1, rng);
        let conv2 = Conv2d::new(conv1.output_shape(), 3, 2, channels2, rng);
        let head = Linear::new(conv2.output_shape().len(), output_dim, rng);
        ConvNet { conv1, conv2, head }
    }

    /// Input dimensionality (flattened image length).
    pub fn input_dim(&self) -> usize {
        self.conv1.input_shape().len()
    }

    /// Output feature dimensionality.
    pub fn output_dim(&self) -> usize {
        self.head.output_dim()
    }

    /// Differentiable forward pass.
    pub fn forward(&self, g: &mut Graph, x: Node, binding: &mut Binding) -> Node {
        let h1 = self.conv1.forward(g, x, binding);
        let h1 = g.relu(h1);
        let h2 = self.conv2.forward(g, h1, binding);
        let h2 = g.relu(h2);
        self.head.forward(g, h2, binding)
    }

    /// Inference forward pass on plain matrices.
    pub fn infer(&self, x: &Matrix) -> Matrix {
        let h1 = Activation::Relu.apply_matrix(&self.conv1.infer(x));
        let h2 = Activation::Relu.apply_matrix(&self.conv2.infer(&h1));
        self.head.infer(&h2)
    }
}

impl Module for ConvNet {
    fn parameters(&self) -> Vec<&Matrix> {
        let mut p = self.conv1.parameters();
        p.extend(self.conv2.parameters());
        p.extend(self.head.parameters());
        p
    }

    fn parameters_mut(&mut self) -> Vec<&mut Matrix> {
        let mut p = self.conv1.parameters_mut();
        p.extend(self.conv2.parameters_mut());
        p.extend(self.head.parameters_mut());
        p
    }
}

/// Plain-matrix im2col used by both the tape op and the inference path.
pub(crate) fn im2col_matrix(
    input: &Matrix,
    shape: ImageShape,
    kernel: usize,
    stride: usize,
) -> Matrix {
    assert_eq!(
        input.cols(),
        shape.len(),
        "input width {} does not match image shape {:?}",
        input.cols(),
        shape
    );
    let out = shape.conv_output(kernel, stride, 1);
    let patch_len = kernel * kernel * shape.channels;
    let mut patches = Matrix::zeros(input.rows() * out.height * out.width, patch_len);
    let mut row = 0;
    for n in 0..input.rows() {
        let img = input.row(n);
        for oy in 0..out.height {
            for ox in 0..out.width {
                let dst = patches.row_mut(row);
                let mut i = 0;
                for ky in 0..kernel {
                    let y = oy * stride + ky;
                    for kx in 0..kernel {
                        let x = ox * stride + kx;
                        let src = (y * shape.width + x) * shape.channels;
                        dst[i..i + shape.channels].copy_from_slice(&img[src..src + shape.channels]);
                        i += shape.channels;
                    }
                }
                row += 1;
            }
        }
    }
    patches
}

/// Scatter-add of patch gradients back to image positions (col2im).
pub(crate) fn col2im_matrix(
    grad_patches: &Matrix,
    rows: usize,
    shape: ImageShape,
    kernel: usize,
    stride: usize,
) -> Matrix {
    let out = shape.conv_output(kernel, stride, 1);
    let mut grad_input = Matrix::zeros(rows, shape.len());
    let mut row = 0;
    for n in 0..rows {
        for oy in 0..out.height {
            for ox in 0..out.width {
                let src = grad_patches.row(row);
                let dst = grad_input.row_mut(n);
                let mut i = 0;
                for ky in 0..kernel {
                    let y = oy * stride + ky;
                    for kx in 0..kernel {
                        let x = ox * stride + kx;
                        let d = (y * shape.width + x) * shape.channels;
                        for c in 0..shape.channels {
                            dst[d + c] += src[i + c];
                        }
                        i += shape.channels;
                    }
                }
                row += 1;
            }
        }
    }
    grad_input
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::check_gradient;
    use crate::nn::gradients;
    use crate::optim::{Sgd, SgdConfig};
    use crate::rng;

    const SHAPE: ImageShape = ImageShape {
        height: 8,
        width: 8,
        channels: 1,
    };

    #[test]
    fn image_shape_conv_arithmetic() {
        let s = ImageShape::new(8, 8, 3);
        let o = s.conv_output(3, 1, 16);
        assert_eq!((o.height, o.width, o.channels), (6, 6, 16));
        let o2 = o.conv_output(3, 2, 4);
        assert_eq!((o2.height, o2.width), (2, 2));
    }

    #[test]
    fn im2col_extracts_expected_patches() {
        // 3x3 single-channel image, 2x2 kernel, stride 1 → 4 patches.
        let img = Matrix::from_rows(&[vec![
            1.0, 2.0, 3.0, //
            4.0, 5.0, 6.0, //
            7.0, 8.0, 9.0,
        ]]);
        let shape = ImageShape::new(3, 3, 1);
        let patches = im2col_matrix(&img, shape, 2, 1);
        assert_eq!(patches.shape(), (4, 4));
        assert_eq!(patches.row(0), &[1.0, 2.0, 4.0, 5.0]);
        assert_eq!(patches.row(1), &[2.0, 3.0, 5.0, 6.0]);
        assert_eq!(patches.row(2), &[4.0, 5.0, 7.0, 8.0]);
        assert_eq!(patches.row(3), &[5.0, 6.0, 8.0, 9.0]);
    }

    #[test]
    fn col2im_accumulates_overlaps() {
        // With stride 1 the center pixel of a 3x3 image appears in all four
        // 2x2 patches.
        let shape = ImageShape::new(3, 3, 1);
        let ones = Matrix::full(4, 4, 1.0);
        let back = col2im_matrix(&ones, 1, shape, 2, 1);
        assert_eq!(back.get(0, 4), 4.0, "center pixel gets 4 contributions");
        assert_eq!(back.get(0, 0), 1.0, "corner pixel gets 1");
    }

    #[test]
    fn conv_matches_hand_convolution() {
        // Identity-like kernel: picks the top-left pixel of each patch.
        let mut r = rng::seeded(0);
        let mut layer = Conv2d::new(ImageShape::new(3, 3, 1), 2, 1, 1, &mut r);
        let mut w = Matrix::zeros(4, 1);
        w.set(0, 0, 1.0);
        *layer.parameters_mut()[0] = w;
        let img = Matrix::from_rows(&[vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0]]);
        let out = layer.infer(&img);
        assert_eq!(out.row(0), &[1.0, 2.0, 4.0, 5.0]);
    }

    #[test]
    fn graph_forward_matches_infer() {
        let mut r = rng::seeded(1);
        let net = ConvNet::new(SHAPE, 4, 8, 16, &mut r);
        let x = rng::normal_matrix(&mut r, 3, SHAPE.len(), 1.0);
        let infer = net.infer(&x);
        let mut g = Graph::new();
        let xn = g.constant(x);
        let mut binding = Binding::new();
        let out = net.forward(&mut g, xn, &mut binding);
        assert_eq!(g.value(out).shape(), (3, 16));
        for (a, b) in infer.iter().zip(g.value(out).iter()) {
            assert!((a - b).abs() < 1e-4);
        }
        assert_eq!(binding.len(), net.parameters().len());
    }

    #[test]
    fn conv_gradient_matches_finite_differences() {
        let mut r = rng::seeded(2);
        let layer = Conv2d::new(ImageShape::new(4, 4, 1), 3, 1, 2, &mut r);
        let x = rng::normal_matrix(&mut r, 2, 16, 1.0);
        let report = check_gradient(&x, 1e-3, |g, xn| {
            let mut binding = Binding::new();
            let y = layer.forward(g, xn, &mut binding);
            let sq = g.mul(y, y);
            g.mean_all(sq)
        });
        assert!(report.passes(2e-2), "{report:?}");
    }

    #[test]
    fn convnet_trains_on_a_small_classification_task() {
        // Two texture classes: vertical vs horizontal stripes + noise.
        let mut r = rng::seeded(3);
        let n_per = 24;
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for class in 0..2usize {
            for _ in 0..n_per {
                let mut img = vec![0.0f32; 64];
                for y in 0..8 {
                    for x in 0..8 {
                        let stripe = if class == 0 { x % 2 } else { y % 2 };
                        img[y * 8 + x] = stripe as f32 + 0.3 * crate::rng::normal(&mut r);
                    }
                }
                rows.push(img);
                labels.push(class);
            }
        }
        let x = Matrix::from_rows(&rows);

        let mut net = ConvNet::new(SHAPE, 4, 8, 2, &mut r);
        let mut opt = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
        let accuracy = |net: &ConvNet| -> f32 {
            let logits = net.infer(&x);
            (0..logits.rows())
                .filter(|&i| {
                    let row = logits.row(i);
                    (row[1] > row[0]) == (labels[i] == 1)
                })
                .count() as f32
                / labels.len() as f32
        };
        let before = accuracy(&net);
        for _ in 0..30 {
            let mut g = Graph::new();
            let xn = g.constant(x.clone());
            let mut binding = Binding::new();
            let logits = net.forward(&mut g, xn, &mut binding);
            let loss = g.cross_entropy(logits, &labels);
            g.backward(loss);
            let grads = gradients(&g, &binding);
            opt.step(&mut net, &grads);
        }
        let after = accuracy(&net);
        assert!(
            after > 0.9 && after > before,
            "conv net should learn stripes: {before} -> {after}"
        );
    }

    #[test]
    fn convnet_flat_roundtrip() {
        let mut r = rng::seeded(4);
        let net = ConvNet::new(SHAPE, 4, 8, 16, &mut r);
        let mut other = ConvNet::new(SHAPE, 4, 8, 16, &mut r);
        assert_ne!(net.to_flat(), other.to_flat());
        other.load_flat(&net.to_flat());
        assert_eq!(net.to_flat(), other.to_flat());
    }

    #[test]
    #[should_panic(expected = "kernel")]
    fn oversized_kernel_rejected() {
        let mut r = rng::seeded(5);
        let _ = Conv2d::new(ImageShape::new(2, 2, 1), 3, 1, 4, &mut r);
    }
}
