//! Dense row-major 2-D matrix of `f32` — the storage type underneath every
//! tensor-graph node, model parameter and dataset in this workspace.
//!
//! The matrix is deliberately small and predictable: no views, no strides, no
//! broadcasting rules beyond the explicit `add_row_vec` / `add_col_vec`
//! helpers. All shape mismatches panic with a descriptive message, because in
//! this workspace a shape mismatch is always a programming error, never a
//! runtime condition to recover from.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A dense, row-major matrix of `f32` values.
///
/// `Matrix` is the plain-data workhorse of the workspace: autograd nodes hold
/// one, neural-network parameters are one, datasets are collections of row
/// slices of one.
///
/// # Examples
///
/// ```
/// use calibre_tensor::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
/// assert_eq!(m.shape(), (2, 2));
/// assert_eq!(m.get(1, 0), 3.0);
/// ```
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})[", self.rows, self.cols)?;
        let max_show = 8;
        for (i, v) in self.data.iter().take(max_show).enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > max_show {
            write!(f, ", …")?;
        }
        write!(f, "]")
    }
}

impl Default for Matrix {
    fn default() -> Self {
        Matrix::zeros(0, 0)
    }
}

impl Matrix {
    /// Creates a matrix filled with zeros.
    ///
    /// # Examples
    ///
    /// ```
    /// let z = calibre_tensor::Matrix::zeros(2, 3);
    /// assert_eq!(z.shape(), (2, 3));
    /// assert!(z.iter().all(|&v| v == 0.0));
    /// ```
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates a matrix filled with a constant value.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Creates a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "matrix data length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Matrix { rows, cols, data }
    }

    /// Creates a matrix from a slice of row vectors.
    ///
    /// # Panics
    ///
    /// Panics if the rows do not all have the same length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for (i, r) in rows.iter().enumerate() {
            assert_eq!(
                r.len(),
                cols,
                "row {i} has length {} expected {cols}",
                r.len()
            );
            data.extend_from_slice(r);
        }
        Matrix {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Creates a single-row matrix from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Matrix {
            rows: 1,
            cols: values.len(),
            data: values.to_vec(),
        }
    }

    /// Creates a single-column matrix from a slice.
    pub fn col_vector(values: &[f32]) -> Self {
        Matrix {
            rows: values.len(),
            cols: 1,
            data: values.to_vec(),
        }
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the matrix has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Immutable access to the flat row-major data.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the flat row-major data.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the matrix and returns the flat row-major data.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Iterator over all elements in row-major order.
    pub fn iter(&self) -> std::slice::Iter<'_, f32> {
        self.data.iter()
    }

    /// Mutable iterator over all elements in row-major order.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f32> {
        self.data.iter_mut()
    }

    /// Element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Sets the element at `(r, c)`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds for {}x{}",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow of row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r` as a slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` copied into a new vector.
    pub fn col(&self, c: usize) -> Vec<f32> {
        (0..self.rows).map(|r| self.get(r, c)).collect()
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch: {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        // i-k-j loop order keeps the inner loop streaming over contiguous rows
        // of `other` and `out`, which is the cache-friendly order for
        // row-major storage.
        for i in 0..self.rows {
            let a_row = self.row(i);
            let out_row = out.row_mut(i);
            for (k, &a_ik) in a_row.iter().enumerate() {
                if a_ik == 0.0 {
                    continue;
                }
                let b_row = other.row(k);
                for (o, &b) in out_row.iter_mut().zip(b_row.iter()) {
                    *o += a_ik * b;
                }
            }
        }
        out
    }

    /// Matrix product `self * otherᵀ` without materializing the transpose.
    pub fn matmul_transpose(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.cols,
            "matmul_transpose shape mismatch: {}x{} * ({}x{})ᵀ",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let a_row = self.row(i);
            for j in 0..other.rows {
                let b_row = other.row(j);
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row.iter()) {
                    acc += a * b;
                }
                out.set(i, j, acc);
            }
        }
        out
    }

    /// Transposed copy of the matrix.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Elementwise sum, returning a new matrix.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a + b)
    }

    /// Elementwise difference, returning a new matrix.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product, returning a new matrix.
    pub fn mul(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a * b)
    }

    /// Elementwise quotient, returning a new matrix.
    pub fn div(&self, other: &Matrix) -> Matrix {
        self.zip_with(other, |a, b| a / b)
    }

    /// Applies a binary function elementwise over two equally-shaped matrices.
    pub fn zip_with<F: Fn(f32, f32) -> f32>(&self, other: &Matrix, f: F) -> Matrix {
        assert_eq!(
            self.shape(),
            other.shape(),
            "elementwise op shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// Applies a unary function elementwise, returning a new matrix.
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// Multiplies every element by a scalar, returning a new matrix.
    pub fn scale(&self, s: f32) -> Matrix {
        self.map(|v| v * s)
    }

    /// In-place `self += other * s` (axpy). The core of every optimizer and
    /// aggregation loop in the workspace.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn add_scaled(&mut self, other: &Matrix, s: f32) {
        assert_eq!(
            self.shape(),
            other.shape(),
            "add_scaled shape mismatch: {:?} vs {:?}",
            self.shape(),
            other.shape()
        );
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b * s;
        }
    }

    /// Adds a `(1, cols)` row vector to every row, returning a new matrix.
    pub fn add_row_vec(&self, row: &Matrix) -> Matrix {
        assert_eq!(row.rows, 1, "expected a row vector, got {:?}", row.shape());
        assert_eq!(row.cols, self.cols, "row vector length mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            for (o, &b) in out.row_mut(r).iter_mut().zip(row.data.iter()) {
                *o += b;
            }
        }
        out
    }

    /// Adds a `(rows, 1)` column vector to every column, returning a new matrix.
    pub fn add_col_vec(&self, col: &Matrix) -> Matrix {
        assert_eq!(
            col.cols,
            1,
            "expected a column vector, got {:?}",
            col.shape()
        );
        assert_eq!(col.rows, self.rows, "column vector length mismatch");
        let mut out = self.clone();
        for r in 0..out.rows {
            let v = col.get(r, 0);
            for o in out.row_mut(r) {
                *o += v;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements. Returns 0 for an empty matrix.
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Column vector of per-row sums of squares, shape `(rows, 1)`.
    pub fn row_sum_sq(&self) -> Matrix {
        let data = (0..self.rows)
            .map(|r| self.row(r).iter().map(|v| v * v).sum())
            .collect();
        Matrix {
            rows: self.rows,
            cols: 1,
            data,
        }
    }

    /// Per-row Euclidean norms.
    pub fn row_norms(&self) -> Vec<f32> {
        (0..self.rows)
            .map(|r| self.row(r).iter().map(|v| v * v).sum::<f32>().sqrt())
            .collect()
    }

    /// Returns a copy with every row scaled to unit Euclidean norm.
    ///
    /// Rows with a norm below `1e-12` are left unchanged to avoid dividing by
    /// zero.
    pub fn row_l2_normalized(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let norm: f32 = out.row(r).iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > 1e-12 {
                for v in out.row_mut(r) {
                    *v /= norm;
                }
            }
        }
        out
    }

    /// Row-wise softmax with the standard max-subtraction stabilization.
    pub fn row_softmax(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            if sum > 0.0 {
                for v in row.iter_mut() {
                    *v /= sum;
                }
            }
        }
        out
    }

    /// Row-wise log-softmax with the standard max-subtraction stabilization.
    pub fn row_log_softmax(&self) -> Matrix {
        let mut out = self.clone();
        for r in 0..out.rows {
            let row = out.row_mut(r);
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let log_sum: f32 = row.iter().map(|v| (v - max).exp()).sum::<f32>().ln();
            for v in row.iter_mut() {
                *v = *v - max - log_sum;
            }
        }
        out
    }

    /// Mean of the rows, shape `(1, cols)`.
    pub fn mean_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        if self.rows == 0 {
            return out;
        }
        for r in 0..self.rows {
            for (o, &v) in out.row_mut(0).iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
        let inv = 1.0 / self.rows as f32;
        for v in out.iter_mut() {
            *v *= inv;
        }
        out
    }

    /// Copies the given rows (in order) into a new matrix.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (i, &idx) in indices.iter().enumerate() {
            assert!(
                idx < self.rows,
                "row index {idx} out of bounds for {} rows",
                self.rows
            );
            out.row_mut(i).copy_from_slice(self.row(idx));
        }
        out
    }

    /// Vertically stacks `self` above `other`.
    ///
    /// # Panics
    ///
    /// Panics if the column counts differ.
    pub fn concat_rows(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.cols, "concat_rows column mismatch");
        let mut data = Vec::with_capacity(self.data.len() + other.data.len());
        data.extend_from_slice(&self.data);
        data.extend_from_slice(&other.data);
        Matrix {
            rows: self.rows + other.rows,
            cols: self.cols,
            data,
        }
    }

    /// Horizontally stacks `self` to the left of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the row counts differ.
    pub fn concat_cols(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.rows, other.rows, "concat_cols row mismatch");
        let mut out = Matrix::zeros(self.rows, self.cols + other.cols);
        for r in 0..self.rows {
            out.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            out.row_mut(r)[self.cols..].copy_from_slice(other.row(r));
        }
        out
    }

    /// Squared Euclidean distance between row `r` of `self` and row `s` of
    /// `other`.
    pub fn row_distance_sq(&self, r: usize, other: &Matrix, s: usize) -> f32 {
        assert_eq!(self.cols, other.cols, "row_distance_sq dimension mismatch");
        self.row(r)
            .iter()
            .zip(other.row(s))
            .map(|(&a, &b)| (a - b) * (a - b))
            .sum()
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Largest absolute element, or 0 for an empty matrix.
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, v| m.max(v.abs()))
    }

    /// Whether every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl FromIterator<f32> for Matrix {
    /// Collects an iterator into a single-row matrix.
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        Matrix {
            rows: 1,
            cols: data.len(),
            data,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_has_correct_shape_and_content() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn from_rows_round_trips_through_get() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(m.get(0, 2), 3.0);
        assert_eq!(m.get(1, 0), 4.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "row 1 has length")]
    fn from_rows_rejects_ragged_input() {
        let _ = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0]]);
    }

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let b = Matrix::from_rows(&[vec![5.0, 6.0], vec![7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_transpose_agrees_with_explicit_transpose() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        let b = Matrix::from_rows(&[vec![7.0, 8.0, 9.0], vec![1.0, 0.5, 2.0]]);
        let direct = a.matmul_transpose(&b);
        let via_transpose = a.matmul(&b.transpose());
        assert_eq!(direct, via_transpose);
    }

    #[test]
    fn identity_is_matmul_neutral() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().shape(), (3, 2));
    }

    #[test]
    fn elementwise_ops_work() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.add(&b).row(0), &[4.0, 6.0]);
        assert_eq!(b.sub(&a).row(0), &[2.0, 2.0]);
        assert_eq!(a.mul(&b).row(0), &[3.0, 8.0]);
        assert_eq!(b.div(&a).row(0), &[3.0, 2.0]);
    }

    #[test]
    fn add_scaled_is_axpy() {
        let mut a = Matrix::from_rows(&[vec![1.0, 2.0]]);
        let b = Matrix::from_rows(&[vec![10.0, 20.0]]);
        a.add_scaled(&b, 0.5);
        assert_eq!(a.row(0), &[6.0, 12.0]);
    }

    #[test]
    fn row_and_col_broadcast_add() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        let r = Matrix::row_vector(&[10.0, 20.0]);
        let c = Matrix::col_vector(&[100.0, 200.0]);
        assert_eq!(a.add_row_vec(&r).row(1), &[13.0, 24.0]);
        assert_eq!(a.add_col_vec(&c).row(1), &[203.0, 204.0]);
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![-5.0, 0.0, 5.0]]);
        let s = a.row_softmax();
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
        }
        // softmax is monotone in the logits
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let a = Matrix::from_rows(&[vec![0.3, -1.2, 2.5]]);
        let ls = a.row_log_softmax();
        let s = a.row_softmax();
        for c in 0..3 {
            assert!((ls.get(0, c) - s.get(0, c).ln()).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_is_stable_for_large_logits() {
        let a = Matrix::from_rows(&[vec![1000.0, 1001.0]]);
        let s = a.row_softmax();
        assert!(s.all_finite());
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn row_l2_normalized_produces_unit_rows() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0], vec![0.0, 0.0]]);
        let n = a.row_l2_normalized();
        assert!((n.row_norms()[0] - 1.0).abs() < 1e-6);
        // zero row left untouched
        assert_eq!(n.row(1), &[0.0, 0.0]);
    }

    #[test]
    fn gather_and_concat_rows() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0], vec![3.0]]);
        let g = a.gather_rows(&[2, 0]);
        assert_eq!(g.col(0), vec![3.0, 1.0]);
        let cat = a.concat_rows(&g);
        assert_eq!(cat.rows(), 5);
        assert_eq!(cat.col(0), vec![1.0, 2.0, 3.0, 3.0, 1.0]);
    }

    #[test]
    fn concat_cols_stacks_horizontally() {
        let a = Matrix::from_rows(&[vec![1.0], vec![2.0]]);
        let b = Matrix::from_rows(&[vec![3.0, 4.0], vec![5.0, 6.0]]);
        let c = a.concat_cols(&b);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn mean_rows_averages_each_column() {
        let a = Matrix::from_rows(&[vec![1.0, 10.0], vec![3.0, 30.0]]);
        let m = a.mean_rows();
        assert_eq!(m.shape(), (1, 2));
        assert_eq!(m.row(0), &[2.0, 20.0]);
    }

    #[test]
    fn reductions_and_norms() {
        let a = Matrix::from_rows(&[vec![3.0, 4.0]]);
        assert_eq!(a.sum(), 7.0);
        assert_eq!(a.mean(), 3.5);
        assert_eq!(a.row_sum_sq().get(0, 0), 25.0);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn row_distance_sq_is_symmetric_and_zero_on_self() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![4.0, 6.0]]);
        assert_eq!(a.row_distance_sq(0, &a, 0), 0.0);
        assert_eq!(a.row_distance_sq(0, &a, 1), 25.0);
        assert_eq!(a.row_distance_sq(1, &a, 0), 25.0);
    }

    #[test]
    fn debug_format_is_nonempty_and_truncated() {
        let a = Matrix::zeros(10, 10);
        let s = format!("{a:?}");
        assert!(s.contains("Matrix(10x10)"));
        assert!(s.contains("…"));
    }

    #[test]
    fn from_iterator_builds_row_vector() {
        let m: Matrix = (0..3).map(|v| v as f32).collect();
        assert_eq!(m.shape(), (1, 3));
        assert_eq!(m.row(0), &[0.0, 1.0, 2.0]);
    }
}
