//! Property-based tests for dataset generation and partitioning invariants.

use calibre_data::{
    AugmentConfig, FederatedDataset, NonIid, PartitionConfig, Sample, SynthVision, SynthVisionSpec,
};
use calibre_tensor::rng::seeded;
use proptest::prelude::*;

fn any_non_iid() -> impl Strategy<Value = NonIid> {
    prop_oneof![
        Just(NonIid::Iid),
        (1usize..=10).prop_map(|classes_per_client| NonIid::Quantity { classes_per_client }),
        (0.05f64..5.0).prop_map(|alpha| NonIid::Dirichlet { alpha }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_partition_regime_produces_exact_budgets(
        non_iid in any_non_iid(),
        num_clients in 1usize..8,
        train in 5usize..40,
        test in 1usize..20,
        unlabeled in 0usize..20,
        seed in 0u64..1000,
    ) {
        let fed = FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients,
                train_per_client: train,
                test_per_client: test,
                unlabeled_per_client: unlabeled,
                non_iid,
                seed,
            },
        );
        prop_assert_eq!(fed.num_clients(), num_clients);
        for c in fed.clients() {
            prop_assert_eq!(c.train_len(), train);
            prop_assert_eq!(c.test_len(), test);
            prop_assert_eq!(c.unlabeled.len(), unlabeled);
            prop_assert!(c.train.iter().all(|s| s.label.is_some()));
            prop_assert!(c.unlabeled.iter().all(|s| s.label.is_none()));
            prop_assert!(c.train_labels().iter().all(|&l| l < 10));
        }
    }

    #[test]
    fn quantity_regime_never_exceeds_class_budget(
        classes_per_client in 1usize..=10,
        seed in 0u64..500,
    ) {
        let fed = FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 4,
                train_per_client: 50,
                test_per_client: 20,
                unlabeled_per_client: 0,
                non_iid: NonIid::Quantity { classes_per_client },
                seed,
            },
        );
        for c in fed.clients() {
            prop_assert!(c.train_classes().len() <= classes_per_client);
        }
    }

    #[test]
    fn rendered_views_are_finite_and_right_sized(
        class in 0usize..10,
        seed in 0u64..500,
        rho in 0.0f32..1.0,
        noise in 0.0f32..0.3,
        mask in 0.0f32..0.3,
    ) {
        let generator = SynthVision::new(SynthVisionSpec::cifar10());
        let mut r = seeded(seed);
        let sample = generator.sample(class, &mut r);
        let aug = AugmentConfig { nuisance_keep: rho, noise_std: noise, mask_prob: mask, gain_jitter: 0.1 };
        let view = generator.render_view(&sample, &aug, &mut r);
        prop_assert_eq!(view.len(), 64);
        prop_assert!(view.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn canonical_render_is_deterministic(class in 0usize..10, seed in 0u64..500) {
        let generator = SynthVision::new(SynthVisionSpec::cifar10());
        let sample = generator.sample(class, &mut seeded(seed));
        prop_assert_eq!(generator.render(&sample), generator.render(&sample));
    }

    #[test]
    fn two_view_batches_stay_aligned(n in 2usize..20, seed in 0u64..500) {
        let generator = SynthVision::new(SynthVisionSpec::stl10());
        let mut r = seeded(seed);
        let samples: Vec<Sample> = (0..n).map(|i| generator.sample(i % 10, &mut r)).collect();
        let (ve, vo) = generator.render_two_views(samples.iter(), &AugmentConfig::default(), &mut r);
        prop_assert_eq!(ve.shape(), (n, 64));
        prop_assert_eq!(vo.shape(), (n, 64));
    }

    #[test]
    fn global_histogram_counts_all_training_samples(
        non_iid in any_non_iid(),
        seed in 0u64..200,
    ) {
        let fed = FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 5,
                train_per_client: 30,
                test_per_client: 10,
                unlabeled_per_client: 0,
                non_iid,
                seed,
            },
        );
        let hist = fed.global_label_histogram();
        prop_assert_eq!(hist.iter().sum::<usize>(), 5 * 30);
    }
}
