//! Non-i.i.d. client partitioners.
//!
//! Implements the two label-skew regimes of the paper's §V:
//!
//! - **Q-non-i.i.d.** (quantity-based): every client owns samples of exactly
//!   `S` classes, with an equal sample budget per client — the paper's
//!   `(S, #samples)` notation.
//! - **D-non-i.i.d.** (distribution-based): every client draws its label
//!   distribution from a symmetric Dirichlet with concentration `α`
//!   (0.3 in the paper) — the `(0.3, #samples)` notation.
//!
//! Because the underlying data is generated rather than partitioned from a
//! fixed corpus, each client's samples are drawn fresh from the generator
//! under the client's label distribution; statistically this is equivalent
//! to partitioning an infinite corpus and keeps every client's budget exact.

use crate::sample::{ClientData, Sample};
use crate::synth::{SynthVision, SynthVisionSpec};
use calibre_tensor::rng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Label-skew regime for a federated dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum NonIid {
    /// I.i.d. sanity setting: uniform labels everywhere.
    Iid,
    /// Quantity-based label skew: each client holds exactly
    /// `classes_per_client` classes.
    Quantity {
        /// Number of distinct classes per client (`S`).
        classes_per_client: usize,
    },
    /// Distribution-based label skew: per-client label distribution drawn
    /// from `Dirichlet(alpha)`.
    Dirichlet {
        /// Concentration parameter (`0.3` in the paper).
        alpha: f64,
    },
}

/// Configuration of a federated dataset build.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionConfig {
    /// Number of clients to generate.
    pub num_clients: usize,
    /// Labeled training samples per client.
    pub train_per_client: usize,
    /// Labeled test samples per client (same label distribution as train).
    pub test_per_client: usize,
    /// Unlabeled samples per client (0 for the CIFAR analogs; large for the
    /// STL-10 analog).
    pub unlabeled_per_client: usize,
    /// Label-skew regime.
    pub non_iid: NonIid,
    /// Master seed; every client derives a distinct sub-seed from it.
    pub seed: u64,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        PartitionConfig {
            num_clients: 10,
            train_per_client: 100,
            test_per_client: 40,
            unlabeled_per_client: 0,
            non_iid: NonIid::Dirichlet { alpha: 0.3 },
            seed: 7,
        }
    }
}

/// A complete federated dataset: the shared generator plus one
/// [`ClientData`] per client.
#[derive(Debug, Clone)]
pub struct FederatedDataset {
    generator: SynthVision,
    clients: Vec<ClientData>,
}

impl FederatedDataset {
    /// Builds a federated dataset for `spec` under `config`.
    ///
    /// # Panics
    ///
    /// Panics if `config.num_clients == 0`, or if a quantity-based regime
    /// asks for more classes per client than the dataset has.
    pub fn build(spec: SynthVisionSpec, config: &PartitionConfig) -> Self {
        assert!(config.num_clients > 0, "need at least one client");
        if let NonIid::Quantity { classes_per_client } = config.non_iid {
            assert!(
                classes_per_client >= 1 && classes_per_client <= spec.num_classes,
                "classes_per_client {classes_per_client} out of range 1..={}",
                spec.num_classes
            );
        }
        let generator = SynthVision::new(spec);
        let k = generator.num_classes();
        let mut clients = Vec::with_capacity(config.num_clients);
        for c in 0..config.num_clients {
            // Independent, reproducible stream per client.
            let mut crng =
                rng::seeded(config.seed ^ (0x9E37_79B9_7F4A_7C15u64.wrapping_mul(c as u64 + 1)));
            let dist = client_label_distribution(&config.non_iid, k, &mut crng);
            clients.push(generate_client(&generator, &dist, config, &mut crng));
        }
        FederatedDataset { generator, clients }
    }

    /// Builds a federated dataset with additional per-client *covariate*
    /// shift: every client's samples share a client-specific nuisance bias
    /// drawn from `N(0, shift_std²)` per coordinate.
    ///
    /// The paper studies label skew only; feature shift is the natural
    /// companion heterogeneity axis (clients with different cameras /
    /// sensors / environments) and exercises the same code paths, so it is
    /// provided as a library extension for heterogeneity sweeps.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`FederatedDataset::build`], or
    /// if `shift_std` is negative.
    pub fn build_with_feature_shift(
        spec: SynthVisionSpec,
        config: &PartitionConfig,
        shift_std: f32,
    ) -> Self {
        assert!(shift_std >= 0.0, "shift_std must be non-negative");
        let mut fed = Self::build(spec, config);
        if shift_std == 0.0 {
            return fed;
        }
        let nuisance_dim = fed.generator.spec().nuisance_dim;
        for (c, client) in fed.clients.iter_mut().enumerate() {
            let mut crng = rng::seeded(
                config.seed ^ 0xFEA7_5417 ^ (0xD6E8_FEB8_6659_FD93u64.wrapping_mul(c as u64 + 1)),
            );
            let shift: Vec<f32> = (0..nuisance_dim)
                .map(|_| shift_std * rng::normal(&mut crng))
                .collect();
            for sample in client
                .train
                .iter_mut()
                .chain(client.test.iter_mut())
                .chain(client.unlabeled.iter_mut())
            {
                for (u, &s) in sample.nuisance.iter_mut().zip(&shift) {
                    *u += s;
                }
            }
        }
        fed
    }

    /// The shared data generator (used for rendering observations).
    pub fn generator(&self) -> &SynthVision {
        &self.generator
    }

    /// Per-client datasets.
    pub fn clients(&self) -> &[ClientData] {
        &self.clients
    }

    /// Number of clients.
    pub fn num_clients(&self) -> usize {
        self.clients.len()
    }

    /// One client's data.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn client(&self, id: usize) -> &ClientData {
        &self.clients[id]
    }

    /// Splits off the last `n` clients as a "novel" cohort that never
    /// participates in training (the paper's 50 unseen clients in Fig. 4).
    ///
    /// # Panics
    ///
    /// Panics if `n >= num_clients`.
    pub fn split_novel(self, n: usize) -> (FederatedDataset, FederatedDataset) {
        assert!(
            n < self.clients.len(),
            "cannot split off all clients as novel"
        );
        let mut clients = self.clients;
        let novel = clients.split_off(clients.len() - n);
        (
            FederatedDataset {
                generator: self.generator.clone(),
                clients,
            },
            FederatedDataset {
                generator: self.generator,
                clients: novel,
            },
        )
    }

    /// Histogram of training labels over all clients, length `num_classes`.
    pub fn global_label_histogram(&self) -> Vec<usize> {
        let mut hist = vec![0usize; self.generator.num_classes()];
        for c in &self.clients {
            for s in &c.train {
                hist[s.expect_label()] += 1;
            }
        }
        hist
    }
}

/// Draws the per-client label distribution for the given regime.
fn client_label_distribution<R: Rng + ?Sized>(
    non_iid: &NonIid,
    num_classes: usize,
    rng_: &mut R,
) -> Vec<f64> {
    match *non_iid {
        NonIid::Iid => vec![1.0 / num_classes as f64; num_classes],
        NonIid::Dirichlet { alpha } => rng::dirichlet(rng_, alpha, num_classes),
        NonIid::Quantity { classes_per_client } => {
            let chosen = rng::sample_without_replacement(rng_, num_classes, classes_per_client);
            let mut dist = vec![0.0; num_classes];
            for &c in &chosen {
                dist[c] = 1.0 / classes_per_client as f64;
            }
            dist
        }
    }
}

/// Draws `n` labels from a distribution, guaranteeing exact proportions up to
/// rounding (stratified draw, then a multinomial top-up for the remainder).
fn draw_labels<R: Rng + ?Sized>(dist: &[f64], n: usize, rng_: &mut R) -> Vec<usize> {
    let mut labels = Vec::with_capacity(n);
    // Deterministic floor allocation keeps every client's class mix faithful
    // to its distribution even for small n.
    for (k, &p) in dist.iter().enumerate() {
        let count = (p * n as f64).floor() as usize;
        labels.extend(std::iter::repeat_n(k, count));
    }
    // Top up the rounding remainder with independent draws.
    while labels.len() < n {
        labels.push(sample_categorical(dist, rng_));
    }
    // Shuffle so batches are not sorted by class.
    let perm = rng::permutation(rng_, labels.len());
    perm.into_iter().map(|i| labels[i]).collect()
}

/// One draw from a categorical distribution (inverse-CDF).
fn sample_categorical<R: Rng + ?Sized>(dist: &[f64], rng_: &mut R) -> usize {
    let total: f64 = dist.iter().sum();
    let mut u = rng_.gen::<f64>() * total;
    for (k, &p) in dist.iter().enumerate() {
        u -= p;
        if u <= 0.0 {
            return k;
        }
    }
    dist.len() - 1
}

fn generate_client<R: Rng + ?Sized>(
    generator: &SynthVision,
    dist: &[f64],
    config: &PartitionConfig,
    rng_: &mut R,
) -> ClientData {
    let make = |labels: Vec<usize>, rng_: &mut R| -> Vec<Sample> {
        labels
            .into_iter()
            .map(|k| generator.sample(k, rng_))
            .collect()
    };
    let train = make(draw_labels(dist, config.train_per_client, rng_), rng_);
    let test = make(draw_labels(dist, config.test_per_client, rng_), rng_);
    let unlabeled = draw_labels(dist, config.unlabeled_per_client, rng_)
        .into_iter()
        .map(|k| generator.sample_unlabeled(k, rng_))
        .collect();
    ClientData {
        train,
        test,
        unlabeled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn count_classes(data: &ClientData) -> usize {
        data.train_classes().len()
    }

    #[test]
    fn build_produces_requested_sizes() {
        let cfg = PartitionConfig {
            num_clients: 5,
            train_per_client: 50,
            test_per_client: 20,
            unlabeled_per_client: 30,
            non_iid: NonIid::Iid,
            seed: 1,
        };
        let fed = FederatedDataset::build(SynthVisionSpec::cifar10(), &cfg);
        assert_eq!(fed.num_clients(), 5);
        for c in fed.clients() {
            assert_eq!(c.train_len(), 50);
            assert_eq!(c.test_len(), 20);
            assert_eq!(c.unlabeled.len(), 30);
            assert!(c.unlabeled.iter().all(|s| s.label.is_none()));
        }
    }

    #[test]
    fn quantity_partition_limits_classes_per_client() {
        let cfg = PartitionConfig {
            num_clients: 8,
            train_per_client: 60,
            test_per_client: 20,
            unlabeled_per_client: 0,
            non_iid: NonIid::Quantity {
                classes_per_client: 2,
            },
            seed: 2,
        };
        let fed = FederatedDataset::build(SynthVisionSpec::cifar10(), &cfg);
        for c in fed.clients() {
            assert_eq!(count_classes(c), 2, "classes: {:?}", c.train_classes());
            // Test distribution mirrors train distribution.
            let test_classes: Vec<usize> = {
                let mut t = c.test_labels();
                t.sort_unstable();
                t.dedup();
                t
            };
            assert_eq!(test_classes, c.train_classes());
        }
    }

    #[test]
    fn dirichlet_partition_is_skewed_but_covers_dataset() {
        let cfg = PartitionConfig {
            num_clients: 30,
            train_per_client: 60,
            test_per_client: 20,
            unlabeled_per_client: 0,
            non_iid: NonIid::Dirichlet { alpha: 0.3 },
            seed: 3,
        };
        let fed = FederatedDataset::build(SynthVisionSpec::cifar10(), &cfg);
        // Skew: at least one client should be dominated by few classes.
        let min_classes = fed.clients().iter().map(count_classes).min().unwrap();
        assert!(
            min_classes < 10,
            "Dirichlet 0.3 should produce skewed clients"
        );
        // Coverage: globally all 10 classes appear.
        let hist = fed.global_label_histogram();
        assert!(hist.iter().all(|&h| h > 0), "global histogram {hist:?}");
    }

    #[test]
    fn iid_partition_is_roughly_uniform() {
        let cfg = PartitionConfig {
            num_clients: 4,
            train_per_client: 1000,
            test_per_client: 10,
            unlabeled_per_client: 0,
            non_iid: NonIid::Iid,
            seed: 4,
        };
        let fed = FederatedDataset::build(SynthVisionSpec::cifar10(), &cfg);
        for c in fed.clients() {
            let mut hist = vec![0usize; 10];
            for l in c.train_labels() {
                hist[l] += 1;
            }
            for &h in &hist {
                assert!((80..=120).contains(&h), "iid histogram {hist:?}");
            }
        }
    }

    #[test]
    fn builds_are_reproducible() {
        let cfg = PartitionConfig::default();
        let a = FederatedDataset::build(SynthVisionSpec::cifar10(), &cfg);
        let b = FederatedDataset::build(SynthVisionSpec::cifar10(), &cfg);
        assert_eq!(a.client(0).train, b.client(0).train);
        assert_eq!(a.client(3).test, b.client(3).test);
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = PartitionConfig::default();
        let a = FederatedDataset::build(SynthVisionSpec::cifar10(), &cfg);
        cfg.seed += 1;
        let b = FederatedDataset::build(SynthVisionSpec::cifar10(), &cfg);
        assert_ne!(a.client(0).train, b.client(0).train);
    }

    #[test]
    fn split_novel_partitions_clients() {
        let cfg = PartitionConfig {
            num_clients: 12,
            ..PartitionConfig::default()
        };
        let fed = FederatedDataset::build(SynthVisionSpec::cifar10(), &cfg);
        let (seen, novel) = fed.split_novel(4);
        assert_eq!(seen.num_clients(), 8);
        assert_eq!(novel.num_clients(), 4);
    }

    #[test]
    fn feature_shift_moves_clients_apart_in_nuisance_space() {
        let cfg = PartitionConfig {
            num_clients: 3,
            train_per_client: 20,
            test_per_client: 5,
            unlabeled_per_client: 5,
            non_iid: NonIid::Iid,
            seed: 9,
        };
        let plain = FederatedDataset::build(SynthVisionSpec::cifar10(), &cfg);
        let shifted =
            FederatedDataset::build_with_feature_shift(SynthVisionSpec::cifar10(), &cfg, 2.0);
        // Same labels and semantics, different nuisance.
        assert_eq!(
            plain.client(0).train_labels(),
            shifted.client(0).train_labels()
        );
        assert_eq!(
            plain.client(0).train[0].semantic,
            shifted.client(0).train[0].semantic
        );
        assert_ne!(
            plain.client(0).train[0].nuisance,
            shifted.client(0).train[0].nuisance
        );
        // Per-client mean nuisance differs strongly across shifted clients.
        let mean_nuisance = |fed: &FederatedDataset, id: usize| -> Vec<f32> {
            let data = fed.client(id);
            let dim = data.train[0].nuisance.len();
            let mut acc = vec![0.0f32; dim];
            for s in &data.train {
                for (a, &v) in acc.iter_mut().zip(&s.nuisance) {
                    *a += v;
                }
            }
            acc.iter().map(|v| v / data.train.len() as f32).collect()
        };
        let d01: f32 = mean_nuisance(&shifted, 0)
            .iter()
            .zip(mean_nuisance(&shifted, 1))
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        let p01: f32 = mean_nuisance(&plain, 0)
            .iter()
            .zip(mean_nuisance(&plain, 1))
            .map(|(a, b)| (a - b) * (a - b))
            .sum();
        assert!(d01 > p01 * 4.0, "shifted {d01} vs plain {p01}");
    }

    #[test]
    fn zero_feature_shift_is_identical_to_plain_build() {
        let cfg = PartitionConfig::default();
        let plain = FederatedDataset::build(SynthVisionSpec::cifar10(), &cfg);
        let shifted =
            FederatedDataset::build_with_feature_shift(SynthVisionSpec::cifar10(), &cfg, 0.0);
        assert_eq!(plain.client(0).train, shifted.client(0).train);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn quantity_rejects_too_many_classes() {
        let cfg = PartitionConfig {
            non_iid: NonIid::Quantity {
                classes_per_client: 11,
            },
            ..PartitionConfig::default()
        };
        FederatedDataset::build(SynthVisionSpec::cifar10(), &cfg);
    }

    #[test]
    fn draw_labels_respects_distribution() {
        let mut r = rng::seeded(5);
        let dist = vec![0.5, 0.5, 0.0, 0.0];
        let labels = draw_labels(&dist, 100, &mut r);
        assert_eq!(labels.len(), 100);
        assert!(labels.iter().all(|&l| l < 2));
        let zeros = labels.iter().filter(|&&l| l == 0).count();
        assert_eq!(zeros, 50, "floor allocation is exact for round proportions");
    }
}
