//! Heterogeneity measurement: *how* non-i.i.d. is a federation?
//!
//! The paper's `(S, #samples)` and `(0.3, #samples)` notations describe how
//! skew was *generated*; these metrics quantify the skew that actually
//! resulted, so experiments can report and compare heterogeneity on a
//! common scale:
//!
//! - [`label_entropy`]: per-client label entropy (low = specialized client);
//! - [`mean_pairwise_tv`]: average total-variation distance between client
//!   label distributions (0 = identical clients, →1 = disjoint labels);
//! - [`HeterogeneityReport`]: both, plus class coverage, for a whole
//!   federation.

use crate::partition::FederatedDataset;
use crate::sample::ClientData;
use serde::{Deserialize, Serialize};

/// Normalized label distribution of a client's training split.
///
/// Returns a length-`num_classes` probability vector (all zeros for an
/// empty client).
pub fn label_distribution(data: &ClientData, num_classes: usize) -> Vec<f64> {
    let mut dist = vec![0.0f64; num_classes];
    for label in data.train_labels() {
        dist[label] += 1.0;
    }
    let total: f64 = dist.iter().sum();
    if total > 0.0 {
        for d in &mut dist {
            *d /= total;
        }
    }
    dist
}

/// Shannon entropy (nats) of a client's label distribution. Uniform over
/// `K` classes gives `ln K`; a single-class client gives 0.
pub fn label_entropy(data: &ClientData, num_classes: usize) -> f64 {
    label_distribution(data, num_classes)
        .iter()
        .filter(|&&p| p > 0.0)
        .map(|&p| -p * p.ln())
        .sum()
}

/// Total-variation distance between two probability vectors, in `[0, 1]`.
///
/// # Panics
///
/// Panics on length mismatch.
pub fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distribution length mismatch");
    0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

/// Mean pairwise total-variation distance between all client label
/// distributions. 0 for a single client.
pub fn mean_pairwise_tv(fed: &FederatedDataset) -> f64 {
    let k = fed.generator().num_classes();
    let dists: Vec<Vec<f64>> = fed
        .clients()
        .iter()
        .map(|c| label_distribution(c, k))
        .collect();
    let n = dists.len();
    if n < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for i in 0..n {
        for j in (i + 1)..n {
            total += total_variation(&dists[i], &dists[j]);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Summary of a federation's label heterogeneity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HeterogeneityReport {
    /// Mean per-client label entropy (nats).
    pub mean_entropy: f64,
    /// Maximum possible entropy (`ln K`), for normalization.
    pub max_entropy: f64,
    /// Mean pairwise total-variation distance between clients.
    pub mean_pairwise_tv: f64,
    /// Mean number of distinct training classes per client.
    pub mean_classes_per_client: f64,
    /// Number of globally-represented classes.
    pub covered_classes: usize,
}

impl HeterogeneityReport {
    /// Measures a federation.
    pub fn measure(fed: &FederatedDataset) -> Self {
        let k = fed.generator().num_classes();
        let n = fed.num_clients() as f64;
        let mean_entropy = fed
            .clients()
            .iter()
            .map(|c| label_entropy(c, k))
            .sum::<f64>()
            / n;
        let mean_classes_per_client = fed
            .clients()
            .iter()
            .map(|c| c.train_classes().len() as f64)
            .sum::<f64>()
            / n;
        let covered_classes = fed
            .global_label_histogram()
            .iter()
            .filter(|&&h| h > 0)
            .count();
        HeterogeneityReport {
            mean_entropy,
            max_entropy: (k as f64).ln(),
            mean_pairwise_tv: mean_pairwise_tv(fed),
            mean_classes_per_client,
            covered_classes,
        }
    }

    /// Entropy normalized to `[0, 1]` (1 = every client uniform).
    pub fn normalized_entropy(&self) -> f64 {
        if self.max_entropy <= 0.0 {
            0.0
        } else {
            self.mean_entropy / self.max_entropy
        }
    }
}

impl std::fmt::Display for HeterogeneityReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "entropy {:.2}/{:.2}  pairwise-TV {:.3}  classes/client {:.1}  coverage {}",
            self.mean_entropy,
            self.max_entropy,
            self.mean_pairwise_tv,
            self.mean_classes_per_client,
            self.covered_classes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::partition::{NonIid, PartitionConfig};
    use crate::synth::SynthVisionSpec;

    fn build(non_iid: NonIid) -> FederatedDataset {
        FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 12,
                train_per_client: 100,
                test_per_client: 10,
                unlabeled_per_client: 0,
                non_iid,
                seed: 5,
            },
        )
    }

    #[test]
    fn iid_federation_is_near_maximum_entropy() {
        let report = HeterogeneityReport::measure(&build(NonIid::Iid));
        assert!(report.normalized_entropy() > 0.95, "{report}");
        assert!(report.mean_pairwise_tv < 0.15, "{report}");
        assert_eq!(report.covered_classes, 10);
    }

    #[test]
    fn quantity_skew_is_low_entropy_high_tv() {
        let report = HeterogeneityReport::measure(&build(NonIid::Quantity {
            classes_per_client: 2,
        }));
        assert!(report.mean_classes_per_client <= 2.0 + 1e-9);
        assert!(report.normalized_entropy() < 0.5, "{report}");
        assert!(report.mean_pairwise_tv > 0.5, "{report}");
    }

    #[test]
    fn heterogeneity_orders_dirichlet_concentrations() {
        let tight = HeterogeneityReport::measure(&build(NonIid::Dirichlet { alpha: 5.0 }));
        let skewed = HeterogeneityReport::measure(&build(NonIid::Dirichlet { alpha: 0.1 }));
        assert!(
            skewed.mean_pairwise_tv > tight.mean_pairwise_tv,
            "alpha 0.1 ({skewed}) must be more heterogeneous than 5.0 ({tight})"
        );
        assert!(skewed.mean_entropy < tight.mean_entropy);
    }

    #[test]
    fn total_variation_bounds() {
        assert_eq!(total_variation(&[1.0, 0.0], &[1.0, 0.0]), 0.0);
        assert_eq!(total_variation(&[1.0, 0.0], &[0.0, 1.0]), 1.0);
    }

    #[test]
    fn entropy_of_single_class_client_is_zero() {
        let fed = build(NonIid::Quantity {
            classes_per_client: 1,
        });
        for c in fed.clients() {
            assert!(label_entropy(c, 10) < 1e-9);
        }
    }

    #[test]
    fn empty_client_has_zero_distribution() {
        let data = ClientData::default();
        assert_eq!(label_distribution(&data, 3), vec![0.0; 3]);
        assert_eq!(label_entropy(&data, 3), 0.0);
    }
}
