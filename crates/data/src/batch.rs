//! Mini-batch index iteration.
//!
//! Every local-update loop in the workspace walks its samples in shuffled
//! mini-batches; this module centralizes that logic so epoch semantics are
//! identical across all baselines and Calibre itself.

use calibre_tensor::rng::permutation;
use rand::Rng;

/// Yields shuffled index batches covering `0..n` once per epoch.
///
/// The final batch of an epoch may be smaller than `batch_size`; batches of
/// size 1 are skipped when `drop_singletons` is set (contrastive losses need
/// at least two samples).
///
/// # Examples
///
/// ```
/// use calibre_data::batch::batches;
/// let mut rng = calibre_tensor::rng::seeded(0);
/// let b = batches(10, 4, false, &mut rng);
/// assert_eq!(b.iter().map(Vec::len).sum::<usize>(), 10);
/// assert_eq!(b.len(), 3);
/// ```
pub fn batches<R: Rng + ?Sized>(
    n: usize,
    batch_size: usize,
    drop_singletons: bool,
    rng: &mut R,
) -> Vec<Vec<usize>> {
    assert!(batch_size > 0, "batch size must be positive");
    let perm = permutation(rng, n);
    let mut out: Vec<Vec<usize>> = perm
        .chunks(batch_size)
        .map(|chunk| chunk.to_vec())
        .collect();
    if drop_singletons {
        out.retain(|b| b.len() > 1);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_tensor::rng::seeded;

    #[test]
    fn covers_every_index_exactly_once() {
        let mut rng = seeded(1);
        let b = batches(23, 5, false, &mut rng);
        let mut all: Vec<usize> = b.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..23).collect::<Vec<_>>());
    }

    #[test]
    fn drop_singletons_removes_trailing_one() {
        let mut rng = seeded(2);
        let b = batches(9, 4, true, &mut rng);
        assert_eq!(b.len(), 2, "the trailing singleton batch must be dropped");
        assert!(b.iter().all(|batch| batch.len() > 1));
    }

    #[test]
    fn empty_input_gives_no_batches() {
        let mut rng = seeded(3);
        assert!(batches(0, 8, false, &mut rng).is_empty());
    }

    #[test]
    fn batches_are_shuffled() {
        let mut rng = seeded(4);
        let b = batches(100, 100, false, &mut rng);
        assert_ne!(b[0], (0..100).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "batch size must be positive")]
    fn zero_batch_size_panics() {
        let mut rng = seeded(5);
        batches(10, 0, false, &mut rng);
    }
}
