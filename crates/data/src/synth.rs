//! `SynthVision`: the synthetic stand-in for CIFAR-10 / CIFAR-100 / STL-10.
//!
//! The generator is a class-conditional latent-variable model:
//!
//! 1. every class `k` owns a semantic prototype `μ_k` in latent space;
//! 2. a sample of class `k` draws `z = μ_k + σ_w·ε` (within-class variation)
//!    and an independent nuisance vector `u`;
//! 3. the observation is `x = M([z ; u])` where `M` is a *fixed random*
//!    tanh MLP (the "renderer") shared by the whole dataset.
//!
//! The nuisance subspace is what SSL augmentation perturbs; the semantic
//! subspace is what a good representation must recover. This mirrors the role
//! of photometric/geometric augmentation in the paper's image experiments:
//! two augmented views share semantics, differ in nuisance. See DESIGN.md §2
//! for the substitution argument.

use crate::augment::AugmentConfig;
use crate::sample::Sample;
use calibre_tensor::nn::{Activation, Mlp};
use calibre_tensor::{rng, Matrix};
use rand::Rng;

/// Static description of a synthetic dataset family.
#[derive(Debug, Clone, PartialEq)]
pub struct SynthVisionSpec {
    /// Human-readable dataset name, e.g. `"cifar10-analog"`.
    pub name: String,
    /// Number of classes (10 for the CIFAR-10/STL-10 analogs, 100 for
    /// CIFAR-100).
    pub num_classes: usize,
    /// Dimensionality of the semantic latent.
    pub semantic_dim: usize,
    /// Dimensionality of the nuisance latent.
    pub nuisance_dim: usize,
    /// Dimensionality of the rendered observation.
    pub obs_dim: usize,
    /// Within-class standard deviation in semantic space. Larger values make
    /// classes overlap more (harder dataset).
    pub within_class_std: f32,
    /// Separation scale of the class prototypes.
    pub class_separation: f32,
    /// Seed used for the renderer weights and class prototypes, so two
    /// `SynthVision` instances with the same spec are identical.
    pub seed: u64,
}

impl SynthVisionSpec {
    /// The CIFAR-10 analog: 10 well-separated classes.
    pub fn cifar10() -> Self {
        SynthVisionSpec {
            name: "cifar10-analog".to_string(),
            num_classes: 10,
            semantic_dim: 16,
            nuisance_dim: 16,
            obs_dim: 64,
            within_class_std: 0.55,
            class_separation: 1.9,
            seed: 0xC1FA_0010,
        }
    }

    /// The CIFAR-100 analog: 100 classes, tighter packing (harder).
    pub fn cifar100() -> Self {
        SynthVisionSpec {
            name: "cifar100-analog".to_string(),
            num_classes: 100,
            semantic_dim: 24,
            nuisance_dim: 16,
            obs_dim: 64,
            within_class_std: 0.5,
            class_separation: 1.6,
            seed: 0xC1FA_0100,
        }
    }

    /// The STL-10 analog: 10 classes, few labeled samples but a large
    /// unlabeled pool (constructed by the partitioner).
    pub fn stl10() -> Self {
        SynthVisionSpec {
            name: "stl10-analog".to_string(),
            num_classes: 10,
            semantic_dim: 16,
            nuisance_dim: 20,
            obs_dim: 64,
            within_class_std: 0.6,
            class_separation: 1.8,
            seed: 0x5710_0010,
        }
    }
}

/// A reproducible synthetic dataset generator (see module docs).
#[derive(Debug, Clone)]
pub struct SynthVision {
    spec: SynthVisionSpec,
    /// Class prototypes in semantic space, `(K, semantic_dim)`.
    prototypes: Matrix,
    /// Fixed random renderer mapping `[z ; u]` to observations.
    renderer: Mlp,
}

impl SynthVision {
    /// Builds the generator for a spec. Deterministic in `spec.seed`.
    pub fn new(spec: SynthVisionSpec) -> Self {
        let mut r = rng::seeded(spec.seed);
        // Prototypes drawn on a scaled sphere: normalize then scale, so class
        // separation is controlled by `class_separation` rather than luck.
        let raw = rng::normal_matrix(&mut r, spec.num_classes, spec.semantic_dim, 1.0);
        let prototypes = raw.row_l2_normalized().scale(spec.class_separation);
        let renderer = Mlp::with_output_activation(
            &[
                spec.semantic_dim + spec.nuisance_dim,
                (spec.obs_dim * 3) / 2,
                spec.obs_dim,
            ],
            Activation::Tanh,
            Activation::Identity,
            &mut r,
        );
        SynthVision {
            spec,
            prototypes,
            renderer,
        }
    }

    /// The dataset specification.
    pub fn spec(&self) -> &SynthVisionSpec {
        &self.spec
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.spec.num_classes
    }

    /// Observation dimensionality (the encoder input width).
    pub fn obs_dim(&self) -> usize {
        self.spec.obs_dim
    }

    /// Draws one labeled sample of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `class >= num_classes`.
    pub fn sample<R: Rng + ?Sized>(&self, class: usize, rng_: &mut R) -> Sample {
        assert!(
            class < self.spec.num_classes,
            "class {class} out of range for {} classes",
            self.spec.num_classes
        );
        let semantic: Vec<f32> = self
            .prototypes
            .row(class)
            .iter()
            .map(|&m| m + self.spec.within_class_std * rng::normal(rng_))
            .collect();
        let nuisance = rng::normal_vec(rng_, self.spec.nuisance_dim);
        Sample {
            semantic,
            nuisance,
            label: Some(class),
        }
    }

    /// Draws one *unlabeled* sample whose hidden class is `class`. Used to
    /// build the STL-10-analog unlabeled pool: the class structure exists in
    /// the data but is not observable by any training procedure.
    pub fn sample_unlabeled<R: Rng + ?Sized>(&self, class: usize, rng_: &mut R) -> Sample {
        let mut s = self.sample(class, rng_);
        s.label = None;
        s
    }

    /// Renders the canonical (deterministic) observation of a sample.
    pub fn render(&self, sample: &Sample) -> Vec<f32> {
        let mut latent = Vec::with_capacity(self.spec.semantic_dim + self.spec.nuisance_dim);
        latent.extend_from_slice(&sample.semantic);
        latent.extend_from_slice(&sample.nuisance);
        let x = Matrix::from_vec(1, latent.len(), latent);
        self.renderer.infer(&x).into_vec()
    }

    /// Renders a stochastic augmented view of a sample: the nuisance latent
    /// is partially resampled and the rendered observation is perturbed
    /// according to `aug` (noise, masking, gain).
    pub fn render_view<R: Rng + ?Sized>(
        &self,
        sample: &Sample,
        aug: &AugmentConfig,
        rng_: &mut R,
    ) -> Vec<f32> {
        let rho = aug.nuisance_keep.clamp(0.0, 1.0);
        let fresh_scale = (1.0 - rho * rho).sqrt();
        let mut latent = Vec::with_capacity(self.spec.semantic_dim + self.spec.nuisance_dim);
        latent.extend_from_slice(&sample.semantic);
        for &u in &sample.nuisance {
            latent.push(rho * u + fresh_scale * rng::normal(rng_));
        }
        let x = Matrix::from_vec(1, latent.len(), latent);
        let mut obs = self.renderer.infer(&x).into_vec();
        aug.perturb(&mut obs, rng_);
        obs
    }

    /// Renders a batch of canonical observations as an `(N, obs_dim)` matrix.
    pub fn render_batch<'a, I>(&self, samples: I) -> Matrix
    where
        I: IntoIterator<Item = &'a Sample>,
    {
        let rows: Vec<Vec<f32>> = samples.into_iter().map(|s| self.render(s)).collect();
        if rows.is_empty() {
            Matrix::zeros(0, self.spec.obs_dim)
        } else {
            Matrix::from_rows(&rows)
        }
    }

    /// Renders two independent augmented views for every sample — the
    /// dual-view input of every SSL objective (`I_e`, `I_o` in Algorithm 1 of
    /// the paper). Returns `(view_e, view_o)`, each `(N, obs_dim)`.
    pub fn render_two_views<'a, I, R>(
        &self,
        samples: I,
        aug: &AugmentConfig,
        rng_: &mut R,
    ) -> (Matrix, Matrix)
    where
        I: IntoIterator<Item = &'a Sample>,
        R: Rng + ?Sized,
    {
        let samples: Vec<&Sample> = samples.into_iter().collect();
        if samples.is_empty() {
            return (
                Matrix::zeros(0, self.spec.obs_dim),
                Matrix::zeros(0, self.spec.obs_dim),
            );
        }
        let a: Vec<Vec<f32>> = samples
            .iter()
            .map(|s| self.render_view(s, aug, rng_))
            .collect();
        let b: Vec<Vec<f32>> = samples
            .iter()
            .map(|s| self.render_view(s, aug, rng_))
            .collect();
        (Matrix::from_rows(&a), Matrix::from_rows(&b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generator_is_deterministic_in_spec_seed() {
        let a = SynthVision::new(SynthVisionSpec::cifar10());
        let b = SynthVision::new(SynthVisionSpec::cifar10());
        let s = a.sample(3, &mut rng::seeded(1));
        assert_eq!(a.render(&s), b.render(&s));
    }

    #[test]
    fn different_datasets_render_differently() {
        let a = SynthVision::new(SynthVisionSpec::cifar10());
        let b = SynthVision::new(SynthVisionSpec::stl10());
        let s = a.sample(0, &mut rng::seeded(2));
        // STL-10 analog has different nuisance dim; pad sample to compare is
        // meaningless — just check the specs differ as intended.
        assert_ne!(a.spec(), b.spec());
        assert_eq!(s.semantic.len(), 16);
    }

    #[test]
    fn samples_carry_their_class() {
        let gen = SynthVision::new(SynthVisionSpec::cifar10());
        let mut r = rng::seeded(3);
        for class in 0..10 {
            assert_eq!(gen.sample(class, &mut r).label, Some(class));
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn sample_rejects_invalid_class() {
        let gen = SynthVision::new(SynthVisionSpec::cifar10());
        gen.sample(10, &mut rng::seeded(0));
    }

    #[test]
    fn render_has_observation_dim() {
        let gen = SynthVision::new(SynthVisionSpec::cifar100());
        let s = gen.sample(42, &mut rng::seeded(4));
        assert_eq!(gen.render(&s).len(), 64);
    }

    #[test]
    fn same_class_samples_are_closer_than_cross_class() {
        // The core property the encoder must exploit: within-class distances
        // in observation space are smaller on average than between-class.
        // Averaged over every class (pair) — any single pair of prototypes
        // can land close together on the prototype sphere by chance.
        let gen = SynthVision::new(SynthVisionSpec::cifar10());
        let spec = SynthVisionSpec::cifar10();
        let mut r = rng::seeded(5);
        let n = 20;
        let rendered: Vec<Matrix> = (0..spec.num_classes)
            .map(|k| {
                let samples: Vec<Sample> = (0..n).map(|_| gen.sample(k, &mut r)).collect();
                gen.render_batch(samples.iter())
            })
            .collect();
        let mut within = 0.0;
        let mut cw = 0;
        let mut between = 0.0;
        let mut cb = 0;
        for (ka, am) in rendered.iter().enumerate() {
            for i in 0..n {
                for j in (i + 1)..n {
                    within += am.row_distance_sq(i, am, j);
                    cw += 1;
                }
            }
            for bm in rendered.iter().skip(ka + 1) {
                for i in 0..n {
                    for j in 0..n {
                        between += am.row_distance_sq(i, bm, j);
                        cb += 1;
                    }
                }
            }
        }
        let within = within / cw as f32;
        let between = between / cb as f32;
        assert!(
            between > within * 1.1,
            "between {between} should exceed within {within}"
        );
    }

    #[test]
    fn two_views_share_semantics_but_differ() {
        let gen = SynthVision::new(SynthVisionSpec::cifar10());
        let mut r = rng::seeded(6);
        let samples: Vec<Sample> = (0..8).map(|i| gen.sample(i % 10, &mut r)).collect();
        let aug = AugmentConfig::default();
        let (ve, vo) = gen.render_two_views(samples.iter(), &aug, &mut r);
        assert_eq!(ve.shape(), (8, 64));
        assert_eq!(vo.shape(), (8, 64));
        // Views of the same sample must not be identical (stochastic aug)…
        assert!(ve.sub(&vo).max_abs() > 1e-3);
        // …but must be closer to each other than to a view of another class.
        let d_same = ve.row_distance_sq(0, &vo, 0);
        let mut d_cross = 0.0;
        let mut count = 0;
        for j in 1..8 {
            d_cross += ve.row_distance_sq(0, &vo, j);
            count += 1;
        }
        assert!(d_same < d_cross / count as f32 * 1.5);
    }

    #[test]
    fn unlabeled_sample_hides_class() {
        let gen = SynthVision::new(SynthVisionSpec::stl10());
        let s = gen.sample_unlabeled(7, &mut rng::seeded(7));
        assert_eq!(s.label, None);
    }

    #[test]
    fn empty_batch_renders_empty_matrix() {
        let gen = SynthVision::new(SynthVisionSpec::cifar10());
        let m = gen.render_batch(std::iter::empty());
        assert_eq!(m.shape(), (0, 64));
    }
}
