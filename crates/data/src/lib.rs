//! # calibre-data
//!
//! Synthetic vision-like datasets, non-i.i.d. client partitioners and SSL
//! augmentations for the Calibre personalized-federated-learning
//! reproduction (ICDCS 2024).
//!
//! **Role in Algorithm 1:** feeds both stages. The federated *training*
//! stage draws two-view augmented batches from each client's unlabeled SSL
//! pool; the *personalization* stage draws the client's labeled train/test
//! split for the linear probe.
//!
//! The paper evaluates on CIFAR-10 / CIFAR-100 / STL-10 images. This crate
//! provides their synthetic analogs via [`SynthVision`], a seeded
//! class-conditional latent-variable generator (see `DESIGN.md` §2 for the
//! substitution rationale), plus:
//!
//! - [`FederatedDataset`] with the paper's two label-skew regimes
//!   ([`NonIid::Quantity`] and [`NonIid::Dirichlet`]);
//! - two-view SSL augmentation ([`AugmentConfig`],
//!   [`SynthVision::render_two_views`]);
//! - mini-batch iteration shared by every trainer ([`batch`]).
//!
//! # Example
//!
//! ```
//! use calibre_data::{FederatedDataset, PartitionConfig, NonIid, SynthVisionSpec};
//!
//! let config = PartitionConfig {
//!     num_clients: 4,
//!     train_per_client: 50,
//!     test_per_client: 20,
//!     unlabeled_per_client: 0,
//!     non_iid: NonIid::Quantity { classes_per_client: 2 },
//!     seed: 42,
//! };
//! let fed = FederatedDataset::build(SynthVisionSpec::cifar10(), &config);
//! assert_eq!(fed.num_clients(), 4);
//! assert_eq!(fed.client(0).train_classes().len(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod augment;
mod hetero;
mod partition;
mod sample;
mod synth;

pub mod batch;

pub use augment::AugmentConfig;
pub use hetero::{
    label_distribution, label_entropy, mean_pairwise_tv, total_variation, HeterogeneityReport,
};
pub use partition::{FederatedDataset, NonIid, PartitionConfig};
pub use sample::{ClientData, Sample};
pub use synth::{SynthVision, SynthVisionSpec};
