//! Sample and client-dataset types.
//!
//! A [`Sample`] stores the *latent* description of a data point — its class
//! semantic vector and its nuisance vector — not the rendered observation.
//! Observations are rendered on demand by the
//! [`SynthVision`](crate::SynthVision) generator, which is what lets the
//! augmentation pipeline create fresh views of the same underlying content,
//! exactly as image augmentation does for real photos.

use serde::{Deserialize, Serialize};

/// One data point in latent form.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Class-conditional semantic latent (shared by all views of the sample).
    pub semantic: Vec<f32>,
    /// Nuisance latent (what augmentation perturbs / SSL must discard).
    pub nuisance: Vec<f32>,
    /// Ground-truth class label. `None` for the unlabeled pool (STL-10 analog).
    pub label: Option<usize>,
}

impl Sample {
    /// The label of a labeled sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample is unlabeled.
    pub fn expect_label(&self) -> usize {
        // analyze:allow(no-expect) -- this accessor *is* the documented
        // panicking contract; callers with unlabeled data match on `label`.
        self.label.expect("sample is unlabeled")
    }
}

/// A single client's local data: labeled train/test splits plus an optional
/// unlabeled pool usable only by label-free (SSL) training stages.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ClientData {
    /// Labeled training samples.
    pub train: Vec<Sample>,
    /// Labeled test samples (same class distribution as `train`, per §III of
    /// the paper).
    pub test: Vec<Sample>,
    /// Unlabeled samples (empty for the CIFAR analogs, populated for the
    /// STL-10 analog).
    pub unlabeled: Vec<Sample>,
}

impl ClientData {
    /// Labels of the training samples.
    pub fn train_labels(&self) -> Vec<usize> {
        self.train.iter().map(Sample::expect_label).collect()
    }

    /// Labels of the test samples.
    pub fn test_labels(&self) -> Vec<usize> {
        self.test.iter().map(Sample::expect_label).collect()
    }

    /// Distinct classes present in the training split, sorted.
    pub fn train_classes(&self) -> Vec<usize> {
        let mut classes = self.train_labels();
        classes.sort_unstable();
        classes.dedup();
        classes
    }

    /// All samples usable by an SSL training stage: train + unlabeled.
    /// Labels are intentionally not exposed on this path.
    pub fn ssl_pool(&self) -> Vec<&Sample> {
        self.train.iter().chain(self.unlabeled.iter()).collect()
    }

    /// Number of labeled training samples.
    pub fn train_len(&self) -> usize {
        self.train.len()
    }

    /// Number of labeled test samples.
    pub fn test_len(&self) -> usize {
        self.test.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn labeled(label: usize) -> Sample {
        Sample {
            semantic: vec![0.0],
            nuisance: vec![0.0],
            label: Some(label),
        }
    }

    #[test]
    fn train_classes_are_sorted_and_deduped() {
        let data = ClientData {
            train: vec![labeled(3), labeled(1), labeled(3), labeled(0)],
            ..ClientData::default()
        };
        assert_eq!(data.train_classes(), vec![0, 1, 3]);
    }

    #[test]
    fn ssl_pool_merges_train_and_unlabeled() {
        let data = ClientData {
            train: vec![labeled(0)],
            unlabeled: vec![Sample {
                semantic: vec![1.0],
                nuisance: vec![1.0],
                label: None,
            }],
            ..ClientData::default()
        };
        assert_eq!(data.ssl_pool().len(), 2);
    }

    #[test]
    #[should_panic(expected = "sample is unlabeled")]
    fn expect_label_panics_on_unlabeled() {
        let s = Sample {
            semantic: vec![],
            nuisance: vec![],
            label: None,
        };
        s.expect_label();
    }
}
