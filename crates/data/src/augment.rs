//! Stochastic augmentation of rendered observations.
//!
//! Plays the role of the SimCLR augmentation family `A` in Algorithm 1 of
//! the paper: semantic-preserving, nuisance-randomizing perturbations. The
//! latent-side nuisance resampling lives in
//! [`SynthVision::render_view`](crate::SynthVision::render_view); this module
//! holds the observation-side perturbations (noise, masking, gain) and their
//! configuration.

use calibre_tensor::rng::normal;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration of the two-view SSL augmentation pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AugmentConfig {
    /// Fraction of the original nuisance latent kept when a view is rendered
    /// (`ρ`); the rest is resampled. 1.0 disables nuisance resampling,
    /// 0.0 draws a completely fresh nuisance per view.
    pub nuisance_keep: f32,
    /// Standard deviation of additive Gaussian observation noise.
    pub noise_std: f32,
    /// Probability of zeroing each observation coordinate (random erasing
    /// analog).
    pub mask_prob: f32,
    /// Multiplicative gain is drawn uniformly from
    /// `[1 - gain_jitter, 1 + gain_jitter]` (brightness/contrast analog).
    pub gain_jitter: f32,
}

impl Default for AugmentConfig {
    /// The default pipeline used by every SSL experiment in the
    /// reproduction; strong enough that representations must rely on
    /// semantics, weak enough that views stay closer to their own sample
    /// than to other classes.
    fn default() -> Self {
        AugmentConfig {
            nuisance_keep: 0.35,
            noise_std: 0.08,
            mask_prob: 0.08,
            gain_jitter: 0.15,
        }
    }
}

impl AugmentConfig {
    /// An augmentation pipeline that leaves observations untouched
    /// (for ablations and tests).
    pub fn none() -> Self {
        AugmentConfig {
            nuisance_keep: 1.0,
            noise_std: 0.0,
            mask_prob: 0.0,
            gain_jitter: 0.0,
        }
    }

    /// A deliberately aggressive pipeline (for robustness experiments).
    pub fn strong() -> Self {
        AugmentConfig {
            nuisance_keep: 0.0,
            noise_std: 0.2,
            mask_prob: 0.2,
            gain_jitter: 0.3,
        }
    }

    /// Applies the observation-side perturbations in place.
    pub fn perturb<R: Rng + ?Sized>(&self, obs: &mut [f32], rng: &mut R) {
        let gain = if self.gain_jitter > 0.0 {
            1.0 + rng.gen_range(-self.gain_jitter..self.gain_jitter)
        } else {
            1.0
        };
        for v in obs.iter_mut() {
            *v *= gain;
            if self.noise_std > 0.0 {
                *v += self.noise_std * normal(rng);
            }
            if self.mask_prob > 0.0 && rng.gen::<f32>() < self.mask_prob {
                *v = 0.0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use calibre_tensor::rng::seeded;

    #[test]
    fn none_config_is_identity() {
        let mut obs = vec![1.0, -2.0, 3.0];
        let orig = obs.clone();
        AugmentConfig::none().perturb(&mut obs, &mut seeded(0));
        assert_eq!(obs, orig);
    }

    #[test]
    fn default_config_changes_observations() {
        let mut obs = vec![1.0; 32];
        AugmentConfig::default().perturb(&mut obs, &mut seeded(1));
        assert!(obs.iter().any(|&v| (v - 1.0).abs() > 1e-4));
    }

    #[test]
    fn masking_zeroes_roughly_expected_fraction() {
        let cfg = AugmentConfig {
            nuisance_keep: 1.0,
            noise_std: 0.0,
            mask_prob: 0.25,
            gain_jitter: 0.0,
        };
        let mut obs = vec![1.0; 10_000];
        cfg.perturb(&mut obs, &mut seeded(2));
        let zeroed = obs.iter().filter(|&&v| v == 0.0).count() as f32 / 10_000.0;
        assert!((zeroed - 0.25).abs() < 0.03, "mask fraction {zeroed}");
    }

    #[test]
    fn gain_bounds_respected_without_noise() {
        let cfg = AugmentConfig {
            nuisance_keep: 1.0,
            noise_std: 0.0,
            mask_prob: 0.0,
            gain_jitter: 0.1,
        };
        let mut obs = vec![2.0; 64];
        cfg.perturb(&mut obs, &mut seeded(3));
        // Single gain per call: all entries equal, within bounds.
        assert!(obs.windows(2).all(|w| (w[0] - w[1]).abs() < 1e-6));
        assert!(obs[0] >= 2.0 * 0.9 && obs[0] <= 2.0 * 1.1);
    }

    #[test]
    fn strong_is_stronger_than_default() {
        let strong = AugmentConfig::strong();
        let default = AugmentConfig::default();
        assert!(strong.noise_std > default.noise_std);
        assert!(strong.mask_prob > default.mask_prob);
        assert!(strong.nuisance_keep < default.nuisance_keep);
    }
}
