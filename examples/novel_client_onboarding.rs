//! Novel-client onboarding: train Calibre on one cohort, then let clients
//! that never participated in training download the frozen encoder and
//! personalize locally (paper §V-D, Fig. 4's novel cohort).
//!
//! This is the deployment story of personalized FL: a new hospital / phone /
//! branch joins after training has finished and must get a good personal
//! model from its own handful of labeled samples.
//!
//! ```text
//! cargo run --release -p calibre-bench --example novel_client_onboarding
//! ```

use calibre::{run_calibre, CalibreConfig};
use calibre_data::{AugmentConfig, FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
use calibre_fl::{personalize_cohort, FlConfig};
use calibre_ssl::SslKind;

fn main() {
    // 16 clients total; the last 6 never participate in training.
    let full = FederatedDataset::build(
        SynthVisionSpec::cifar10(),
        &PartitionConfig {
            num_clients: 16,
            train_per_client: 100,
            test_per_client: 40,
            unlabeled_per_client: 0,
            non_iid: NonIid::Dirichlet { alpha: 0.3 },
            seed: 77,
        },
    );
    let (training_cohort, novel_cohort) = full.split_novel(6);
    println!(
        "training cohort: {} clients | novel cohort: {} clients",
        training_cohort.num_clients(),
        novel_cohort.num_clients()
    );

    let mut fl = FlConfig::for_input(64);
    fl.rounds = 20;
    fl.clients_per_round = 5;
    let ccfg = CalibreConfig {
        warmup_rounds: fl.rounds / 2,
        ..CalibreConfig::default()
    };
    let result = run_calibre(
        &training_cohort,
        &fl,
        SslKind::SimClr,
        &ccfg,
        &AugmentConfig::default(),
    );

    // Novel clients run the identical personalization protocol on the
    // trained encoder: features -> 10-epoch linear probe -> test accuracy.
    let novel = personalize_cohort(
        &result.encoder,
        &novel_cohort,
        novel_cohort.generator().num_classes(),
        &fl.probe,
    );

    println!(
        "\nseen cohort : mean {:.2}%  variance {:.5}",
        result.stats().mean_percent(),
        result.stats().variance
    );
    println!(
        "novel cohort: mean {:.2}%  variance {:.5}",
        novel.stats.mean_percent(),
        novel.stats.variance
    );
    for (i, acc) in novel.accuracies.iter().enumerate() {
        println!("  novel client {i}: {:.1}%", acc * 100.0);
    }
    let gap = (result.stats().mean - novel.stats.mean).abs() * 100.0;
    println!("\nseen-vs-novel gap: {gap:.2} percentage points");
    println!("(a small gap is the paper's §V-D claim: the calibrated encoder");
    println!(" depends on no client-specific information, so unseen clients");
    println!(" personalize just as well)");
}
