//! Fairness analysis: *where* does unfairness come from?
//!
//! Runs FedAvg-FT and Calibre (SimCLR) on a Dirichlet-skewed federation and
//! decomposes the fairness picture with the library's analysis metrics:
//! per-client accuracy vs. local class diversity (Pearson), Jain's index,
//! worst-decile accuracy, and a per-class confusion matrix of the
//! personalized predictions.
//!
//! ```text
//! cargo run --release -p calibre-bench --example fairness_analysis
//! ```

use calibre::{run_calibre, CalibreConfig};
use calibre_data::{AugmentConfig, FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
use calibre_fl::baselines::fedavg::run_fedavg;
use calibre_fl::baselines::BaselineResult;
use calibre_fl::{jain_index, pearson, worst_fraction_mean, ConfusionMatrix, FlConfig};
use calibre_ssl::{train_linear_probe, SslKind};
use calibre_tensor::Matrix;

fn analyze(fed: &FederatedDataset, cfg: &FlConfig, result: &BaselineResult) {
    println!("\n=== {} ===", result.name);
    println!(
        "mean {:.2}%  variance {:.5}  Jain {:.4}  worst-10% {:.2}%",
        result.stats().mean_percent(),
        result.stats().variance,
        jain_index(&result.seen.accuracies),
        worst_fraction_mean(&result.seen.accuracies, 0.1) * 100.0
    );

    // Does accuracy track how many classes a client holds? Fewer classes =
    // easier personal task, so a strong negative correlation is expected —
    // and *shrinking* it is part of what fairness means here.
    let class_counts: Vec<f32> = (0..fed.num_clients())
        .map(|id| fed.client(id).train_classes().len() as f32)
        .collect();
    println!(
        "Pearson(accuracy, #local classes) = {:+.3}",
        pearson(&result.seen.accuracies, &class_counts)
    );

    // Confusion matrix of all personalized predictions pooled over clients.
    let mut confusion = ConfusionMatrix::new(fed.generator().num_classes());
    for id in 0..fed.num_clients() {
        let data = fed.client(id);
        let train_x = result
            .encoder
            .infer(&fed.generator().render_batch(data.train.iter()));
        let test_x: Matrix = result
            .encoder
            .infer(&fed.generator().render_batch(data.test.iter()));
        let head = train_linear_probe(&train_x, &data.train_labels(), 10, &cfg.probe);
        let logits = head.infer(&test_x);
        for (r, &actual) in data.test_labels().iter().enumerate() {
            let row = logits.row(r);
            let pred = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0;
            confusion.record(actual, pred);
        }
    }
    let recall = confusion.per_class_recall();
    println!(
        "pooled accuracy {:.2}%  per-class recall:",
        confusion.accuracy() * 100.0
    );
    for (class, r) in recall.iter().enumerate() {
        println!("  class {class}: {:.1}%", r * 100.0);
    }
}

fn main() {
    let fed = FederatedDataset::build(
        SynthVisionSpec::cifar10(),
        &PartitionConfig {
            num_clients: 12,
            train_per_client: 100,
            test_per_client: 40,
            unlabeled_per_client: 0,
            non_iid: NonIid::Dirichlet { alpha: 0.3 },
            seed: 33,
        },
    );
    let mut cfg = FlConfig::for_input(64);
    cfg.rounds = 20;
    cfg.clients_per_round = 5;

    let fedavg = run_fedavg(&fed, &cfg, true);
    analyze(&fed, &cfg, &fedavg);

    let ccfg = CalibreConfig {
        warmup_rounds: cfg.rounds / 2,
        ..CalibreConfig::default()
    };
    let calibre = run_calibre(
        &fed,
        &cfg,
        SslKind::SimClr,
        &ccfg,
        &AugmentConfig::default(),
    );
    analyze(&fed, &cfg, &calibre);
}
