//! Heterogeneity sweep: how accuracy and fairness degrade as client label
//! skew intensifies, for a supervised pFL baseline (FedAvg-FT) versus
//! Calibre (SimCLR).
//!
//! This is the scenario the paper's introduction motivates: "when the local
//! data distributions across clients are severely non-i.i.d., it remains
//! challenging to improve model fairness while maintaining high overall
//! performance."
//!
//! ```text
//! cargo run --release -p calibre-bench --example heterogeneity_sweep
//! ```

use calibre::{run_calibre, CalibreConfig};
use calibre_data::{AugmentConfig, FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
use calibre_fl::baselines::fedavg::run_fedavg;
use calibre_fl::FlConfig;
use calibre_ssl::SslKind;

fn main() {
    let mut fl = FlConfig::for_input(64);
    fl.rounds = 20;
    fl.clients_per_round = 5;
    let ccfg = CalibreConfig {
        warmup_rounds: fl.rounds / 2,
        ..CalibreConfig::default()
    };

    println!(
        "{:<24} {:<18} {:>9} {:>10}  {:<18} {:>9} {:>10}",
        "heterogeneity",
        "FedAvg-FT",
        "mean(%)",
        "variance",
        "Calibre(SimCLR)",
        "mean(%)",
        "variance"
    );

    // From mild to severe Dirichlet skew, then the extreme quantity regime.
    let regimes: Vec<(String, NonIid)> = vec![
        ("iid".into(), NonIid::Iid),
        ("dirichlet(1.0)".into(), NonIid::Dirichlet { alpha: 1.0 }),
        ("dirichlet(0.3)".into(), NonIid::Dirichlet { alpha: 0.3 }),
        ("dirichlet(0.1)".into(), NonIid::Dirichlet { alpha: 0.1 }),
        (
            "quantity(S=2)".into(),
            NonIid::Quantity {
                classes_per_client: 2,
            },
        ),
    ];

    for (name, non_iid) in regimes {
        let fed = FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 12,
                train_per_client: 100,
                test_per_client: 40,
                unlabeled_per_client: 0,
                non_iid,
                seed: 21,
            },
        );
        let hetero = calibre_data::HeterogeneityReport::measure(&fed);
        let fedavg = run_fedavg(&fed, &fl, true);
        let calibre = run_calibre(&fed, &fl, SslKind::SimClr, &ccfg, &AugmentConfig::default());
        println!(
            "{:<24} {:<18} {:>9.2} {:>10.5}  {:<18} {:>9.2} {:>10.5}   [TV {:.3}]",
            name,
            "",
            fedavg.stats().mean_percent(),
            fedavg.stats().variance,
            "",
            calibre.stats().mean_percent(),
            calibre.stats().variance,
            hetero.mean_pairwise_tv,
        );
    }

    println!("\nLower variance = fairer; the gap between the two columns is the");
    println!("fairness story the paper tells in Figs. 3-4.");
}
