//! Quickstart: train Calibre (SimCLR) on a small non-i.i.d. federation and
//! personalize every client with a linear probe.
//!
//! ```text
//! cargo run --release -p calibre-bench --example quickstart
//! ```

use calibre::{run_calibre, CalibreConfig};
use calibre_data::{AugmentConfig, FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
use calibre_fl::FlConfig;
use calibre_ssl::SslKind;

fn main() {
    // 1. A federation of 10 clients whose label distributions are skewed by
    //    a Dirichlet(0.3) draw — the paper's D-non-i.i.d. setting.
    let fed = FederatedDataset::build(
        SynthVisionSpec::cifar10(),
        &PartitionConfig {
            num_clients: 10,
            train_per_client: 100,
            test_per_client: 40,
            unlabeled_per_client: 0,
            non_iid: NonIid::Dirichlet { alpha: 0.3 },
            seed: 42,
        },
    );
    println!(
        "federation: {} clients, {} classes, global label histogram {:?}",
        fed.num_clients(),
        fed.generator().num_classes(),
        fed.global_label_histogram()
    );

    // 2. Federated training + personalization with Calibre (SimCLR).
    let mut fl = FlConfig::for_input(fed.generator().obs_dim());
    fl.rounds = 20;
    fl.clients_per_round = 5;
    let ccfg = CalibreConfig {
        warmup_rounds: fl.rounds / 2,
        ..CalibreConfig::default()
    };
    let result = run_calibre(&fed, &fl, SslKind::SimClr, &ccfg, &AugmentConfig::default());

    // 3. The paper's two headline numbers: mean accuracy (performance) and
    //    variance (fairness — lower is fairer).
    println!("\n{}:", result.name);
    println!("  mean accuracy : {:.2}%", result.stats().mean_percent());
    println!("  variance      : {:.5}", result.stats().variance);
    println!("  worst client  : {:.2}%", result.stats().min * 100.0);
    println!("  best client   : {:.2}%", result.stats().max * 100.0);
    for (id, acc) in result.seen.accuracies.iter().enumerate() {
        println!("  client {id:>2}: {:.1}%", acc * 100.0);
    }
}
