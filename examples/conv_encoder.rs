//! Convolutional encoder: the synthetic observations interpreted as 8×8
//! single-channel images, classified with the substrate's `ConvNet`
//! (conv → ReLU → conv → ReLU → linear) and compared against the MLP
//! encoder the harness defaults to.
//!
//! The paper's experiments use a ResNet-18; the harness substitutes an MLP
//! for CPU speed (DESIGN.md §2). This example demonstrates that the
//! substrate itself supports convolutional encoders end to end — autograd
//! through im2col included.
//!
//! ```text
//! cargo run --release -p calibre-bench --example conv_encoder
//! ```

use calibre_data::{FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
use calibre_tensor::conv::{ConvNet, ImageShape};
use calibre_tensor::nn::{gradients, Activation, Binding, Linear, Mlp, Module};
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::{rng, Graph, Matrix};

fn main() {
    // One client's data, treated as a small central task.
    let fed = FederatedDataset::build(
        SynthVisionSpec::cifar10(),
        &PartitionConfig {
            num_clients: 1,
            train_per_client: 400,
            test_per_client: 200,
            unlabeled_per_client: 0,
            non_iid: NonIid::Iid,
            seed: 3,
        },
    );
    let data = fed.client(0);
    let train_x = fed.generator().render_batch(data.train.iter());
    let train_y = data.train_labels();
    let test_x = fed.generator().render_batch(data.test.iter());
    let test_y = data.test_labels();

    let accuracy = |logits: &Matrix, labels: &[usize]| -> f32 {
        (0..logits.rows())
            .filter(|&i| {
                let row = logits.row(i);
                let pred = row
                    .iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                    .unwrap()
                    .0;
                pred == labels[i]
            })
            .count() as f32
            / labels.len() as f32
    };

    // --- ConvNet over the observations as 8×8×1 images.
    let mut r = rng::seeded(0);
    let mut conv = ConvNet::new(ImageShape::new(8, 8, 1), 8, 16, 10, &mut r);
    let mut conv_opt = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));

    // --- The harness's MLP encoder + linear head, matched budget.
    let mut mlp_encoder = Mlp::new(&[64, 96, 32], Activation::Relu, &mut r);
    let mut mlp_head = Linear::new(32, 10, &mut r);
    let mut mlp_opt = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));
    let mut head_opt = Sgd::new(SgdConfig::with_lr_momentum(0.05, 0.9));

    println!(
        "{:>6} {:>14} {:>14}",
        "epoch", "conv test(%)", "mlp test(%)"
    );
    let mut shuffle = rng::seeded(1);
    for epoch in 0..20 {
        for batch in calibre_data::batch::batches(train_x.rows(), 32, false, &mut shuffle) {
            let x = train_x.gather_rows(&batch);
            let y: Vec<usize> = batch.iter().map(|&i| train_y[i]).collect();

            let mut g = Graph::new();
            let xn = g.constant(x.clone());
            let mut binding = Binding::new();
            let logits = conv.forward(&mut g, xn, &mut binding);
            let loss = g.cross_entropy(logits, &y);
            g.backward(loss);
            conv_opt.step(&mut conv, &gradients(&g, &binding));

            let mut g2 = Graph::new();
            let xn2 = g2.constant(x);
            let mut binding2 = Binding::new();
            let feats = mlp_encoder.forward(&mut g2, xn2, &mut binding2);
            let logits2 = mlp_head.forward(&mut g2, feats, &mut binding2);
            let loss2 = g2.cross_entropy(logits2, &y);
            g2.backward(loss2);
            let grads2 = gradients(&g2, &binding2);
            let enc_params = mlp_encoder.parameters().len();
            mlp_opt.step(&mut mlp_encoder, &grads2[..enc_params]);
            head_opt.step(&mut mlp_head, &grads2[enc_params..]);
        }
        if (epoch + 1) % 5 == 0 {
            let conv_acc = accuracy(&conv.infer(&test_x), &test_y);
            let mlp_acc = accuracy(&mlp_head.infer(&mlp_encoder.infer(&test_x)), &test_y);
            println!(
                "{:>6} {:>14.2} {:>14.2}",
                epoch + 1,
                conv_acc * 100.0,
                mlp_acc * 100.0
            );
        }
    }
    println!(
        "\nconv parameters: {}  |  mlp parameters: {}",
        conv.num_scalars(),
        mlp_encoder.num_scalars() + mlp_head.num_scalars()
    );
    println!("(the synthetic observations have no true spatial structure, so the");
    println!(" 5x-smaller conv encoder trails the MLP here — the point is that the");
    println!(" substrate trains convolutions end to end, gradients included)");
}
