//! SSL-backbone comparison: run Calibre over all six self-supervised
//! methods on the same federation, mirroring the paper's §V-E analysis of
//! why Calibre (SimCLR) tends to win.
//!
//! ```text
//! cargo run --release -p calibre-bench --example ssl_backbones
//! ```

use calibre::{run_calibre, CalibreConfig};
use calibre_data::{AugmentConfig, FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
use calibre_fl::pfl_ssl::run_pfl_ssl;
use calibre_fl::FlConfig;
use calibre_ssl::SslKind;

fn main() {
    let fed = FederatedDataset::build(
        SynthVisionSpec::cifar10(),
        &PartitionConfig {
            num_clients: 10,
            train_per_client: 100,
            test_per_client: 40,
            unlabeled_per_client: 0,
            non_iid: NonIid::Quantity {
                classes_per_client: 2,
            },
            seed: 5,
        },
    );
    let mut fl = FlConfig::for_input(64);
    fl.rounds = 20;
    fl.clients_per_round = 5;
    let ccfg = CalibreConfig {
        warmup_rounds: fl.rounds / 2,
        ..CalibreConfig::default()
    };
    let aug = AugmentConfig::default();

    println!(
        "{:<10} {:>14} {:>12} {:>16} {:>12}   {:>8}",
        "backbone", "pFL mean(%)", "pFL var", "Calibre mean(%)", "Calibre var", "Δmean"
    );
    for kind in SslKind::ALL {
        let plain = run_pfl_ssl(&fed, &fl, kind, &aug);
        let calibrated = run_calibre(&fed, &fl, kind, &ccfg, &aug);
        println!(
            "{:<10} {:>14.2} {:>12.5} {:>16.2} {:>12.5}   {:>+8.2}",
            kind.name(),
            plain.stats().mean_percent(),
            plain.stats().variance,
            calibrated.stats().mean_percent(),
            calibrated.stats().variance,
            calibrated.stats().mean_percent() - plain.stats().mean_percent(),
        );
    }
    println!("\nΔmean > 0 means the prototype calibration helped that backbone;");
    println!("the paper attributes SimCLR's edge to NT-Xent cooperating with the");
    println!("prototype regularizers (§V-E).");
}
