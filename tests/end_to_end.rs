//! End-to-end tests of the experiment harness itself: the paths the `fig3`,
//! `fig4`, `table1` and `tsne` binaries walk, at smoke scale, with
//! shape-level assertions on their outputs.

use calibre_bench::report::{write_csv, Row};
use calibre_bench::{build_dataset, run_method, DatasetId, MethodId, Scale, Setting};
use calibre_cluster::silhouette_score;
use calibre_embed::{collect_points, tsne, TsneConfig};
use calibre_fl::{personalize_cohort, Stats};
use calibre_ssl::SslKind;
use calibre_tensor::Matrix;

#[test]
fn fig3_cell_produces_complete_rows() {
    let fed = build_dataset(
        DatasetId::Cifar10,
        Setting::QuantityNonIid,
        Scale::Smoke,
        0,
        3,
    );
    let cfg = Scale::Smoke.fl_config(3);
    let mut rows = Vec::new();
    for id in MethodId::short_roster() {
        let result = run_method(id, &fed, &cfg);
        let stats = result.stats();
        rows.push(Row {
            dataset: DatasetId::Cifar10.name().to_string(),
            setting: Setting::QuantityNonIid.name().to_string(),
            method: result.name,
            cohort: "seen".to_string(),
            stats,
        });
    }
    assert_eq!(rows.len(), 4);
    assert!(rows.iter().all(|r| r.stats.count == fed.num_clients()));
    // Rows must be serializable to CSV without error.
    let tmp = std::env::temp_dir().join(format!("calibre-e2e-{}", std::process::id()));
    std::fs::create_dir_all(&tmp).unwrap();
    let old = std::env::current_dir().unwrap();
    std::env::set_current_dir(&tmp).unwrap();
    let path = write_csv("fig3_smoke", &rows).unwrap();
    let content = std::fs::read_to_string(path).unwrap();
    std::env::set_current_dir(old).unwrap();
    assert_eq!(content.lines().count(), 5, "header + 4 rows");
}

#[test]
fn fig4_novel_cohort_pipeline_works() {
    let full = build_dataset(
        DatasetId::Cifar10,
        Setting::DirichletNonIid,
        Scale::Smoke,
        Scale::Smoke.novel_clients(),
        5,
    );
    let (seen_fed, novel_fed) = full.split_novel(Scale::Smoke.novel_clients());
    let cfg = Scale::Smoke.fl_config(5);
    let result = run_method(MethodId::Calibre(SslKind::SimClr), &seen_fed, &cfg);
    let novel = personalize_cohort(&result.encoder, &novel_fed, 10, &cfg.probe);
    assert_eq!(novel.accuracies.len(), Scale::Smoke.novel_clients());
    assert!(novel.stats.mean > 0.0 && novel.stats.mean <= 1.0);
}

#[test]
fn table1_ablation_grid_runs_and_varies() {
    let fed = build_dataset(
        DatasetId::Cifar10,
        Setting::QuantityNonIid,
        Scale::Smoke,
        0,
        7,
    );
    let cfg = Scale::Smoke.fl_config(7);
    let mut means = Vec::new();
    for (ln, lp) in [(false, false), (false, true), (true, false), (true, true)] {
        let result = run_method(
            MethodId::CalibreAblation(SslKind::SimClr, ln, lp),
            &fed,
            &cfg,
        );
        assert!(result.stats().mean.is_finite());
        means.push(result.stats().mean);
    }
    // The four variants must not all collapse to one number — the toggles
    // must change training.
    let distinct = means.iter().any(|&m| (m - means[0]).abs() > 1e-6);
    assert!(distinct, "ablation toggles had no effect: {means:?}");
}

#[test]
fn tsne_figure_pipeline_produces_plottable_output() {
    let fed = build_dataset(
        DatasetId::Cifar10,
        Setting::DirichletNonIid,
        Scale::Smoke,
        0,
        9,
    );
    let cfg = Scale::Smoke.fl_config(9);
    let result = run_method(MethodId::PflSsl(SslKind::SimClr), &fed, &cfg);
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    let mut clients = Vec::new();
    for id in 0..fed.num_clients() {
        for s in fed.client(id).train.iter().take(10) {
            rows.push(fed.generator().render(s));
            labels.push(s.expect_label());
            clients.push(id);
        }
    }
    let obs = Matrix::from_rows(&rows);
    let feats = result.encoder.infer(&obs);
    let coords = tsne(
        &feats,
        &TsneConfig {
            iterations: 60,
            ..Default::default()
        },
    );
    assert_eq!(coords.shape(), (labels.len(), 2));
    assert!(coords.all_finite());
    let points = collect_points(&coords, &labels, &clients);
    assert_eq!(points.len(), labels.len());
    // Silhouette on trained features must not be catastrophically negative.
    let sil = silhouette_score(&feats, &labels);
    assert!(sil > -0.5, "silhouette {sil}");
}

#[test]
fn stats_shape_matches_paper_reporting() {
    let stats = Stats::from_accuracies(&[0.54, 0.67, 0.89, 0.89]);
    // Variance is reported in accuracy units (e.g. the paper's 0.0031) and
    // std in percentage points for Table I.
    assert!(stats.variance < 1.0);
    assert!(stats.std_percent() > 1.0);
    assert!(stats.paper_format().contains("±"));
}
