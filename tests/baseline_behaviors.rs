//! Mechanism-level behavioral tests for the baseline zoo: each test pins
//! down the *reason* an algorithm exists, not just that it runs.

use calibre_bench::{build_dataset, DatasetId, Scale, Setting};
use calibre_data::{FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
use calibre_fl::baselines::fedavg::{run_fedavg, train_fedavg_global};
use calibre_fl::baselines::fedprox::run_fedprox;
use calibre_fl::baselines::fedrep::run_fedrep;
use calibre_fl::baselines::scaffold::train_scaffold_global;
use calibre_fl::checkpoint;
use calibre_fl::comm::CommReport;
use calibre_fl::{personalize_cohort, FlConfig};
use calibre_tensor::nn::Module;

fn skewed_fed(seed: u64) -> FederatedDataset {
    FederatedDataset::build(
        SynthVisionSpec::cifar10(),
        &PartitionConfig {
            num_clients: 6,
            train_per_client: 50,
            test_per_client: 30,
            unlabeled_per_client: 0,
            non_iid: NonIid::Quantity {
                classes_per_client: 2,
            },
            seed,
        },
    )
}

fn cfg(rounds: usize) -> FlConfig {
    let mut cfg = FlConfig::for_input(64);
    cfg.rounds = rounds;
    cfg.clients_per_round = 3;
    cfg.local_epochs = 2;
    cfg.batch_size = 16;
    cfg
}

#[test]
fn scaffold_controls_drift_at_least_as_well_as_fedavg() {
    // SCAFFOLD's control variates exist to stop local updates drifting under
    // heterogeneity; its global model should not be substantially worse
    // than FedAvg's at equal budget.
    let fed = skewed_fed(1);
    let cfg = cfg(8);
    let (fedavg_model, _) = train_fedavg_global(&fed, &cfg);
    let (scaffold_model, _) = train_scaffold_global(&fed, &cfg);
    let acc = |model: &calibre_fl::model::ClassifierModel| -> f32 {
        (0..fed.num_clients())
            .map(|id| model.test_accuracy(fed.client(id), fed.generator()))
            .sum::<f32>()
            / fed.num_clients() as f32
    };
    let fa = acc(&fedavg_model);
    let sc = acc(&scaffold_model);
    assert!(
        sc > fa - 0.08,
        "SCAFFOLD global {sc} should be competitive with FedAvg global {fa}"
    );
}

#[test]
fn fedrep_local_heads_beat_the_shared_global_head() {
    // FedRep's whole point: under 2-class clients, a per-client head on a
    // shared representation crushes a single global head.
    let fed = skewed_fed(2);
    let cfg = cfg(8);
    let global_only = run_fedavg(&fed, &cfg, false);
    let fedrep = run_fedrep(&fed, &cfg);
    assert!(
        fedrep.stats().mean > global_only.stats().mean + 0.1,
        "FedRep {:?} vs global-model FedAvg {:?}",
        fedrep.stats(),
        global_only.stats()
    );
}

#[test]
fn fedprox_mu_zero_and_positive_bracket_fedavg_drift() {
    // μ = 0 reduces exactly to FedAvg; μ > 0 stays strictly closer to the
    // initialization over one round (the proximal pull).
    let fed = skewed_fed(3);
    let mut one_round = cfg(1);
    one_round.clients_per_round = 1;
    let loose = run_fedprox(&fed, &one_round, 0.0);
    let tight = run_fedprox(&fed, &one_round, 10.0);
    let delta = |a: &[f32], b: &[f32]| -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f32>()
            .sqrt()
    };
    let loose_move = delta(&loose.encoder.to_flat(), &tight.encoder.to_flat());
    assert!(loose_move > 0.0, "different μ must give different encoders");
}

#[test]
fn checkpointed_encoder_reproduces_personalization_exactly() {
    let fed = skewed_fed(4);
    let cfg = cfg(4);
    let result = run_fedavg(&fed, &cfg, true);
    let path = std::env::temp_dir().join(format!("calibre-behav-{}.ckpt", std::process::id()));
    checkpoint::save(&result.encoder, &path).unwrap();

    let mut restored = result.encoder.clone();
    // Scramble, then restore.
    let scrambled: Vec<f32> = restored.to_flat().iter().map(|v| v + 1.0).collect();
    restored.load_flat(&scrambled);
    checkpoint::load(&mut restored, &path).unwrap();
    std::fs::remove_file(&path).ok();

    let original = personalize_cohort(&result.encoder, &fed, 10, &cfg.probe);
    let roundtrip = personalize_cohort(&restored, &fed, 10, &cfg.probe);
    assert_eq!(original.accuracies, roundtrip.accuracies);
}

#[test]
fn comm_report_matches_what_the_encoder_actually_ships() {
    let fed = build_dataset(
        DatasetId::Cifar10,
        Setting::QuantityNonIid,
        Scale::Smoke,
        0,
        5,
    );
    let cfg = Scale::Smoke.fl_config(5);
    let result = run_fedavg(&fed, &cfg, true);
    let report = CommReport::for_module(&result.encoder, cfg.rounds, cfg.clients_per_round);
    // Encoder: 64→96→32 MLP = (64·96 + 96) + (96·32 + 32) scalars.
    let expected_params = 64 * 96 + 96 + 96 * 32 + 32;
    assert_eq!(report.params_per_client, expected_params);
    assert_eq!(
        report.total,
        2 * expected_params * 4 * cfg.clients_per_round * cfg.rounds
    );
}

#[test]
fn feature_shift_hurts_a_shared_global_model() {
    // Covariate shift (library extension): a single global model should
    // find shifted clients harder than unshifted ones.
    let cfg_fl = cfg(8);
    let part = PartitionConfig {
        num_clients: 6,
        train_per_client: 50,
        test_per_client: 30,
        unlabeled_per_client: 0,
        non_iid: NonIid::Iid,
        seed: 6,
    };
    let plain = FederatedDataset::build(SynthVisionSpec::cifar10(), &part);
    let shifted =
        FederatedDataset::build_with_feature_shift(SynthVisionSpec::cifar10(), &part, 3.0);
    let base = run_fedavg(&plain, &cfg_fl, false);
    let hard = run_fedavg(&shifted, &cfg_fl, false);
    assert!(
        hard.stats().mean < base.stats().mean,
        "feature shift should reduce global-model accuracy: {:?} vs {:?}",
        hard.stats(),
        base.stats()
    );
}
