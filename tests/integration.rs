//! Cross-crate integration tests: data → ssl → fl → calibre plumbing.
//!
//! These tests exercise the same paths the experiment harness uses, at
//! smoke scale, and assert the *relationships* the paper depends on rather
//! than absolute numbers.

use calibre::{calibre_step, run_calibre, CalibreConfig};
use calibre_bench::{build_dataset, run_method, DatasetId, MethodId, Scale, Setting};
use calibre_cluster::silhouette_score;
use calibre_data::{AugmentConfig, FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
use calibre_fl::baselines::fedavg::run_fedavg;
use calibre_fl::pfl_ssl::run_pfl_ssl;
use calibre_fl::{personalize_cohort, FlConfig};
use calibre_ssl::{create_method, SslKind, TwoViewBatch};
use calibre_tensor::nn::Module;
use calibre_tensor::optim::{Sgd, SgdConfig};
use calibre_tensor::Matrix;

fn small_fed(seed: u64) -> FederatedDataset {
    FederatedDataset::build(
        SynthVisionSpec::cifar10(),
        &PartitionConfig {
            num_clients: 6,
            train_per_client: 60,
            test_per_client: 30,
            unlabeled_per_client: 0,
            non_iid: NonIid::Quantity {
                classes_per_client: 2,
            },
            seed,
        },
    )
}

fn smoke_cfg() -> FlConfig {
    let mut cfg = FlConfig::for_input(64);
    cfg.rounds = 6;
    cfg.clients_per_round = 3;
    cfg.local_epochs = 1;
    cfg.batch_size = 16;
    cfg
}

#[test]
fn federated_ssl_training_improves_over_random_encoder() {
    let fed = small_fed(1);
    let cfg = smoke_cfg();
    // Random encoder baseline.
    let random_encoder = create_method(SslKind::SimClr, cfg.ssl.clone())
        .encoder()
        .clone();
    let random = personalize_cohort(&random_encoder, &fed, 10, &cfg.probe);
    // Trained encoder.
    let result = run_pfl_ssl(&fed, &cfg, SslKind::SimClr, &AugmentConfig::default());
    assert!(
        result.stats().mean > random.stats.mean,
        "trained {:?} must beat random {:?}",
        result.stats(),
        random.stats
    );
}

#[test]
fn calibre_loss_composes_with_every_ssl_backbone() {
    let fed = small_fed(2);
    let config = CalibreConfig::default();
    let aug = AugmentConfig::default();
    let mut rng = calibre_tensor::rng::seeded(0);
    let pool: Vec<_> = fed.client(0).ssl_pool();
    let samples: Vec<_> = pool.iter().take(12).copied().collect();
    let (ve, vo) = fed.generator().render_two_views(samples, &aug, &mut rng);
    for kind in SslKind::ALL {
        let mut method = create_method(kind, FlConfig::for_input(64).ssl);
        let mut opt = Sgd::new(SgdConfig::with_lr(0.05));
        let before = method.encoder().to_flat();
        let outcome = calibre_step(
            method.as_mut(),
            &TwoViewBatch::new(&ve, &vo),
            &config,
            &mut opt,
            7,
        );
        assert!(outcome.ssl_loss.is_finite(), "{kind}: ssl loss");
        assert!(
            outcome.l_n.is_finite() && outcome.l_p.is_finite(),
            "{kind}: regularizers"
        );
        assert!(outcome.divergence > 0.0, "{kind}: divergence");
        assert_ne!(
            method.encoder().to_flat(),
            before,
            "{kind}: encoder must move"
        );
    }
}

#[test]
fn calibre_produces_crisper_features_than_its_inputs() {
    // After training, encoder features should cluster by class better than
    // raw observations do — the premise of the whole personalization stage.
    let fed = small_fed(3);
    let mut cfg = smoke_cfg();
    cfg.rounds = 16;
    cfg.local_epochs = 2;
    let result = run_calibre(
        &fed,
        &cfg,
        SslKind::SimClr,
        &CalibreConfig::default(),
        &AugmentConfig::default(),
    );
    let mut rows = Vec::new();
    let mut labels = Vec::new();
    for id in 0..fed.num_clients() {
        for s in fed.client(id).train.iter().take(20) {
            rows.push(fed.generator().render(s));
            labels.push(s.expect_label());
        }
    }
    let obs = Matrix::from_rows(&rows);
    // SSL representations live on the hypersphere (the contrastive losses
    // normalize), so compare silhouettes in normalized space on both sides.
    let feats = result.encoder.infer(&obs).row_l2_normalized();
    let sil_raw = silhouette_score(&obs.row_l2_normalized(), &labels);
    let sil_feat = silhouette_score(&feats, &labels);
    assert!(
        sil_feat > sil_raw,
        "feature silhouette {sil_feat} must beat raw {sil_raw}"
    );
}

#[test]
fn novel_clients_personalize_comparably_to_seen_clients() {
    let full = FederatedDataset::build(
        SynthVisionSpec::cifar10(),
        &PartitionConfig {
            num_clients: 9,
            train_per_client: 60,
            test_per_client: 30,
            unlabeled_per_client: 0,
            non_iid: NonIid::Quantity {
                classes_per_client: 2,
            },
            seed: 4,
        },
    );
    let (seen_fed, novel_fed) = full.split_novel(3);
    let cfg = smoke_cfg();
    let result = run_calibre(
        &seen_fed,
        &cfg,
        SslKind::SimClr,
        &CalibreConfig::default(),
        &AugmentConfig::default(),
    );
    let novel = personalize_cohort(&result.encoder, &novel_fed, 10, &cfg.probe);
    // Novel clients should be in the same ballpark (within 20 points of
    // mean accuracy) — the encoder holds no client-specific state.
    assert!(
        (result.stats().mean - novel.stats.mean).abs() < 0.20,
        "seen {:?} vs novel {:?}",
        result.stats(),
        novel.stats
    );
    assert!(
        novel.stats.mean > 0.5,
        "novel cohort must beat chance on 2-way tasks"
    );
}

#[test]
fn personalization_beats_global_model_under_label_skew() {
    // The paper's core motivation: under severe label skew a personalized
    // head beats the single global model.
    let fed = small_fed(5);
    let cfg = smoke_cfg();
    let plain = run_fedavg(&fed, &cfg, false);
    let personalized = run_fedavg(&fed, &cfg, true);
    assert!(
        personalized.stats().mean > plain.stats().mean,
        "personalized {:?} vs global {:?}",
        personalized.stats(),
        plain.stats()
    );
}

#[test]
fn every_roster_method_runs_at_smoke_scale() {
    let fed = build_dataset(
        DatasetId::Cifar10,
        Setting::QuantityNonIid,
        Scale::Smoke,
        0,
        11,
    );
    let cfg = Scale::Smoke.fl_config(11);
    for id in MethodId::roster() {
        let result = run_method(id, &fed, &cfg);
        let stats = result.stats();
        assert_eq!(
            stats.count,
            fed.num_clients(),
            "{}: cohort size",
            result.name
        );
        assert!(
            stats.mean.is_finite() && stats.mean > 0.0 && stats.mean <= 1.0,
            "{}: mean {:?}",
            result.name,
            stats
        );
        assert!(stats.variance >= 0.0, "{}: variance", result.name);
    }
}

#[test]
fn stl10_analog_gives_ssl_methods_an_unlabeled_advantage() {
    // SSL sees labeled + unlabeled samples; supervised sees labeled only.
    let fed = build_dataset(
        DatasetId::Stl10,
        Setting::QuantityNonIid,
        Scale::Smoke,
        0,
        12,
    );
    let pool = fed.client(0).ssl_pool().len();
    let labeled = fed.client(0).train_len();
    assert!(
        pool > 2 * labeled,
        "unlabeled pool should dominate: {pool} vs {labeled}"
    );
}

#[test]
fn dirichlet_severity_increases_fedavg_variance() {
    // Fairness degrades with heterogeneity — the premise of Fig. 3's x-axis.
    let cfg = smoke_cfg();
    let make = |non_iid| {
        FederatedDataset::build(
            SynthVisionSpec::cifar10(),
            &PartitionConfig {
                num_clients: 8,
                train_per_client: 60,
                test_per_client: 30,
                unlabeled_per_client: 0,
                non_iid,
                seed: 13,
            },
        )
    };
    let iid = run_fedavg(&make(NonIid::Iid), &cfg, false);
    let skewed = run_fedavg(
        &make(NonIid::Quantity {
            classes_per_client: 2,
        }),
        &cfg,
        false,
    );
    assert!(
        skewed.stats().variance > iid.stats().variance,
        "skew {:?} must be less fair than iid {:?}",
        skewed.stats(),
        iid.stats()
    );
}
