//! End-to-end tests of the span layer: Chrome-trace export schema, profile
//! aggregation, and the guarantee that observing a run does not perturb it.
//!
//! The span collector is process-global, so every test that installs one
//! holds [`COLLECTOR_LOCK`] for its whole body.

use calibre::{run_calibre, CalibreConfig};
use calibre_data::{AugmentConfig, FederatedDataset, NonIid, PartitionConfig, SynthVisionSpec};
use calibre_fl::FlConfig;
use calibre_ssl::SslKind;
use calibre_telemetry::{
    install_collector, uninstall_collector, JsonValue, ProfileCollector, SpanFanout, SpanSink,
    TraceCollector,
};
use calibre_tensor::nn::Module;
use std::sync::{Arc, Mutex};

static COLLECTOR_LOCK: Mutex<()> = Mutex::new(());

fn small_fed(seed: u64) -> FederatedDataset {
    FederatedDataset::build(
        SynthVisionSpec::cifar10(),
        &PartitionConfig {
            num_clients: 6,
            train_per_client: 60,
            test_per_client: 30,
            unlabeled_per_client: 0,
            non_iid: NonIid::Quantity {
                classes_per_client: 2,
            },
            seed,
        },
    )
}

fn smoke_cfg() -> FlConfig {
    let mut cfg = FlConfig::for_input(64);
    cfg.rounds = 3;
    cfg.clients_per_round = 3;
    cfg.local_epochs = 1;
    cfg.batch_size = 16;
    cfg
}

fn smoke_calibre() -> CalibreConfig {
    CalibreConfig {
        warmup_rounds: 1,
        ..CalibreConfig::default()
    }
}

#[test]
fn tracing_leaves_training_bit_identical() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let fed = small_fed(11);
    let cfg = smoke_cfg();
    let ccfg = smoke_calibre();
    let aug = AugmentConfig::default();

    uninstall_collector();
    let bare = run_calibre(&fed, &cfg, SslKind::SimClr, &ccfg, &aug);

    let profile = Arc::new(ProfileCollector::new());
    let trace = Arc::new(TraceCollector::new());
    install_collector(Arc::new(
        SpanFanout::new()
            .with(Arc::clone(&profile) as Arc<dyn SpanSink>)
            .with(Arc::clone(&trace) as Arc<dyn SpanSink>),
    ));
    let observed = run_calibre(&fed, &cfg, SslKind::SimClr, &ccfg, &aug);
    uninstall_collector();

    assert!(
        !trace.is_empty(),
        "the observed run must actually have produced spans"
    );
    assert_eq!(
        bare.encoder.to_flat(),
        observed.encoder.to_flat(),
        "enabling tracing must leave the trained encoder bit-identical"
    );
    assert_eq!(
        bare.seen.accuracies, observed.seen.accuracies,
        "enabling tracing must leave personalized accuracies bit-identical"
    );
}

#[test]
fn trace_export_is_valid_chrome_trace_with_required_spans() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let fed = small_fed(12);
    let cfg = smoke_cfg();

    let profile = Arc::new(ProfileCollector::new());
    let trace = Arc::new(TraceCollector::new());
    install_collector(Arc::new(
        SpanFanout::new()
            .with(Arc::clone(&profile) as Arc<dyn SpanSink>)
            .with(Arc::clone(&trace) as Arc<dyn SpanSink>),
    ));
    run_calibre(
        &fed,
        &cfg,
        SslKind::SimClr,
        &smoke_calibre(),
        &AugmentConfig::default(),
    );
    uninstall_collector();

    let json = trace.to_chrome_json();
    let value = JsonValue::parse(&json).expect("trace output must be valid JSON");
    let events = value.as_array().expect("a Chrome trace is a JSON array");
    assert!(!events.is_empty());

    let mut names = std::collections::BTreeSet::new();
    let mut client_tids = std::collections::BTreeSet::new();
    for event in events {
        let name = event
            .get("name")
            .and_then(JsonValue::as_str)
            .expect("every event has a name");
        let ph = event
            .get("ph")
            .and_then(JsonValue::as_str)
            .expect("every event has a phase");
        assert!(event.get("pid").and_then(JsonValue::as_i64).is_some());
        let tid = event
            .get("tid")
            .and_then(JsonValue::as_i64)
            .expect("every event has a tid");
        match ph {
            "X" => {
                assert!(event.get("ts").and_then(JsonValue::as_f64).is_some());
                assert!(event.get("dur").and_then(JsonValue::as_f64).is_some());
                names.insert(name.to_string());
                if name == "client" {
                    client_tids.insert(tid);
                }
            }
            "M" => assert_eq!(name, "thread_name"),
            other => panic!("unexpected phase {other:?}"),
        }
    }
    // The acceptance set: a round span, client spans, an SSL loss and a
    // KMeans phase must all be visible in one traced Calibre run.
    for required in ["round", "client", "nt_xent", "kmeans_assign"] {
        assert!(names.contains(required), "missing span {required:?}");
    }
    // Parallel clients must land on distinct Perfetto tracks (thread ids)
    // whenever the machine can actually run workers in parallel.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores >= 2 {
        assert!(
            client_tids.len() >= 2,
            "expected parallel client spans on distinct tids, got {client_tids:?}"
        );
    }

    // The profile consumer saw the same run: per-round and per-client call
    // counts line up with the training schedule.
    let report = profile.report();
    assert_eq!(report.by_name("round").calls, cfg.rounds as u64);
    assert!(report.by_name("client").calls >= (cfg.rounds * cfg.clients_per_round) as u64);
    let round = report.by_name("round");
    assert!(round.total_us >= round.self_us);
}

#[test]
fn profile_json_round_trips_through_the_reader() {
    let _guard = COLLECTOR_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    let profile = Arc::new(ProfileCollector::new());
    install_collector(Arc::clone(&profile) as Arc<dyn SpanSink>);
    {
        let outer = calibre_telemetry::span("outer");
        outer.add_items(3);
        let _inner = calibre_telemetry::span("inner");
    }
    uninstall_collector();

    let json = profile.report().to_json();
    let value = JsonValue::parse(&json).expect("profile JSON parses");
    let spans = value.get("spans").and_then(JsonValue::as_array).unwrap();
    assert_eq!(spans.len(), 2);
    for span in spans {
        assert!(span.get("name").and_then(JsonValue::as_str).is_some());
        assert_eq!(span.get("calls").and_then(JsonValue::as_i64), Some(1));
        assert!(span.get("self_us").and_then(JsonValue::as_f64).is_some());
    }
}
